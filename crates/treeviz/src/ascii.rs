//! ASCII rendering of a laid-out tree (terminal phylogram).

use crate::layout::{layout_tree, TreeLayout};
use fdml_phylo::newick::NewickNode;

/// Render a Newick AST as ASCII art, `width` characters wide.
pub fn render(ast: &NewickNode, width: usize) -> String {
    render_layout(&layout_tree(ast), width)
}

/// Render an existing layout.
pub fn render_layout(layout: &TreeLayout, width: usize) -> String {
    let width = width.max(20);
    let name_space = layout
        .nodes
        .iter()
        .filter(|n| n.is_leaf)
        .map(|n| n.name.as_deref().unwrap_or("").len())
        .max()
        .unwrap_or(0)
        + 2;
    let plot_width = width.saturating_sub(name_space).max(8);
    let rows = layout.num_leaves * 2 - 1;
    let mut grid = vec![vec![' '; width]; rows.max(1)];
    let scale = if layout.depth > 0.0 {
        (plot_width - 1) as f64 / layout.depth
    } else {
        1.0
    };
    let col = |x: f64| ((x * scale).round() as usize).min(plot_width - 1);
    let row = |y: f64| ((y * 2.0).round() as usize).min(rows.saturating_sub(1));

    for (i, node) in layout.nodes.iter().enumerate() {
        let r = row(node.y);
        let c1 = col(node.x);
        if let Some(p) = node.parent {
            let parent = &layout.nodes[p];
            let c0 = col(parent.x);
            // Horizontal branch from the parent's column to this node.
            for cell in grid[r][c0..=c1].iter_mut() {
                if *cell == ' ' {
                    *cell = '-';
                }
            }
            // Vertical connector at the parent's column.
            let pr = row(parent.y);
            let (lo, hi) = if pr < r { (pr, r) } else { (r, pr) };
            for g in grid.iter_mut().take(hi + 1).skip(lo) {
                if g[c0] == ' ' || g[c0] == '-' {
                    g[c0] = '|';
                }
            }
            grid[r][c0] = '+';
        }
        if node.is_leaf {
            let name = node.name.as_deref().unwrap_or("?");
            for (k, ch) in name.chars().enumerate() {
                let c = c1 + 2 + k;
                if c < width {
                    grid[r][c] = ch;
                }
            }
        } else {
            grid[r][c1] = '+';
        }
        let _ = i;
    }
    grid.into_iter()
        .map(|r| r.into_iter().collect::<String>().trim_end().to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_phylo::newick;

    #[test]
    fn renders_all_leaf_names() {
        let ast = newick::parse("((alpha:1,beta:1):1,gamma:2,delta:1);").unwrap();
        let text = render(&ast, 60);
        for name in ["alpha", "beta", "gamma", "delta"] {
            assert!(text.contains(name), "{name} missing from:\n{text}");
        }
    }

    #[test]
    fn row_count_matches_leaves() {
        let ast = newick::parse("(a,b,c,d,e);").unwrap();
        let text = render(&ast, 40);
        assert_eq!(text.lines().count(), 9); // 2·5 - 1
    }

    #[test]
    fn longer_branches_reach_further_right() {
        let ast = newick::parse("(near:0.1,far:5.0);").unwrap();
        let text = render(&ast, 50);
        let near_col = text
            .lines()
            .find(|l| l.contains("near"))
            .unwrap()
            .find("near")
            .unwrap();
        let far_col = text
            .lines()
            .find(|l| l.contains("far"))
            .unwrap()
            .find("far")
            .unwrap();
        assert!(far_col > near_col);
    }

    #[test]
    fn handles_single_pair() {
        let ast = newick::parse("(a:1,b:1);").unwrap();
        let text = render(&ast, 30);
        assert!(text.contains('a') && text.contains('b'));
    }
}
