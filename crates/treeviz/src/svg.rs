//! SVG rendering of laid-out trees.

use crate::layout::{layout_tree, TreeLayout};
use fdml_phylo::newick::NewickNode;

/// Styling options.
#[derive(Debug, Clone)]
pub struct SvgStyle {
    /// Canvas width in pixels.
    pub width: f64,
    /// Row height per leaf in pixels.
    pub row_height: f64,
    /// Branch stroke color.
    pub stroke: String,
    /// Label font size.
    pub font_size: f64,
}

impl Default for SvgStyle {
    fn default() -> SvgStyle {
        SvgStyle {
            width: 640.0,
            row_height: 18.0,
            stroke: "#333333".to_string(),
            font_size: 12.0,
        }
    }
}

/// Render one tree as a standalone SVG document.
pub fn render(ast: &NewickNode, style: &SvgStyle) -> String {
    let layout = layout_tree(ast);
    let mut body = String::new();
    render_into(&layout, style, 0.0, 0.0, &[], &mut body);
    let height = layout.num_leaves as f64 * style.row_height + 20.0;
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{height:.0}\" viewBox=\"0 0 {:.0} {height:.0}\">\n{body}</svg>\n",
        style.width, style.width
    )
}

/// Render several trees side by side with colored trace lines connecting
/// the listed taxa between adjacent trees — the viewer feature of paper §4
/// / Figure 5 ("traces have been turned on for several taxa, facilitating
/// comparison of the trees").
pub fn render_comparison(asts: &[NewickNode], traced: &[&str], style: &SvgStyle) -> String {
    const TRACE_COLORS: [&str; 6] = [
        "#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
    ];
    let layouts: Vec<TreeLayout> = asts.iter().map(layout_tree).collect();
    let max_leaves = layouts.iter().map(|l| l.num_leaves).max().unwrap_or(1);
    let panel_w = style.width;
    let total_w = panel_w * asts.len() as f64;
    let height = max_leaves as f64 * style.row_height + 20.0;
    let mut body = String::new();
    let mut anchors: Vec<Vec<(f64, f64)>> = vec![Vec::new(); traced.len()];
    for (i, layout) in layouts.iter().enumerate() {
        let dx = i as f64 * panel_w;
        render_into(layout, style, dx, 0.0, traced, &mut body);
        for (k, name) in traced.iter().enumerate() {
            if let Some((x, y)) = layout.leaf_position(name) {
                let sx = dx + 10.0 + x / layout.depth.max(1e-9) * (panel_w - 120.0);
                let sy = 10.0 + y * style.row_height;
                anchors[k].push((sx, sy));
            }
        }
    }
    for (k, pts) in anchors.iter().enumerate() {
        let color = TRACE_COLORS[k % TRACE_COLORS.len()];
        for w in pts.windows(2) {
            body.push_str(&format!(
                "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"{color}\" stroke-dasharray=\"4 3\" stroke-width=\"1.5\"/>\n",
                w[0].0, w[0].1, w[1].0, w[1].1
            ));
        }
    }
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{total_w:.0}\" height=\"{height:.0}\" viewBox=\"0 0 {total_w:.0} {height:.0}\">\n{body}</svg>\n"
    )
}

fn render_into(
    layout: &TreeLayout,
    style: &SvgStyle,
    dx: f64,
    dy: f64,
    highlight: &[&str],
    out: &mut String,
) {
    let plot_w = style.width - 120.0;
    let sx = |x: f64| dx + 10.0 + x / layout.depth.max(1e-9) * plot_w;
    let sy = |y: f64| dy + 10.0 + y * style.row_height;
    for node in &layout.nodes {
        if let Some(p) = node.parent {
            let parent = &layout.nodes[p];
            // Rectangular branches: vertical from parent, then horizontal.
            out.push_str(&format!(
                "<path d=\"M {:.1} {:.1} V {:.1} H {:.1}\" fill=\"none\" stroke=\"{}\" stroke-width=\"1.2\"/>\n",
                sx(parent.x),
                sy(parent.y),
                sy(node.y),
                sx(node.x),
                style.stroke
            ));
        }
        if node.is_leaf {
            let name = node.name.as_deref().unwrap_or("?");
            let bold = highlight.contains(&name);
            out.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"{}\" font-family=\"monospace\"{}>{}</text>\n",
                sx(node.x) + 4.0,
                sy(node.y) + style.font_size / 3.0,
                style.font_size,
                if bold { " font-weight=\"bold\"" } else { "" },
                name
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_phylo::newick;

    #[test]
    fn produces_wellformed_svg() {
        let ast = newick::parse("((a:1,b:1):1,c:2);").unwrap();
        let svg = render(&ast, &SvgStyle::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<text").count(), 3);
        assert!(svg.matches("<path").count() >= 3);
    }

    #[test]
    fn comparison_draws_trace_lines() {
        let a = newick::parse("((a:1,b:1):1,c:2);").unwrap();
        let b = newick::parse("((a:1,c:1):1,b:2);").unwrap();
        let svg = render_comparison(&[a, b], &["a", "c"], &SvgStyle::default());
        // One dashed line per traced taxon per adjacent pair.
        assert_eq!(svg.matches("stroke-dasharray").count(), 2);
        assert!(svg.matches("font-weight=\"bold\"").count() >= 4);
    }

    #[test]
    fn comparison_of_one_tree_has_no_traces() {
        let a = newick::parse("(a,b,c);").unwrap();
        let svg = render_comparison(&[a], &["a"], &SvgStyle::default());
        assert_eq!(svg.matches("stroke-dasharray").count(), 0);
    }
}
