//! Canonical subtree orientation.
//!
//! Paper §4: the off-line viewer "allows the user to pivot a subtree in
//! order to visually distinguish solutions that are topologically different
//! from those that only appear different because of reversed branch
//! orderings." The canonical form sorts every node's children by their
//! smallest descendant leaf name, so two renderings of the same topology
//! become identical.

use fdml_phylo::newick::NewickNode;

/// Rotate every internal node into canonical child order. Returns the
/// canonicalized copy.
pub fn canonical(ast: &NewickNode) -> NewickNode {
    let mut node = ast.clone();
    canonicalize(&mut node);
    node
}

/// Smallest leaf name in the subtree (its sort key).
fn min_leaf(node: &NewickNode) -> &str {
    if node.is_leaf() {
        node.name.as_deref().unwrap_or("")
    } else {
        node.children.iter().map(min_leaf).min().unwrap_or("")
    }
}

fn canonicalize(node: &mut NewickNode) {
    for child in &mut node.children {
        canonicalize(child);
    }
    node.children.sort_by(|a, b| min_leaf(a).cmp(min_leaf(b)));
}

/// Are two trees the same drawing up to subtree pivots (and branch-length
/// differences below `length_tolerance`)?
pub fn same_up_to_rotation(a: &NewickNode, b: &NewickNode, length_tolerance: f64) -> bool {
    fn eq(a: &NewickNode, b: &NewickNode, tol: f64) -> bool {
        if a.is_leaf() != b.is_leaf() || a.children.len() != b.children.len() {
            return false;
        }
        if a.is_leaf() && a.name != b.name {
            return false;
        }
        match (a.length, b.length) {
            (Some(x), Some(y)) if (x - y).abs() > tol => return false,
            (Some(_), None) | (None, Some(_)) => return false,
            _ => {}
        }
        a.children
            .iter()
            .zip(&b.children)
            .all(|(x, y)| eq(x, y, tol))
    }
    eq(&canonical(a), &canonical(b), length_tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_phylo::newick;

    #[test]
    fn rotation_is_detected_as_same() {
        let a = newick::parse("((a:1,b:2):1,c:3);").unwrap();
        let b = newick::parse("(c:3,(b:2,a:1):1);").unwrap();
        assert!(same_up_to_rotation(&a, &b, 1e-9));
    }

    #[test]
    fn different_topology_is_not_same() {
        let a = newick::parse("((a:1,b:1):1,c:1,d:1);").unwrap();
        let b = newick::parse("((a:1,c:1):1,b:1,d:1);").unwrap();
        assert!(!same_up_to_rotation(&a, &b, 1e-9));
    }

    #[test]
    fn length_differences_respect_tolerance() {
        let a = newick::parse("(a:1.00,b:2.00);").unwrap();
        let b = newick::parse("(b:2.01,a:1.00);").unwrap();
        assert!(same_up_to_rotation(&a, &b, 0.1));
        assert!(!same_up_to_rotation(&a, &b, 1e-4));
    }

    #[test]
    fn canonical_is_idempotent_and_serializes_stably() {
        let a = newick::parse("((z,(m,b)),c,(y,a));").unwrap();
        let c1 = canonical(&a);
        let c2 = canonical(&c1);
        assert_eq!(c1, c2);
        assert_eq!(newick::write(&c1), newick::write(&c2));
        // Children ordered by smallest descendant: the clade containing 'a'
        // comes first.
        assert_eq!(newick::write(&c1), "((a,y),((b,m),z),c);");
    }

    #[test]
    fn leaf_count_mismatch_is_not_same() {
        let a = newick::parse("(a,b,c);").unwrap();
        let b = newick::parse("(a,b,(c,d));").unwrap();
        assert!(!same_up_to_rotation(&a, &b, 1e-9));
    }
}
