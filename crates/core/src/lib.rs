//! The fastDNAml search and parallel runtime — the paper's contribution.
//!
//! * [`config`] — run configuration (seeds, rearrangement radii, model).
//! * [`jumble`] — random taxon addition orders (paper step 1, including the
//!   odd-seed adjustment).
//! * [`search`] — the stepwise-addition + rearrangement driver
//!   (paper steps 2–5), generic over how candidate rounds are evaluated.
//! * [`executor`] — round evaluation strategies: the in-process full
//!   evaluator (the serial program, "the worker process acts as a
//!   subroutine"), and the incremental scorer used for large traces.
//! * [`master`], [`foreman`], [`worker`], [`monitor`] — the four parallel
//!   modules of the paper (§2.2), written against `fdml-comm`'s transport.
//! * [`job`] — the unified job surface: resolving a wire-level
//!   `JobSpec` into the runnable form every orchestration entrypoint is
//!   constructed from.
//! * [`runner`] — entry points: serial search, threaded parallel search,
//!   multi-jumble orchestration.
//! * [`netrun`] — the same topology across OS processes over `fdml-net`'s
//!   TCP transport: coordinator, peer, and single-command spawn launchers.
//! * [`trace`] — dispatch-round traces consumed by the RS/6000 SP
//!   simulator to regenerate Figures 3 and 4.
//! * [`checkpoint`] — resumable snapshots of long runs, including the farm
//!   manifest.
//! * [`durable`] — the crash-consistent storage layer: fsynced atomic
//!   replace and the CRC32-framed append-only log with truncate-to-valid
//!   recovery, shared by checkpoints, manifests, the registry, and the WAL.
//! * [`wal`] — the write-ahead round log that makes the coordinator as
//!   killable as the workers: one framed record per committed search round,
//!   replayed on `--resume` for a byte-identical restart.
//! * [`farm`] — the jumble farm: whole random-addition searches sharded
//!   across the worker pool, streaming into an incremental consensus.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod durable;
mod edits;
pub mod executor;
pub mod farm;
pub mod foreman;
pub mod hierarchy;
pub mod job;
pub mod jumble;
pub mod master;
pub mod monitor;
pub mod netrun;
pub mod runner;
pub mod search;
pub mod trace;
pub mod wal;
pub mod worker;

pub use config::SearchConfig;
pub use job::ResolvedJob;
pub use runner::{parallel_search, serial_search, RunOptions};
pub use search::{SearchResult, StepwiseSearch};
