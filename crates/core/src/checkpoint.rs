//! Checkpoint and restart.
//!
//! fastDNAml writes checkpoint files so that a multi-day analysis (the
//! paper's 150-taxon serial run took ~9 days) survives interruption; the
//! search resumes from the last completed taxon-addition step. The
//! checkpoint is deliberately plain JSON + Newick so it is inspectable and
//! portable across versions.

use fdml_phylo::alignment::TaxonId;
use serde::{Deserialize, Serialize};

/// A resumable snapshot of the stepwise-addition search, taken after a
/// taxon addition (and its rearrangements) completed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The jumble seed the run was started with (resume refuses a
    /// mismatch).
    pub jumble_seed: u64,
    /// The full taxon addition order.
    pub order: Vec<TaxonId>,
    /// How many taxa of `order` are already in the tree.
    pub taxa_placed: usize,
    /// The current best tree, as Newick.
    pub tree_newick: String,
    /// Its log-likelihood.
    pub ln_likelihood: f64,
}

impl Checkpoint {
    /// Serialize to the on-disk format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serializes")
    }

    /// Parse the on-disk format.
    pub fn from_json(text: &str) -> Result<Checkpoint, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Write durably through the crash-consistent storage layer: after
    /// this returns, the checkpoint survives power loss, and a kill at
    /// any interior step leaves the previous checkpoint intact.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        crate::durable::atomic_write(path, self.to_json().as_bytes())
    }
}

/// The lifecycle of one jumble inside a farm manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JumbleStatus {
    /// Not finished yet (queued or in flight when the farm stopped).
    Pending,
    /// Finished; `newick` and `ln_likelihood` are recorded.
    Done,
}

/// One jumble's entry in a [`FarmManifest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// The adjusted, deduplicated jumble seed.
    pub seed: u64,
    /// Where this jumble stands.
    pub status: JumbleStatus,
    /// The jumble's best tree (present when `Done`).
    pub newick: Option<String>,
    /// Its log-likelihood (present when `Done`).
    pub ln_likelihood: Option<f64>,
}

/// The farm's checkpoint: one entry per jumble, written (write-then-rename)
/// after every completion, so a killed farm resumes by recomputing only the
/// `Pending` entries. Deliberately timestamp-free: two farms over the same
/// seeds produce byte-identical manifests regardless of completion order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FarmManifest {
    /// Entries in seed order (the order results are reported in).
    pub entries: Vec<ManifestEntry>,
}

impl FarmManifest {
    /// A fresh manifest with every seed `Pending`.
    pub fn new(seeds: &[u64]) -> FarmManifest {
        FarmManifest {
            entries: seeds
                .iter()
                .map(|&seed| ManifestEntry {
                    seed,
                    status: JumbleStatus::Pending,
                    newick: None,
                    ln_likelihood: None,
                })
                .collect(),
        }
    }

    /// The seeds, in manifest order.
    pub fn seeds(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.seed).collect()
    }

    /// Seeds still `Pending`, in manifest order.
    pub fn unfinished(&self) -> Vec<u64> {
        self.entries
            .iter()
            .filter(|e| e.status == JumbleStatus::Pending)
            .map(|e| e.seed)
            .collect()
    }

    /// Whether every jumble is `Done`.
    pub fn is_complete(&self) -> bool {
        self.entries.iter().all(|e| e.status == JumbleStatus::Done)
    }

    /// Record a finished jumble.
    pub fn mark_done(&mut self, seed: u64, newick: String, ln_likelihood: f64) {
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.seed == seed)
            .unwrap_or_else(|| panic!("seed {seed} not in manifest"));
        entry.status = JumbleStatus::Done;
        entry.newick = Some(newick);
        entry.ln_likelihood = Some(ln_likelihood);
    }

    /// Serialize to the on-disk format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Parse the on-disk format.
    pub fn from_json(text: &str) -> Result<FarmManifest, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Write durably through the crash-consistent storage layer
    /// ([`crate::durable::atomic_write`]): temp sibling, fsync, rename,
    /// directory fsync. A kill at any step leaves either the previous
    /// manifest or the new one — never a torn file — and a completed
    /// save survives power loss (the farm acks jumbles only after this
    /// returns).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        crate::durable::atomic_write(path, self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let c = Checkpoint {
            jumble_seed: 42,
            order: vec![3, 1, 0, 2],
            taxa_placed: 3,
            tree_newick: "(a:1,b:1,c:1);".into(),
            ln_likelihood: -123.5,
        };
        let json = c.to_json();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(c, back);
        assert!(Checkpoint::from_json("not json").is_err());
    }

    #[test]
    fn manifest_tracks_completion() {
        let mut m = FarmManifest::new(&[1, 3, 5]);
        assert_eq!(m.seeds(), vec![1, 3, 5]);
        assert_eq!(m.unfinished(), vec![1, 3, 5]);
        assert!(!m.is_complete());
        m.mark_done(3, "(a:1,b:1);".into(), -10.0);
        assert_eq!(m.unfinished(), vec![1, 5]);
        m.mark_done(1, "(a:1,b:1);".into(), -11.0);
        m.mark_done(5, "(a:1,b:1);".into(), -12.0);
        assert!(m.is_complete());
        let back = FarmManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.entries[1].ln_likelihood, Some(-10.0));
    }

    #[test]
    fn manifest_save_is_atomic_and_order_independent() {
        let dir = std::env::temp_dir().join(format!("fdml_manifest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("farm.json");
        let mut a = FarmManifest::new(&[1, 3]);
        a.mark_done(1, "(x);".into(), -1.0);
        a.mark_done(3, "(y);".into(), -2.0);
        let mut b = FarmManifest::new(&[1, 3]);
        b.mark_done(3, "(y);".into(), -2.0);
        b.mark_done(1, "(x);".into(), -1.0);
        // Completion order does not leak into the serialized form.
        assert_eq!(a.to_json(), b.to_json());
        a.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(FarmManifest::from_json(&text).unwrap(), a);
        assert!(!path.with_extension("tmp").exists(), "tmp must be renamed");
        std::fs::remove_dir_all(&dir).ok();
    }
}
