//! Checkpoint and restart.
//!
//! fastDNAml writes checkpoint files so that a multi-day analysis (the
//! paper's 150-taxon serial run took ~9 days) survives interruption; the
//! search resumes from the last completed taxon-addition step. The
//! checkpoint is deliberately plain JSON + Newick so it is inspectable and
//! portable across versions.

use fdml_phylo::alignment::TaxonId;
use serde::{Deserialize, Serialize};

/// A resumable snapshot of the stepwise-addition search, taken after a
/// taxon addition (and its rearrangements) completed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// The jumble seed the run was started with (resume refuses a
    /// mismatch).
    pub jumble_seed: u64,
    /// The full taxon addition order.
    pub order: Vec<TaxonId>,
    /// How many taxa of `order` are already in the tree.
    pub taxa_placed: usize,
    /// The current best tree, as Newick.
    pub tree_newick: String,
    /// Its log-likelihood.
    pub ln_likelihood: f64,
}

impl Checkpoint {
    /// Serialize to the on-disk format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serializes")
    }

    /// Parse the on-disk format.
    pub fn from_json(text: &str) -> Result<Checkpoint, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let c = Checkpoint {
            jumble_seed: 42,
            order: vec![3, 1, 0, 2],
            taxa_placed: 3,
            tree_newick: "(a:1,b:1,c:1);".into(),
            ln_likelihood: -123.5,
        };
        let json = c.to_json();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(c, back);
        assert!(Checkpoint::from_json("not json").is_err());
    }
}
