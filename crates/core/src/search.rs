//! The fastDNAml search driver: stepwise addition with rearrangement
//! (paper §2, steps 1–5), independent of how rounds are evaluated.

use crate::checkpoint::Checkpoint;
use crate::config::SearchConfig;
use crate::executor::{CandidateScore, RoundExecutor};
use crate::jumble::jumble_order;
use crate::trace::{RoundKind, RoundRecord, SearchTrace};
use crate::wal::{WalMove, WalPhase, WalRound};
use fdml_phylo::error::PhyloError;
use fdml_phylo::newick;
use fdml_phylo::ops::{enumerate_insertion_moves, enumerate_spr_moves};
use fdml_phylo::tree::Tree;
use std::collections::VecDeque;

/// Information passed to the per-round observer (the real-time viewer hook:
/// the paper's monitor application watches the best tree of each iteration).
#[derive(Debug)]
pub struct RoundInfo<'a> {
    /// Kind of the round just completed.
    pub kind: RoundKind,
    /// Ordinal of the round within the search.
    pub round: usize,
    /// Number of candidates evaluated.
    pub candidates: usize,
    /// Best log-likelihood after the round.
    pub ln_likelihood: f64,
    /// Current best tree.
    pub tree: &'a Tree,
}

/// The result of one jumble's search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best tree found, branch lengths optimized.
    pub tree: Tree,
    /// Its log-likelihood.
    pub ln_likelihood: f64,
    /// Dispatch rounds executed.
    pub rounds: usize,
    /// Candidate trees evaluated.
    pub candidates_evaluated: usize,
    /// Total work units across candidates and base maintenance.
    pub work_units: u64,
    /// Rounds replayed from a write-ahead log instead of scored live.
    pub wal_replayed_rounds: usize,
}

/// The stepwise-addition search, generic over the round executor.
pub struct StepwiseSearch<'c, E: RoundExecutor> {
    config: &'c SearchConfig,
    executor: E,
    num_taxa: usize,
    names: Vec<String>,
    trace: Option<SearchTrace>,
    #[allow(clippy::type_complexity)]
    on_round: Option<Box<dyn FnMut(&RoundInfo<'_>) + Send + 'c>>,
    #[allow(clippy::type_complexity)]
    on_checkpoint: Option<Box<dyn FnMut(&Checkpoint) + Send + 'c>>,
    // Deliberately not `Send`: the WAL sink often captures a borrowed
    // transport, and searches are constructed and run on one thread.
    #[allow(clippy::type_complexity)]
    on_wal: Option<Box<dyn FnMut(&WalRound) + 'c>>,
    resume: Option<Checkpoint>,
    replay: VecDeque<WalRound>,
    wal_index: u64,
    wal_replayed: usize,
    rounds: usize,
    candidates: usize,
    work_units: u64,
}

impl<'c, E: RoundExecutor> StepwiseSearch<'c, E> {
    /// Create a search over `num_taxa` taxa.
    pub fn new(config: &'c SearchConfig, executor: E, num_taxa: usize) -> StepwiseSearch<'c, E> {
        StepwiseSearch {
            config,
            executor,
            num_taxa,
            names: (0..num_taxa).map(|i| format!("taxon{i}")).collect(),
            trace: None,
            on_round: None,
            on_checkpoint: None,
            on_wal: None,
            resume: None,
            replay: VecDeque::new(),
            wal_index: 0,
            wal_replayed: 0,
            rounds: 0,
            candidates: 0,
            work_units: 0,
        }
    }

    /// Provide taxon names (used in traces and observer output).
    pub fn with_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(names.len(), self.num_taxa);
        self.names = names;
        self
    }

    /// Enable trace recording for the simulator.
    pub fn with_trace(
        mut self,
        dataset: &str,
        num_sites: usize,
        num_patterns: usize,
        full_evaluation: bool,
    ) -> Self {
        self.trace = Some(SearchTrace {
            dataset: dataset.to_string(),
            num_taxa: self.num_taxa,
            num_sites,
            num_patterns,
            jumble_seed: self.config.jumble_seed,
            full_evaluation,
            rounds: Vec::new(),
            final_ln_likelihood: 0.0,
            final_newick: String::new(),
        });
        self
    }

    /// Set a per-round observer.
    pub fn on_round(mut self, f: impl FnMut(&RoundInfo<'_>) + Send + 'c) -> Self {
        self.on_round = Some(Box::new(f));
        self
    }

    /// Receive a [`Checkpoint`] after every completed taxon-addition step
    /// (write it to disk to make the run resumable).
    pub fn on_checkpoint(mut self, f: impl FnMut(&Checkpoint) + Send + 'c) -> Self {
        self.on_checkpoint = Some(Box::new(f));
        self
    }

    /// Resume from a checkpoint instead of starting at the triplet. The
    /// checkpoint's jumble seed must match the configuration's.
    pub fn resume_from(mut self, checkpoint: Checkpoint) -> Self {
        assert_eq!(
            checkpoint.jumble_seed, self.config.jumble_seed,
            "checkpoint was taken under a different jumble seed"
        );
        self.resume = Some(checkpoint);
        self
    }

    /// Receive a [`WalRound`] after every committed round (append it to
    /// the write-ahead log, or stream it to the coordinator). Replayed
    /// rounds are not re-emitted; the first emitted record carries the
    /// index after the replayed prefix.
    pub fn on_wal(mut self, f: impl FnMut(&WalRound) + 'c) -> Self {
        self.on_wal = Some(Box::new(f));
        self
    }

    /// Resume by replaying committed rounds from a write-ahead log
    /// instead of re-scoring them: each replayed round repeats the exact
    /// executor calls (tentative commits and reverts) the original run
    /// made, skipping candidate scoring entirely, so the resumed search
    /// is bit-identical to the uninterrupted one. Composes with
    /// [`resume_from`](Self::resume_from) when the WAL was taken on top
    /// of a checkpoint.
    pub fn resume_from_wal(mut self, rounds: Vec<WalRound>) -> Self {
        self.wal_index = rounds.len() as u64;
        self.replay = rounds.into();
        self
    }

    /// Take the recorded trace (after [`StepwiseSearch::run`]).
    pub fn take_trace(&mut self) -> Option<SearchTrace> {
        self.trace.take()
    }

    /// Consume the search, returning the executor (e.g. for an orderly
    /// cluster shutdown).
    pub fn into_executor(self) -> E {
        self.executor
    }

    /// Run the search: steps 1–5 of the paper.
    pub fn run(&mut self) -> Result<SearchResult, PhyloError> {
        if self.num_taxa < 2 {
            return Err(PhyloError::InvalidTreeOp("need at least two taxa".into()));
        }
        // Step 1: random addition order (or the checkpointed one).
        let resume = self.resume.take();
        let (order, start_idx, initial) = match resume {
            Some(cp) => {
                assert_eq!(
                    cp.order.len(),
                    self.num_taxa,
                    "checkpoint taxon count mismatch"
                );
                let tree = newick::parse_tree_with_names(&cp.tree_newick, &self.names)?;
                assert_eq!(
                    tree.num_tips(),
                    cp.taxa_placed,
                    "checkpoint tree/count mismatch"
                );
                (cp.order, cp.taxa_placed, tree)
            }
            None => {
                let order = jumble_order(self.num_taxa, self.config.jumble_seed);
                // Step 2: the initial tree.
                let initial = if self.num_taxa == 2 {
                    Tree::pair(order[0], order[1])
                } else {
                    Tree::triplet(order[0], order[1], order[2])
                };
                (order, 3.min(self.num_taxa), initial)
            }
        };
        let base = self.executor.set_base(initial)?;
        self.work_units += base.work_units;
        let mut tree = base.tree;
        let mut lnl = base.ln_likelihood;

        // Step 3 + 4: add each remaining taxon, then rearrange locally.
        for idx in start_idx..self.num_taxa {
            let taxon = order[idx];
            if let Some(rec) = self.pop_replay(WalPhase::Addition) {
                // Replay the committed insertion without scoring the
                // round: the WAL already decided it.
                let mv = rec.tried.first().copied().ok_or_else(|| {
                    PhyloError::InvalidTreeOp("wal addition record with no move".into())
                })?;
                let committed = self.executor.commit(&mv.to_move())?;
                check_replay_lnl(&rec, committed.ln_likelihood)?;
                self.record_round(
                    RoundKind::TaxonAddition,
                    idx + 1,
                    &[],
                    committed.work_units,
                    true,
                );
                self.wal_replayed += 1;
                tree = committed.tree;
                lnl = committed.ln_likelihood;
                self.work_units += committed.work_units;
                self.notify(RoundKind::TaxonAddition, 0, lnl, &tree);
            } else {
                let moves = enumerate_insertion_moves(&tree, taxon);
                let scores = self.executor.score_round(&moves)?;
                let best = argmax(&scores);
                let committed = self.executor.commit(&moves[best])?;
                self.record_round(
                    RoundKind::TaxonAddition,
                    idx + 1,
                    &scores,
                    committed.work_units,
                    true,
                );
                tree = committed.tree;
                lnl = committed.ln_likelihood;
                self.work_units += committed.work_units;
                self.emit_wal(
                    WalPhase::Addition,
                    vec![WalMove::from_move(&moves[best])],
                    true,
                    lnl,
                )?;
                self.notify(RoundKind::TaxonAddition, scores.len(), lnl, &tree);
            }

            // Step 4: local rearrangements until no improvement.
            let (t2, l2) = self.rearrange_to_convergence(
                tree,
                lnl,
                self.config.rearrange_radius,
                RoundKind::Rearrangement,
            )?;
            tree = t2;
            lnl = l2;
            if let Some(sink) = &mut self.on_checkpoint {
                sink(&Checkpoint {
                    jumble_seed: self.config.jumble_seed,
                    order: order.clone(),
                    taxa_placed: idx + 1,
                    tree_newick: newick::write_tree(&tree, &self.names),
                    ln_likelihood: lnl,
                });
            }
        }

        // Step 5: final rearrangement (possibly more extensive). When the
        // radius equals the step-4 radius the last step-4 loop has already
        // dispatched the confirming no-improvement round, matching the
        // paper's behaviour without duplicate work.
        if self.num_taxa > 3 && self.config.final_radius != self.config.rearrange_radius {
            let (t2, l2) = self.rearrange_to_convergence(
                tree,
                lnl,
                self.config.final_radius,
                RoundKind::FinalRearrangement,
            )?;
            tree = t2;
            lnl = l2;
        }

        if !self.replay.is_empty() {
            return Err(PhyloError::InvalidTreeOp(format!(
                "search finished with {} unconsumed write-ahead log records \
                 (log from a different run?)",
                self.replay.len()
            )));
        }
        if let Some(trace) = &mut self.trace {
            trace.final_ln_likelihood = lnl;
            trace.final_newick = newick::write_tree(&tree, &self.names);
        }
        Ok(SearchResult {
            tree,
            ln_likelihood: lnl,
            rounds: self.rounds,
            candidates_evaluated: self.candidates,
            work_units: self.work_units,
            wal_replayed_rounds: self.wal_replayed,
        })
    }

    /// Rearrangement loop: dispatch the radius-limited SPR neighbourhood,
    /// commit improvements, repeat until a round yields none (that final
    /// fruitless round is real dispatched work, as in the paper).
    fn rearrange_to_convergence(
        &mut self,
        mut tree: Tree,
        mut lnl: f64,
        radius: usize,
        kind: RoundKind,
    ) -> Result<(Tree, f64), PhyloError> {
        if radius == 0 {
            return Ok((tree, lnl));
        }
        let phase = match kind {
            RoundKind::FinalRearrangement => WalPhase::Final,
            _ => WalPhase::Rearrange,
        };
        for _ in 0..self.config.max_rearrange_rounds {
            if let Some(rec) = self.pop_replay(phase) {
                let backup = tree.clone();
                let mut verify_work = 0u64;
                let mut accepted: Option<(Tree, f64)> = None;
                for (i, wm) in rec.tried.iter().enumerate() {
                    let committed = self.executor.commit(&wm.to_move())?;
                    verify_work += committed.work_units;
                    if i + 1 == rec.tried.len() && rec.accepted {
                        accepted = Some((committed.tree, committed.ln_likelihood));
                    } else {
                        let restored = self.executor.set_base(backup.clone())?;
                        verify_work += restored.work_units;
                    }
                }
                self.record_round(kind, tree.num_tips(), &[], verify_work, rec.accepted);
                self.wal_replayed += 1;
                self.work_units += verify_work;
                match accepted {
                    Some((t, l)) => {
                        check_replay_lnl(&rec, l)?;
                        tree = t;
                        lnl = l;
                        self.notify(kind, 0, lnl, &tree);
                        continue;
                    }
                    None => {
                        let restored = self.executor.set_base(backup)?;
                        self.work_units += restored.work_units;
                        tree = restored.tree;
                        lnl = restored.ln_likelihood.max(lnl);
                        check_replay_lnl(&rec, lnl)?;
                        self.notify(kind, 0, lnl, &tree);
                        break;
                    }
                }
            }
            let moves = enumerate_spr_moves(&tree, radius);
            if moves.is_empty() {
                break;
            }
            let scores = self.executor.score_round(&moves)?;
            // Leading candidates receive the full treatment in descending
            // score order ("it is then tested more carefully", §2.1): the
            // first verified improvement is kept; candidates scoring far
            // below the current tree are not worth verifying.
            let mut order: Vec<usize> = (0..scores.len()).collect();
            order.sort_by(|&a, &b| {
                scores[b]
                    .ln_likelihood
                    .total_cmp(&scores[a].ln_likelihood)
                    .then(a.cmp(&b))
            });
            let backup = tree.clone();
            let mut verify_work = 0u64;
            let mut tried: Vec<WalMove> = Vec::new();
            let mut accepted: Option<(Tree, f64)> = None;
            for &i in order.iter().take(self.config.max_verify_per_round) {
                if scores[i].ln_likelihood <= lnl - self.config.verify_slack {
                    break;
                }
                let committed = self.executor.commit(&moves[i])?;
                verify_work += committed.work_units;
                tried.push(WalMove::from_move(&moves[i]));
                if committed.ln_likelihood > lnl + self.config.min_improvement {
                    accepted = Some((committed.tree, committed.ln_likelihood));
                    break;
                }
                // Revert the tentative commit before trying the next one.
                let restored = self.executor.set_base(backup.clone())?;
                verify_work += restored.work_units;
            }
            self.record_round(
                kind,
                tree.num_tips(),
                &scores,
                verify_work,
                accepted.is_some(),
            );
            self.work_units += verify_work;
            match accepted {
                Some((t, l)) => {
                    tree = t;
                    lnl = l;
                    self.emit_wal(phase, tried, true, lnl)?;
                    self.notify(kind, scores.len(), lnl, &tree);
                }
                None => {
                    // Ensure the executor's base is the original tree.
                    let restored = self.executor.set_base(backup)?;
                    self.work_units += restored.work_units;
                    tree = restored.tree;
                    lnl = restored.ln_likelihood.max(lnl);
                    self.emit_wal(phase, tried, false, lnl)?;
                    self.notify(kind, scores.len(), lnl, &tree);
                    break;
                }
            }
        }
        Ok((tree, lnl))
    }

    /// Pop the next replay record if it belongs to `phase`; a different
    /// phase at the head means the replayed prefix has moved on (e.g. a
    /// convergence loop that ended without a fruitless round).
    fn pop_replay(&mut self, phase: WalPhase) -> Option<WalRound> {
        match self.replay.front() {
            Some(r) if r.phase == phase => self.replay.pop_front(),
            _ => None,
        }
    }

    /// Hand a freshly committed round to the WAL sink. Emitting while
    /// unconsumed replay records remain means the live search diverged
    /// from the log (wrong config, wrong data): abort rather than write a
    /// log that contradicts its own prefix.
    fn emit_wal(
        &mut self,
        phase: WalPhase,
        tried: Vec<WalMove>,
        accepted: bool,
        lnl: f64,
    ) -> Result<(), PhyloError> {
        if self.on_wal.is_none() && self.replay.is_empty() {
            return Ok(());
        }
        if !self.replay.is_empty() {
            return Err(PhyloError::InvalidTreeOp(format!(
                "search diverged from write-ahead log: scored a live {phase:?} round while {} \
                 replay records remain (log from a different run?)",
                self.replay.len()
            )));
        }
        let rec = WalRound {
            index: self.wal_index,
            phase,
            tried,
            accepted,
            lnl_bits: lnl.to_bits(),
        };
        self.wal_index += 1;
        if let Some(f) = &mut self.on_wal {
            f(&rec);
        }
        Ok(())
    }

    fn record_round(
        &mut self,
        kind: RoundKind,
        taxa_in_tree: usize,
        scores: &[CandidateScore],
        commit_work: u64,
        improved: bool,
    ) {
        self.rounds += 1;
        self.candidates += scores.len();
        for s in scores {
            self.work_units += s.work_units;
        }
        if let Some(trace) = &mut self.trace {
            trace.rounds.push(RoundRecord {
                kind,
                taxa_in_tree,
                candidate_work: scores.iter().map(|s| s.work_units).collect(),
                master_work: commit_work,
                improved,
            });
        }
    }

    fn notify(&mut self, kind: RoundKind, candidates: usize, lnl: f64, tree: &Tree) {
        if let Some(f) = &mut self.on_round {
            f(&RoundInfo {
                kind,
                round: self.rounds,
                candidates,
                ln_likelihood: lnl,
                tree,
            });
        }
    }
}

/// The replay divergence guard: a replayed round must reproduce the
/// recorded log-likelihood bit for bit, or the log does not belong to
/// this (config, data, seed) and resuming would silently drift.
fn check_replay_lnl(rec: &WalRound, lnl: f64) -> Result<(), PhyloError> {
    if lnl.to_bits() != rec.lnl_bits {
        return Err(PhyloError::InvalidTreeOp(format!(
            "write-ahead log divergence at round {}: replay reached lnl {} but the log \
             recorded {} (log from a different run?)",
            rec.index,
            lnl,
            f64::from_bits(rec.lnl_bits)
        )));
    }
    Ok(())
}

/// First index achieving the maximum log-likelihood: the deterministic
/// tie-break that makes serial and parallel runs agree regardless of
/// result arrival order.
pub fn argmax(scores: &[CandidateScore]) -> usize {
    assert!(!scores.is_empty(), "round with zero candidates");
    let mut best = 0;
    for (i, s) in scores.iter().enumerate().skip(1) {
        if s.ln_likelihood > scores[best].ln_likelihood {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{FullEvalExecutor, ScorerExecutor};
    use fdml_likelihood::engine::LikelihoodEngine;
    use fdml_phylo::alignment::Alignment;
    use fdml_phylo::bipartition::SplitSet;

    /// Six taxa with clean signal for topology ((t0,t1),(t2,t3),(t4,t5)).
    fn alignment() -> Alignment {
        Alignment::from_strings(&[
            ("t0", "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"),
            ("t1", "ACGTACGTACTTACGTACGTACGAACGTACGTACGTACGT"),
            ("t2", "ACGAACGTACGTACGGACGTACGTACCTACGTAGGTACGT"),
            ("t3", "ACGAACGTACGTACGGACGTACTTACCTACGTAGGTACTT"),
            ("t4", "TCGAACGGACGTACGGAAGTACGTACCTACGGAGGTACGA"),
            ("t5", "TCGAACGGACGTACGGAAGTACGTTCCTACGGAGGAACGA"),
        ])
        .unwrap()
    }

    #[test]
    fn recovers_generating_topology() {
        let a = alignment();
        let engine = LikelihoodEngine::new(&a);
        let config = SearchConfig {
            jumble_seed: 3,
            rearrange_radius: 2,
            final_radius: 2,
            ..Default::default()
        };
        let ex = FullEvalExecutor::new(&engine, config.optimize);
        let mut search = StepwiseSearch::new(&config, ex, 6);
        let result = search.run().unwrap();
        result.tree.check_valid().unwrap();
        assert_eq!(result.tree.num_tips(), 6);
        let found = SplitSet::of_tree(&result.tree, 6);
        // Expected topology contains splits {0,1}, {4,5} (and {2,3} via
        // complement structure).
        let expect_01 = fdml_phylo::bipartition::Bipartition::from_side(&[0, 1], 6);
        let expect_45 = fdml_phylo::bipartition::Bipartition::from_side(&[4, 5], 6);
        assert!(
            found.splits().contains(&expect_01),
            "missing (t0,t1): {found:?}"
        );
        assert!(
            found.splits().contains(&expect_45),
            "missing (t4,t5): {found:?}"
        );
    }

    #[test]
    fn scorer_and_full_eval_find_same_tree_with_enough_radius() {
        // With radius 1 the two modes may legitimately diverge: the scorer
        // accepts the *approximate* insertion point (paper §2.1, "a rapid
        // approximation of the insertion point is used, since it is then
        // tested more carefully for the effects of rearrangement"), and a
        // one-vertex rearrangement cannot always repair a misplacement.
        // With radius 2 the rearrangements do repair it here.
        let a = alignment();
        let engine = LikelihoodEngine::new(&a);
        let config = SearchConfig {
            jumble_seed: 7,
            rearrange_radius: 2,
            final_radius: 2,
            ..Default::default()
        };
        let full = FullEvalExecutor::new(&engine, config.optimize);
        let fast = ScorerExecutor::new(&engine, config.optimize);
        let r_full = StepwiseSearch::new(&config, full, 6).run().unwrap();
        let r_fast = StepwiseSearch::new(&config, fast, 6).run().unwrap();
        // The two modes converge to likelihood-equivalent optima. (On this
        // dataset two topologies differing by an NNI across a zero-length
        // branch are exactly co-optimal, so split sets may differ by one
        // split; the likelihoods agree to ~1e-8.)
        assert!(
            (r_full.ln_likelihood - r_fast.ln_likelihood).abs() < 1e-4,
            "full {} vs fast {}",
            r_full.ln_likelihood,
            r_fast.ln_likelihood
        );
        let rf =
            SplitSet::of_tree(&r_full.tree, 6).robinson_foulds(&SplitSet::of_tree(&r_fast.tree, 6));
        assert!(
            rf <= 2,
            "topologies differ by more than one split: RF = {rf}"
        );
    }

    #[test]
    fn different_jumbles_still_converge_on_strong_signal() {
        let a = alignment();
        let engine = LikelihoodEngine::new(&a);
        let mut trees = Vec::new();
        for seed in [1u64, 5, 9] {
            let config = SearchConfig {
                jumble_seed: seed,
                rearrange_radius: 2,
                final_radius: 2,
                ..Default::default()
            };
            let ex = FullEvalExecutor::new(&engine, config.optimize);
            let r = StepwiseSearch::new(&config, ex, 6).run().unwrap();
            trees.push(SplitSet::of_tree(&r.tree, 6));
        }
        assert_eq!(trees[0], trees[1]);
        assert_eq!(trees[1], trees[2]);
    }

    #[test]
    fn trace_records_round_structure() {
        let a = alignment();
        let engine = LikelihoodEngine::new(&a);
        let config = SearchConfig {
            jumble_seed: 1,
            rearrange_radius: 1,
            final_radius: 1,
            ..Default::default()
        };
        let ex = FullEvalExecutor::new(&engine, config.optimize);
        let mut search = StepwiseSearch::new(&config, ex, 6)
            .with_names(a.names().to_vec())
            .with_trace("six", a.num_sites(), 0, true);
        let result = search.run().unwrap();
        let trace = search.take_trace().unwrap();
        assert_eq!(trace.num_taxa, 6);
        assert_eq!(trace.final_ln_likelihood, result.ln_likelihood);
        assert!(!trace.final_newick.is_empty());
        assert_eq!(trace.total_candidates(), result.candidates_evaluated);
        // Addition rounds: taxa 4, 5, 6 → candidate counts 2i-5 = 3, 5, 7.
        let additions: Vec<usize> = trace
            .rounds
            .iter()
            .filter(|r| r.kind == RoundKind::TaxonAddition)
            .map(|r| r.candidate_work.len())
            .collect();
        assert_eq!(additions, vec![3, 5, 7]);
        // Every addition is followed by at least one rearrangement round
        // (the confirming no-improvement round at minimum).
        assert!(
            trace
                .rounds
                .iter()
                .filter(|r| r.kind == RoundKind::Rearrangement)
                .count()
                >= 3
        );
    }

    #[test]
    fn observer_sees_monotone_likelihood() {
        let a = alignment();
        let engine = LikelihoodEngine::new(&a);
        let config = SearchConfig {
            jumble_seed: 2,
            ..Default::default()
        };
        let ex = FullEvalExecutor::new(&engine, config.optimize);
        let mut lnls: Vec<f64> = Vec::new();
        {
            let mut search = StepwiseSearch::new(&config, ex, 6).on_round(|info| {
                lnls.push(info.ln_likelihood);
            });
            search.run().unwrap();
        }
        assert!(!lnls.is_empty());
        // Within a fixed taxon count the likelihood never decreases;
        // adding a taxon may lower it (more data), so compare only within
        // stretches between additions. Simplest check: the last value is
        // the global best for the final taxon set.
        let last = *lnls.last().unwrap();
        assert!(last.is_finite());
    }

    #[test]
    fn two_and_three_taxon_problems() {
        let a = Alignment::from_strings(&[("a", "ACGT"), ("b", "ACGA"), ("c", "AGGA")]).unwrap();
        let engine = LikelihoodEngine::new(&a);
        let config = SearchConfig::default();
        let ex = FullEvalExecutor::new(&engine, config.optimize);
        let r = StepwiseSearch::new(&config, ex, 3).run().unwrap();
        assert_eq!(r.tree.num_tips(), 3);
        let a2 = Alignment::from_strings(&[("a", "ACGT"), ("b", "ACGA")]).unwrap();
        let engine2 = LikelihoodEngine::new(&a2);
        let ex2 = FullEvalExecutor::new(&engine2, config.optimize);
        let r2 = StepwiseSearch::new(&config, ex2, 2).run().unwrap();
        assert_eq!(r2.tree.num_tips(), 2);
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        let scores = vec![
            CandidateScore {
                ln_likelihood: -5.0,
                work_units: 1,
            },
            CandidateScore {
                ln_likelihood: -3.0,
                work_units: 1,
            },
            CandidateScore {
                ln_likelihood: -3.0,
                work_units: 1,
            },
        ];
        assert_eq!(argmax(&scores), 1);
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use crate::checkpoint::Checkpoint;
    use crate::executor::FullEvalExecutor;
    use fdml_likelihood::engine::LikelihoodEngine;
    use fdml_phylo::alignment::Alignment;
    use fdml_phylo::bipartition::SplitSet;

    fn alignment() -> Alignment {
        Alignment::from_strings(&[
            ("t0", "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"),
            ("t1", "ACGTACGTACTTACGTACGTACGAACGTACGTACGTACGT"),
            ("t2", "ACGAACGTACGTACGGACGTACGTACCTACGTAGGTACGT"),
            ("t3", "ACGAACGTACGTACGGACGTACTTACCTACGTAGGTACTT"),
            ("t4", "TCGAACGGACGTACGGAAGTACGTACCTACGGAGGTACGA"),
            ("t5", "TCGAACGGACGTACGGAAGTACGTTCCTACGGAGGAACGA"),
            ("t6", "TCGAACGGACGTACGTAAGTACGTTCCTACGGAGGAACGC"),
        ])
        .unwrap()
    }

    #[test]
    fn checkpoints_are_emitted_per_addition() {
        let a = alignment();
        let engine = LikelihoodEngine::new(&a);
        let config = SearchConfig {
            jumble_seed: 5,
            ..Default::default()
        };
        let ex = FullEvalExecutor::new(&engine, config.optimize);
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        {
            let mut search = StepwiseSearch::new(&config, ex, 7)
                .with_names(a.names().to_vec())
                .on_checkpoint(|cp| checkpoints.push(cp.clone()));
            search.run().unwrap();
        }
        // One checkpoint per added taxon beyond the triplet: taxa 4..=7.
        assert_eq!(checkpoints.len(), 4);
        assert_eq!(checkpoints[0].taxa_placed, 4);
        assert_eq!(checkpoints[3].taxa_placed, 7);
        for cp in &checkpoints {
            assert_eq!(cp.jumble_seed, 5);
            assert!(cp.ln_likelihood.is_finite());
        }
    }

    #[test]
    fn resume_reproduces_the_uninterrupted_run() {
        let a = alignment();
        let engine = LikelihoodEngine::new(&a);
        let config = SearchConfig {
            jumble_seed: 9,
            ..Default::default()
        };

        // Uninterrupted run, saving the mid-run checkpoint.
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let full = {
            let ex = FullEvalExecutor::new(&engine, config.optimize);
            let mut search = StepwiseSearch::new(&config, ex, 7)
                .with_names(a.names().to_vec())
                .on_checkpoint(|cp| checkpoints.push(cp.clone()));
            search.run().unwrap()
        };
        // Resume from the checkpoint with 5 of 7 taxa placed (round-trip
        // it through JSON as a real restart would).
        let mid = checkpoints.iter().find(|c| c.taxa_placed == 5).unwrap();
        let mid = Checkpoint::from_json(&mid.to_json()).unwrap();
        let resumed = {
            let ex = FullEvalExecutor::new(&engine, config.optimize);
            let mut search = StepwiseSearch::new(&config, ex, 7)
                .with_names(a.names().to_vec())
                .resume_from(mid);
            search.run().unwrap()
        };
        assert_eq!(
            SplitSet::of_tree(&full.tree, 7),
            SplitSet::of_tree(&resumed.tree, 7)
        );
        assert!((full.ln_likelihood - resumed.ln_likelihood).abs() < 1e-6);
        // The resumed run did strictly less work.
        assert!(resumed.candidates_evaluated < full.candidates_evaluated);
    }

    #[test]
    fn wal_replay_of_every_prefix_is_bit_identical() {
        let a = alignment();
        let engine = LikelihoodEngine::new(&a);
        let config = SearchConfig {
            jumble_seed: 9,
            ..Default::default()
        };

        // Uninterrupted run, recording the WAL.
        let mut wal: Vec<crate::wal::WalRound> = Vec::new();
        let full = {
            let ex = FullEvalExecutor::new(&engine, config.optimize);
            let mut search = StepwiseSearch::new(&config, ex, 7)
                .with_names(a.names().to_vec())
                .on_wal(|rec| wal.push(rec.clone()));
            search.run().unwrap()
        };
        assert!(
            wal.len() >= 8,
            "expected a multi-round WAL, got {}",
            wal.len()
        );
        let full_newick = fdml_phylo::newick::write_tree(&full.tree, a.names());

        // Resume from every prefix length, including 0 and the whole log.
        for k in 0..=wal.len() {
            let mut tail: Vec<crate::wal::WalRound> = Vec::new();
            let resumed = {
                let ex = FullEvalExecutor::new(&engine, config.optimize);
                let mut search = StepwiseSearch::new(&config, ex, 7)
                    .with_names(a.names().to_vec())
                    .resume_from_wal(wal[..k].to_vec())
                    .on_wal(|rec| tail.push(rec.clone()));
                search.run().unwrap()
            };
            assert_eq!(
                resumed.ln_likelihood.to_bits(),
                full.ln_likelihood.to_bits(),
                "prefix {k}: lnl diverged"
            );
            assert_eq!(
                fdml_phylo::newick::write_tree(&resumed.tree, a.names()),
                full_newick,
                "prefix {k}: tree diverged"
            );
            assert_eq!(resumed.wal_replayed_rounds, k, "prefix {k}: replay count");
            // The records emitted after the replayed prefix are exactly
            // the suffix of the original log.
            assert_eq!(tail, wal[k..].to_vec(), "prefix {k}: emitted suffix");
            // Scoring was actually skipped for the replayed rounds.
            if k > 0 {
                assert!(
                    resumed.candidates_evaluated < full.candidates_evaluated,
                    "prefix {k}: no scoring saved"
                );
            }
        }
    }

    #[test]
    fn wal_from_a_different_run_is_rejected() {
        let a = alignment();
        let engine = LikelihoodEngine::new(&a);
        let config = SearchConfig {
            jumble_seed: 9,
            ..Default::default()
        };
        let mut wal: Vec<crate::wal::WalRound> = Vec::new();
        {
            let ex = FullEvalExecutor::new(&engine, config.optimize);
            StepwiseSearch::new(&config, ex, 7)
                .with_names(a.names().to_vec())
                .on_wal(|rec| wal.push(rec.clone()))
                .run()
                .unwrap();
        }
        // Corrupt the recorded likelihood of a replayed round: resume
        // must fail loudly, not drift.
        wal[1].lnl_bits ^= 1;
        let ex = FullEvalExecutor::new(&engine, config.optimize);
        let err = StepwiseSearch::new(&config, ex, 7)
            .with_names(a.names().to_vec())
            .resume_from_wal(wal.clone())
            .run()
            .unwrap_err();
        assert!(
            format!("{err:?}").contains("divergence"),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    #[should_panic(expected = "different jumble seed")]
    fn resume_with_wrong_seed_panics() {
        let a = alignment();
        let engine = LikelihoodEngine::new(&a);
        let config = SearchConfig {
            jumble_seed: 1,
            ..Default::default()
        };
        let ex = FullEvalExecutor::new(&engine, config.optimize);
        let cp = Checkpoint {
            jumble_seed: 2,
            order: (0..7).collect(),
            taxa_placed: 4,
            tree_newick: String::new(),
            ln_likelihood: 0.0,
        };
        let _ = StepwiseSearch::new(&config, ex, 7).resume_from(cp);
    }
}
