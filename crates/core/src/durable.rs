//! The crash-consistent storage layer shared by every coordinator-side
//! persistence path: checkpoints, farm manifests, the serve registry, and
//! the write-ahead round log.
//!
//! Before this module, `Checkpoint`, `FarmManifest`, and `Registry` each
//! carried their own write-then-rename snippet — none of which fsynced, so
//! a crash right after an acknowledgement could lose the acknowledged
//! state, and none of which could read back a half-written file. Two
//! primitives replace all of them:
//!
//! * [`atomic_write`] — the full durable-replace sequence: write a
//!   temporary sibling, `fsync` it, rename it over the target, `fsync`
//!   the containing directory. After it returns, the new contents survive
//!   power loss; if the process dies at any interior step, the target
//!   still holds the complete previous version.
//! * [`LogWriter`] / [`read_log`] — an append-only log of CRC32-framed,
//!   length-prefixed records behind an 8-byte magic header, `fdatasync`ed
//!   per append. The reader validates record by record and truncates to
//!   the last valid one (the ZooKeeper recovery policy): a torn tail is
//!   dropped, never parsed.
//!
//! Every filesystem step consults `fdml_chaos::storage`, so the chaos
//! suite can tear writes, inject `EIO`/`ENOSPC`, and kill the "process"
//! between any two steps, then assert that recovery sees either the old
//! or the new state — never a hybrid.

use fdml_chaos::storage::{self, StorageFault, StorageOp};
use fdml_net::wire::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic header opening every framed log file.
pub const LOG_MAGIC: &[u8; 8] = b"FDMLLOG1";

/// Per-record framing overhead: `[len: u32 LE][crc32: u32 LE]`.
pub const RECORD_HEADER_BYTES: u64 = 8;

/// Largest record the reader will accept. Records are rounds or job
/// snapshots — a few KiB; anything larger is corruption.
pub const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

fn fault_error(fault: StorageFault, op: StorageOp, path: &Path) -> io::Error {
    io::Error::other(format!(
        "chaos: injected {:?} at {} of {}",
        fault,
        op.name(),
        path.display()
    ))
}

/// Write `bytes` honouring the installed storage-fault plan. A `Short`
/// fault splits the write (exercising the caller-side retry the kernel
/// contract requires); a `Torn` fault writes a prefix and dies.
fn faulted_write(file: &mut File, bytes: &[u8], op: StorageOp, path: &Path) -> io::Result<()> {
    match storage::decide(op) {
        StorageFault::None => file.write_all(bytes),
        StorageFault::Short => {
            let mid = bytes.len() / 2;
            file.write_all(&bytes[..mid])?;
            file.write_all(&bytes[mid..])
        }
        StorageFault::Torn => {
            let torn = bytes.len() / 2;
            file.write_all(&bytes[..torn])?;
            file.flush()?;
            Err(fault_error(StorageFault::Torn, op, path))
        }
        fault @ (StorageFault::Eio | StorageFault::Enospc | StorageFault::Crash) => {
            Err(fault_error(fault, op, path))
        }
    }
}

/// Run one non-write step (sync, rename) under the fault plan.
fn faulted_step<T>(
    op: StorageOp,
    path: &Path,
    step: impl FnOnce() -> io::Result<T>,
) -> io::Result<T> {
    match storage::decide(op) {
        StorageFault::None | StorageFault::Short => step(),
        fault => Err(fault_error(fault, op, path)),
    }
}

/// `fsync` the directory containing `path`, making a rename into it
/// durable. Directory fds are a POSIX-ism; on platforms where opening a
/// directory fails, the rename is already the best available guarantee.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    match File::open(parent) {
        Ok(dir) => dir.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Atomically replace the contents of `path` with `bytes` and make the
/// replacement durable: temp sibling → `fsync` file → rename → `fsync`
/// directory. Readers concurrently opening `path` see either the old or
/// the new complete contents, and once this returns the new contents
/// survive a crash.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = temp_sibling(path);
    let result = atomic_write_inner(path, &tmp, bytes);
    if result.is_err() {
        // Best-effort cleanup; a leftover temp is harmless but untidy.
        let _ = fs::remove_file(&tmp);
    }
    result
}

fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

fn atomic_write_inner(path: &Path, tmp: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = File::create(tmp)?;
    faulted_write(&mut file, bytes, StorageOp::TempWrite, path)?;
    faulted_step(StorageOp::SyncFile, path, || file.sync_all())?;
    drop(file);
    faulted_step(StorageOp::Rename, path, || fs::rename(tmp, path))?;
    faulted_step(StorageOp::SyncDir, path, || sync_parent_dir(path))
}

/// What [`read_log`] salvaged from a log file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveredLog {
    /// The validated record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// File offset just past the last valid record (where appends resume).
    pub valid_bytes: u64,
    /// Bytes past `valid_bytes` that failed validation and were dropped —
    /// nonzero exactly when the tail was torn or corrupt.
    pub dropped_bytes: u64,
}

/// Read and validate a framed log. Returns `Ok(None)` when the file does
/// not exist. A file too short for the magic, or with the wrong magic, is
/// treated as entirely invalid (`valid_bytes == 0`); a bad record header
/// or CRC stops validation there, dropping the tail.
pub fn read_log(path: &Path) -> io::Result<Option<RecoveredLog>> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    Ok(Some(validate_log_bytes(&raw)))
}

/// The validation core, shared by the reader and the tests: walk the
/// record frames, stop at the first invalid one.
pub fn validate_log_bytes(raw: &[u8]) -> RecoveredLog {
    if raw.len() < LOG_MAGIC.len() || &raw[..LOG_MAGIC.len()] != LOG_MAGIC {
        return RecoveredLog {
            records: Vec::new(),
            valid_bytes: 0,
            dropped_bytes: raw.len() as u64,
        };
    }
    let mut records = Vec::new();
    let mut offset = LOG_MAGIC.len();
    loop {
        let remaining = raw.len() - offset;
        if remaining < RECORD_HEADER_BYTES as usize {
            break;
        }
        let len = u32::from_le_bytes(raw[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(raw[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            break;
        }
        let body_start = offset + RECORD_HEADER_BYTES as usize;
        let body_end = body_start + len as usize;
        if body_end > raw.len() {
            break;
        }
        let body = &raw[body_start..body_end];
        if crc32(body) != crc {
            break;
        }
        records.push(body.to_vec());
        offset = body_end;
    }
    RecoveredLog {
        records,
        valid_bytes: offset as u64,
        dropped_bytes: (raw.len() - offset) as u64,
    }
}

/// Serialize `records` into the framed log format (magic + one frame per
/// record) without touching disk.
pub fn encode_log(records: &[&[u8]]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        LOG_MAGIC.len()
            + records
                .iter()
                .map(|r| r.len() + RECORD_HEADER_BYTES as usize)
                .sum::<usize>(),
    );
    out.extend_from_slice(LOG_MAGIC);
    for payload in records {
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// Atomically replace a framed log with exactly `records` — the
/// compaction primitive: readers concurrently opening the path see either
/// the old log or the compacted one, never a partial rewrite.
pub fn write_log_atomic(path: &Path, records: &[&[u8]]) -> io::Result<()> {
    atomic_write(path, &encode_log(records))
}

/// Appender for a framed log: one durable CRC32-framed record per
/// [`append`](LogWriter::append) call.
#[derive(Debug)]
pub struct LogWriter {
    file: File,
    path: PathBuf,
    bytes: u64,
}

impl LogWriter {
    /// Create a fresh log at `path` (truncating any previous file) and
    /// durably write the magic header.
    pub fn create(path: &Path) -> io::Result<LogWriter> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut file = File::create(path)?;
        faulted_write(&mut file, LOG_MAGIC, StorageOp::Append, path)?;
        faulted_step(StorageOp::SyncAppend, path, || file.sync_data())?;
        faulted_step(StorageOp::SyncDir, path, || sync_parent_dir(path))?;
        Ok(LogWriter {
            file,
            path: path.to_path_buf(),
            bytes: LOG_MAGIC.len() as u64,
        })
    }

    /// Open `path` for appending, first validating the existing contents
    /// and truncating any torn tail. Creates the log if missing. Returns
    /// the writer plus what was recovered.
    pub fn resume(path: &Path) -> io::Result<(LogWriter, RecoveredLog)> {
        let recovered = match read_log(path)? {
            Some(r) => r,
            None => {
                let writer = LogWriter::create(path)?;
                return Ok((writer, RecoveredLog::default()));
            }
        };
        if recovered.valid_bytes == 0 {
            // Magic missing or corrupt: the file is unreadable as a log;
            // start over (the recovered struct reports the dropped bytes).
            let writer = LogWriter::create(path)?;
            return Ok((writer, recovered));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        if recovered.dropped_bytes > 0 {
            file.set_len(recovered.valid_bytes)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        let bytes = recovered.valid_bytes;
        Ok((
            LogWriter {
                file,
                path: path.to_path_buf(),
                bytes,
            },
            recovered,
        ))
    }

    /// Append one record and `fdatasync` it. Returns the total framed
    /// bytes written (header + payload). On error the on-disk tail may be
    /// torn — exactly what [`read_log`] recovery handles.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let mut frame = Vec::with_capacity(payload.len() + RECORD_HEADER_BYTES as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        faulted_write(&mut self.file, &frame, StorageOp::Append, &self.path)?;
        faulted_step(StorageOp::SyncAppend, &self.path, || self.file.sync_data())?;
        self.bytes += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Total valid bytes in the log, including the magic header.
    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_chaos::storage::StoragePlan;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fdml-durable-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_and_survives_reread() {
        let dir = scratch_dir("aw");
        let path = dir.join("state.json");
        atomic_write(&path, b"v1").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"v1");
        atomic_write(&path, b"version-two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"version-two");
        // No temp litter after success.
        assert!(!temp_sibling(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_before_rename_preserves_old_contents() {
        let dir = scratch_dir("aw-crash");
        let path = dir.join("state.json");
        atomic_write(&path, b"old").unwrap();
        // Ops: TempWrite(0), SyncFile(1), Rename(2) — die just before rename.
        storage::install(StoragePlan::quiet(7).crash_at(2));
        assert!(atomic_write(&path, b"new").is_err());
        storage::clear();
        assert_eq!(fs::read(&path).unwrap(), b"old");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_temp_write_never_corrupts_target() {
        let dir = scratch_dir("aw-torn");
        let path = dir.join("state.json");
        atomic_write(&path, b"intact").unwrap();
        storage::install(StoragePlan::quiet(5).torn(1000));
        assert!(atomic_write(&path, b"replacement-payload").is_err());
        storage::clear();
        assert_eq!(fs::read(&path).unwrap(), b"intact");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn log_roundtrips_records() {
        let dir = scratch_dir("log");
        let path = dir.join("rounds.wal");
        let mut w = LogWriter::create(&path).unwrap();
        w.append(b"alpha").unwrap();
        w.append(b"").unwrap();
        w.append(b"gamma-rays").unwrap();
        drop(w);
        let got = read_log(&path).unwrap().unwrap();
        assert_eq!(
            got.records,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma-rays".to_vec()]
        );
        assert_eq!(got.dropped_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_resume_and_append_continues() {
        let dir = scratch_dir("log-torn");
        let path = dir.join("rounds.wal");
        let mut w = LogWriter::create(&path).unwrap();
        w.append(b"one").unwrap();
        w.append(b"two").unwrap();
        drop(w);
        // Tear the file mid-record, as a crash during append would.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 2]).unwrap();
        let (mut w, recovered) = LogWriter::resume(&path).unwrap();
        assert_eq!(recovered.records, vec![b"one".to_vec()]);
        assert!(recovered.dropped_bytes > 0);
        w.append(b"three").unwrap();
        drop(w);
        let got = read_log(&path).unwrap().unwrap();
        assert_eq!(got.records, vec![b"one".to_vec(), b"three".to_vec()]);
        assert_eq!(got.dropped_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_drops_that_record_and_the_rest() {
        let dir = scratch_dir("log-crc");
        let path = dir.join("rounds.wal");
        let mut w = LogWriter::create(&path).unwrap();
        w.append(b"good").unwrap();
        let second_at = w.len_bytes();
        w.append(b"badly-stored").unwrap();
        w.append(b"unreachable").unwrap();
        drop(w);
        let mut raw = fs::read(&path).unwrap();
        // Flip one payload byte of the second record.
        raw[second_at as usize + RECORD_HEADER_BYTES as usize] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        let got = read_log(&path).unwrap().unwrap();
        assert_eq!(got.records, vec![b"good".to_vec()]);
        assert!(got.dropped_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_reads_as_fully_invalid() {
        let dir = scratch_dir("log-magic");
        let path = dir.join("rounds.wal");
        fs::write(&path, b"NOTALOG!rest").unwrap();
        let got = read_log(&path).unwrap().unwrap();
        assert!(got.records.is_empty());
        assert_eq!(got.valid_bytes, 0);
        assert_eq!(got.dropped_bytes, 12);
        // Resume starts the log over.
        let (mut w, _) = LogWriter::resume(&path).unwrap();
        w.append(b"fresh").unwrap();
        drop(w);
        let got = read_log(&path).unwrap().unwrap();
        assert_eq!(got.records, vec![b"fresh".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_log_reads_as_none() {
        let dir = scratch_dir("log-none");
        assert!(read_log(&dir.join("absent.wal")).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_append_crash_point_recovers_a_prefix() {
        // Drive appends through every chaos crash-point; after each
        // simulated death the log must recover to an exact record prefix.
        let payloads: Vec<Vec<u8>> = (0..6u8)
            .map(|i| format!("record-{i}-{}", "x".repeat(i as usize * 7)).into_bytes())
            .collect();
        // A fault-free run to learn the op count.
        let dir = scratch_dir("log-matrix");
        storage::install(StoragePlan::quiet(0));
        let path = dir.join("clean.wal");
        let mut w = LogWriter::create(&path).unwrap();
        for p in &payloads {
            w.append(p).unwrap();
        }
        drop(w);
        let total_ops = storage::clear().ops;
        for crash_op in 0..total_ops {
            let path = dir.join(format!("crash-{crash_op}.wal"));
            storage::install(StoragePlan::quiet(0).crash_at(crash_op));
            let mut wrote = 0usize;
            if let Ok(mut w) = LogWriter::create(&path) {
                for p in &payloads {
                    if w.append(p).is_err() {
                        break;
                    }
                    wrote += 1;
                }
            }
            storage::clear();
            let (mut w, recovered) = LogWriter::resume(&path).unwrap();
            assert!(
                recovered.records.len() >= wrote,
                "crash at op {crash_op}: synced records lost ({} < {wrote})",
                recovered.records.len()
            );
            assert_eq!(
                recovered.records,
                payloads[..recovered.records.len()].to_vec(),
                "crash at op {crash_op}: recovered records are not a prefix"
            );
            // The recovered log accepts further appends.
            w.append(b"post-recovery").unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_errors_leave_log_appendable() {
        let dir = scratch_dir("log-transient");
        let path = dir.join("rounds.wal");
        let mut w = LogWriter::create(&path).unwrap();
        storage::install(StoragePlan {
            eio_per_mille: 300,
            enospc_per_mille: 300,
            short_per_mille: 200,
            ..StoragePlan::quiet(42)
        });
        let mut ok = 0;
        for i in 0..40u32 {
            if w.append(format!("r{i}").as_bytes()).is_ok() {
                ok += 1;
            }
        }
        let stats = storage::clear();
        assert!(stats.errors > 0, "plan injected no errors");
        assert!(ok > 0, "every append failed");
        drop(w);
        // Everything that reported success — and possibly a torn tail from
        // the failures — must validate to at least `ok` records... the log
        // may hold MORE than `ok` if an append wrote fully but failed at
        // sync. All validated records must be well-formed.
        let got = read_log(&path).unwrap().unwrap();
        assert!(got.records.len() >= ok);
        for r in &got.records {
            assert!(r.starts_with(b"r"));
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
