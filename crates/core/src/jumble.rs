//! Random taxon addition orders ("jumbles") — paper step 1.

use fdml_phylo::alignment::TaxonId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Adjust a user-supplied random seed the way fastDNAml does: "even-valued
/// user-supplied random number seeds are adjusted so that they use the
/// maximum period of the generator" (paper §2.1) — the underlying linear
/// congruential generator needs an odd seed.
pub fn adjust_seed(seed: u64) -> u64 {
    if seed.is_multiple_of(2) {
        seed | 1
    } else {
        seed
    }
}

/// A random ordering of the `n` taxa, deterministic in the adjusted seed.
pub fn jumble_order(num_taxa: usize, seed: u64) -> Vec<TaxonId> {
    let mut order: Vec<TaxonId> = (0..num_taxa as TaxonId).collect();
    let mut rng = StdRng::seed_from_u64(adjust_seed(seed));
    order.shuffle(&mut rng);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_seeds_become_odd() {
        assert_eq!(adjust_seed(4), 5);
        assert_eq!(adjust_seed(0), 1);
        assert_eq!(adjust_seed(7), 7);
    }

    #[test]
    fn even_seed_and_its_adjustment_agree() {
        assert_eq!(jumble_order(20, 4), jumble_order(20, 5));
    }

    #[test]
    fn order_is_a_permutation() {
        let order = jumble_order(50, 123);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(jumble_order(30, 9), jumble_order(30, 9));
        assert_ne!(jumble_order(30, 9), jumble_order(30, 11));
    }

    #[test]
    fn different_sizes_share_no_assumptions() {
        let a = jumble_order(3, 1);
        assert_eq!(a.len(), 3);
        let b = jumble_order(1, 1);
        assert_eq!(b, vec![0]);
    }
}
