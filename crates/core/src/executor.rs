//! Round executors: how a batch of candidate trees gets evaluated.
//!
//! The search driver ([`crate::search::StepwiseSearch`]) is generic over
//! this trait, exactly as fastDNAml's algorithm code is independent of
//! whether tree evaluation happens in a subroutine (serial) or on remote
//! workers (PVM/MPI):
//!
//! * [`FullEvalExecutor`] — every candidate is materialized and fully
//!   branch-length-optimized in process: the faithful worker computation
//!   and the reference for correctness/determinism tests.
//! * [`ScorerExecutor`] — candidates are scored incrementally
//!   (fastDNAml's "rapid approximation of the insertion point"), making
//!   paper-scale traces computable; the committed winner still gets the
//!   full treatment.
//!
//! The cluster executor that dispatches candidates over a transport lives
//! in [`crate::master`].

use fdml_likelihood::engine::{LikelihoodEngine, OptimizeOptions};
use fdml_likelihood::scorer::TreeScorer;
use fdml_phylo::error::PhyloError;
use fdml_phylo::ops::{apply_move, TreeMove};
use fdml_phylo::tree::Tree;
use std::fmt;

/// Errors an executor can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutorError {
    /// `score_round` or `commit` was called before `set_base` established a
    /// base tree.
    NoBase,
    /// A tree or likelihood operation failed.
    Phylo(PhyloError),
}

impl fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorError::NoBase => {
                write!(f, "set_base must be called before scoring or committing")
            }
            ExecutorError::Phylo(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecutorError {}

impl From<PhyloError> for ExecutorError {
    fn from(e: PhyloError) -> ExecutorError {
        ExecutorError::Phylo(e)
    }
}

impl From<ExecutorError> for PhyloError {
    fn from(e: ExecutorError) -> PhyloError {
        match e {
            ExecutorError::NoBase => PhyloError::InvalidTreeOp(
                "set_base must be called before scoring or committing".into(),
            ),
            ExecutorError::Phylo(e) => e,
        }
    }
}

/// The score of one candidate in a round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateScore {
    /// Candidate log-likelihood (comparison key).
    pub ln_likelihood: f64,
    /// Work units the evaluation cost (trace/simulator input).
    pub work_units: u64,
}

/// Outcome of establishing or updating the base tree.
#[derive(Debug, Clone)]
pub struct BaseOutcome {
    /// The optimized base tree (arena-identical to what the executor will
    /// score against — the driver must enumerate moves on exactly this).
    pub tree: Tree,
    /// Its log-likelihood.
    pub ln_likelihood: f64,
    /// Work units spent.
    pub work_units: u64,
}

/// Evaluation strategy for candidate rounds.
///
/// Calling [`RoundExecutor::score_round`] or [`RoundExecutor::commit`]
/// before [`RoundExecutor::set_base`] is a typed error
/// ([`ExecutorError::NoBase`]), not a panic.
pub trait RoundExecutor {
    /// Establish a new base tree, optimizing its branch lengths.
    fn set_base(&mut self, tree: Tree) -> Result<BaseOutcome, ExecutorError>;

    /// Score every move against the current base.
    fn score_round(&mut self, moves: &[TreeMove]) -> Result<Vec<CandidateScore>, ExecutorError>;

    /// Apply one move to the base, fully optimize, and make the result the
    /// new base.
    fn commit(&mut self, mv: &TreeMove) -> Result<BaseOutcome, ExecutorError>;
}

/// Full per-candidate evaluation in process (the serial worker).
pub struct FullEvalExecutor<'e> {
    engine: &'e LikelihoodEngine,
    opts: OptimizeOptions,
    base: Option<Tree>,
}

impl<'e> FullEvalExecutor<'e> {
    /// Create an executor over an engine.
    pub fn new(engine: &'e LikelihoodEngine, opts: OptimizeOptions) -> FullEvalExecutor<'e> {
        FullEvalExecutor {
            engine,
            opts,
            base: None,
        }
    }

    fn base(&self) -> Result<&Tree, ExecutorError> {
        self.base.as_ref().ok_or(ExecutorError::NoBase)
    }
}

impl RoundExecutor for FullEvalExecutor<'_> {
    fn set_base(&mut self, mut tree: Tree) -> Result<BaseOutcome, ExecutorError> {
        let r = self.engine.optimize(&mut tree, &self.opts);
        let out = BaseOutcome {
            tree: tree.clone(),
            ln_likelihood: r.ln_likelihood,
            work_units: r.work.work_units(),
        };
        self.base = Some(tree);
        Ok(out)
    }

    fn score_round(&mut self, moves: &[TreeMove]) -> Result<Vec<CandidateScore>, ExecutorError> {
        moves
            .iter()
            .map(|mv| {
                let mut cand = self.base()?.clone();
                apply_move(&mut cand, mv)?;
                let r = self.engine.optimize(&mut cand, &self.opts);
                Ok(CandidateScore {
                    ln_likelihood: r.ln_likelihood,
                    work_units: r.work.work_units(),
                })
            })
            .collect()
    }

    fn commit(&mut self, mv: &TreeMove) -> Result<BaseOutcome, ExecutorError> {
        let mut tree = self.base()?.clone();
        apply_move(&mut tree, mv)?;
        self.set_base(tree)
    }
}

/// Incremental scoring (see [`fdml_likelihood::scorer`]).
pub struct ScorerExecutor<'e> {
    engine: &'e LikelihoodEngine,
    opts: OptimizeOptions,
    scorer: Option<TreeScorer<'e>>,
}

impl<'e> ScorerExecutor<'e> {
    /// Create an executor over an engine.
    pub fn new(engine: &'e LikelihoodEngine, opts: OptimizeOptions) -> ScorerExecutor<'e> {
        ScorerExecutor {
            engine,
            opts,
            scorer: None,
        }
    }
}

impl RoundExecutor for ScorerExecutor<'_> {
    fn set_base(&mut self, tree: Tree) -> Result<BaseOutcome, ExecutorError> {
        let before = self
            .scorer
            .as_ref()
            .map(|s| s.base_work().work_units())
            .unwrap_or(0);
        let scorer = TreeScorer::new(self.engine, tree, self.opts);
        let out = BaseOutcome {
            tree: scorer.tree().clone(),
            ln_likelihood: scorer.ln_likelihood(),
            work_units: scorer.base_work().work_units(),
        };
        let _ = before;
        self.scorer = Some(scorer);
        Ok(out)
    }

    fn score_round(&mut self, moves: &[TreeMove]) -> Result<Vec<CandidateScore>, ExecutorError> {
        let scorer = self.scorer.as_mut().ok_or(ExecutorError::NoBase)?;
        Ok(scorer
            .score_moves(moves)
            .into_iter()
            .map(|s| CandidateScore {
                ln_likelihood: s.ln_likelihood,
                work_units: s.work.work_units(),
            })
            .collect())
    }

    fn commit(&mut self, mv: &TreeMove) -> Result<BaseOutcome, ExecutorError> {
        let scorer = self.scorer.as_mut().ok_or(ExecutorError::NoBase)?;
        let r = scorer.apply(mv)?;
        Ok(BaseOutcome {
            tree: scorer.tree().clone(),
            ln_likelihood: r.ln_likelihood,
            work_units: r.work.work_units(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_phylo::alignment::Alignment;
    use fdml_phylo::ops::enumerate_insertion_moves;

    fn setup() -> (Alignment, Tree) {
        let a = Alignment::from_strings(&[
            ("t0", "ACGTACGTACGTACGTACGT"),
            ("t1", "ACGTACGTACTTACGTACGA"),
            ("t2", "ACGAACGTACGTACGGAGGT"),
            ("t3", "TCGAACGGACGTACGGAGGA"),
        ])
        .unwrap();
        (a, Tree::triplet(0, 1, 2))
    }

    #[test]
    fn full_eval_scores_and_commits() {
        let (a, t) = setup();
        let engine = LikelihoodEngine::new(&a);
        let mut ex = FullEvalExecutor::new(engine_ref(&engine), OptimizeOptions::default());
        let base = ex.set_base(t).unwrap();
        assert!(base.ln_likelihood < 0.0);
        let moves = enumerate_insertion_moves(&base.tree, 3);
        let scores = ex.score_round(&moves).unwrap();
        assert_eq!(scores.len(), 3);
        assert!(scores.iter().all(|s| s.work_units > 0));
        let best = argmax(&scores);
        let out = ex.commit(&moves[best]).unwrap();
        assert_eq!(out.tree.num_tips(), 4);
        assert!(out.ln_likelihood >= scores[best].ln_likelihood - 1e-6);
    }

    #[test]
    fn scorer_executor_agrees_with_full_eval_on_ranking() {
        let (a, t) = setup();
        let engine = LikelihoodEngine::new(&a);
        let mut full = FullEvalExecutor::new(engine_ref(&engine), OptimizeOptions::default());
        let mut fast = ScorerExecutor::new(engine_ref(&engine), OptimizeOptions::default());
        let base_full = full.set_base(t.clone()).unwrap();
        let base_fast = fast.set_base(t).unwrap();
        assert!((base_full.ln_likelihood - base_fast.ln_likelihood).abs() < 1e-6);
        let moves = enumerate_insertion_moves(&base_full.tree, 3);
        let s_full = full.score_round(&moves).unwrap();
        let s_fast = fast.score_round(&moves).unwrap();
        assert_eq!(argmax(&s_full), argmax(&s_fast));
    }

    fn argmax(scores: &[CandidateScore]) -> usize {
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.ln_likelihood.total_cmp(&b.1.ln_likelihood))
            .unwrap()
            .0
    }

    fn engine_ref(e: &LikelihoodEngine) -> &LikelihoodEngine {
        e
    }

    #[test]
    fn commit_before_base_is_typed_error() {
        use fdml_phylo::tree::NodeId;
        let (a, _) = setup();
        let engine = LikelihoodEngine::new(&a);
        let mv = TreeMove::Insertion {
            taxon: 3,
            at: (NodeId(0), NodeId(1)),
        };

        let mut full = FullEvalExecutor::new(&engine, OptimizeOptions::default());
        assert!(matches!(full.commit(&mv), Err(ExecutorError::NoBase)));
        assert!(matches!(
            full.score_round(&[mv]),
            Err(ExecutorError::NoBase)
        ));

        let mut fast = ScorerExecutor::new(&engine, OptimizeOptions::default());
        assert!(matches!(fast.commit(&mv), Err(ExecutorError::NoBase)));
        assert!(matches!(
            fast.score_round(&[mv]),
            Err(ExecutorError::NoBase)
        ));

        // The conversion into PhyloError keeps the message.
        let p: PhyloError = ExecutorError::NoBase.into();
        assert!(p.to_string().contains("set_base"));
    }
}
