//! Search traces: the record of every dispatch round, consumed by the
//! RS/6000 SP simulator (`fdml-simsp`) to replay the run at any processor
//! count.
//!
//! A *round* is one implicit barrier of the paper's algorithm: a batch of
//! candidate trees dispatched to workers, followed by the selection of the
//! best (the "loosely synchronized" barrier of §3.2). The trace records the
//! exact per-candidate work so the simulator reproduces both the round
//! structure and the between-tree variance.

use serde::{Deserialize, Serialize};

/// What kind of dispatch round this was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundKind {
    /// Step 3: adding a taxon at each possible place (`2i-5` candidates).
    TaxonAddition,
    /// Step 4: local rearrangements after an addition.
    Rearrangement,
    /// Step 5: the final, possibly more extensive rearrangement.
    FinalRearrangement,
}

/// One dispatch round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round kind.
    pub kind: RoundKind,
    /// Number of taxa in the candidate trees of this round.
    pub taxa_in_tree: usize,
    /// Work units of each candidate, in dispatch order. The variance here
    /// is what loosens the barrier.
    pub candidate_work: Vec<u64>,
    /// Work the master performs between rounds (commit of the winner,
    /// candidate generation) — the serial fraction of the program.
    pub master_work: u64,
    /// Did this round improve the tree? A fruitless rearrangement round is
    /// the case Ceron et al.'s *speculative* dispatch exploits (discussed
    /// in §3.2 of the paper); the simulator's speculative mode overlaps it
    /// with the following round. Defaults to `true` for traces recorded
    /// before this field existed (conservative: no speculation benefit).
    #[serde(default = "default_improved")]
    pub improved: bool,
}

fn default_improved() -> bool {
    true
}

impl RoundRecord {
    /// Total worker work in this round.
    pub fn total_candidate_work(&self) -> u64 {
        self.candidate_work.iter().sum()
    }
}

/// A complete trace of one jumble's search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Dataset label (e.g. "synthetic-150").
    pub dataset: String,
    /// Taxa in the full problem.
    pub num_taxa: usize,
    /// Alignment length in sites.
    pub num_sites: usize,
    /// Unique patterns after compression.
    pub num_patterns: usize,
    /// The jumble seed used.
    pub jumble_seed: u64,
    /// Whether candidate work was measured under full per-tree evaluation
    /// (the worker protocol) or incremental scoring (see `fdml-simsp`'s
    /// cost model, which adds the fixed full-evaluation floor in the
    /// latter mode).
    pub full_evaluation: bool,
    /// Every dispatch round, in order.
    pub rounds: Vec<RoundRecord>,
    /// Final log-likelihood.
    pub final_ln_likelihood: f64,
    /// Final tree (Newick).
    pub final_newick: String,
}

impl SearchTrace {
    /// Total candidate (worker-side) work units across all rounds.
    pub fn total_worker_work(&self) -> u64 {
        self.rounds
            .iter()
            .map(RoundRecord::total_candidate_work)
            .sum()
    }

    /// Total master (serial) work units across all rounds.
    pub fn total_master_work(&self) -> u64 {
        self.rounds.iter().map(|r| r.master_work).sum()
    }

    /// Total number of candidate trees evaluated.
    pub fn total_candidates(&self) -> usize {
        self.rounds.iter().map(|r| r.candidate_work.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SearchTrace {
        SearchTrace {
            dataset: "test".into(),
            num_taxa: 5,
            num_sites: 100,
            num_patterns: 40,
            jumble_seed: 1,
            full_evaluation: false,
            rounds: vec![
                RoundRecord {
                    kind: RoundKind::TaxonAddition,
                    taxa_in_tree: 4,
                    candidate_work: vec![10, 20, 30],
                    master_work: 5,
                    improved: true,
                },
                RoundRecord {
                    kind: RoundKind::Rearrangement,
                    taxa_in_tree: 4,
                    candidate_work: vec![15, 25],
                    master_work: 7,
                    improved: false,
                },
            ],
            final_ln_likelihood: -100.0,
            final_newick: "(a,b,(c,d));".into(),
        }
    }

    #[test]
    fn totals() {
        let t = sample();
        assert_eq!(t.total_worker_work(), 100);
        assert_eq!(t.total_master_work(), 12);
        assert_eq!(t.total_candidates(), 5);
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: SearchTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn missing_improved_field_defaults_true() {
        let json =
            r#"{"kind":"Rearrangement","taxa_in_tree":5,"candidate_work":[1],"master_work":0}"#;
        let r: RoundRecord = serde_json::from_str(json).unwrap();
        assert!(r.improved);
    }
}
