//! Run configuration.

use fdml_likelihood::categories::RateCategories;
use fdml_likelihood::engine::{LikelihoodEngine, OptimizeOptions};
use fdml_likelihood::f84::F84Model;
use fdml_likelihood::newton::NewtonOptions;
use fdml_phylo::alignment::Alignment;
use fdml_phylo::patterns::PatternAlignment;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Configuration of one fastDNAml search (one jumble).
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// User random seed for the taxon addition order; even seeds are
    /// adjusted as in fastDNAml (see [`crate::jumble::adjust_seed`]).
    pub jumble_seed: u64,
    /// Vertices crossed in the local rearrangements after each taxon
    /// addition (paper step 4). fastDNAml's default is 1; the paper's
    /// performance runs use 5.
    pub rearrange_radius: usize,
    /// Vertices crossed in the final rearrangement (paper step 5).
    pub final_radius: usize,
    /// Transition/transversion ratio of the F84 model.
    pub tt_ratio: f64,
    /// Branch-length optimization settings for full tree treatment.
    pub optimize: OptimizeOptions,
    /// Minimum log-likelihood gain for a rearrangement to be accepted.
    pub min_improvement: f64,
    /// Safety cap on rearrangement rounds per step (the paper's loop runs
    /// "until the rearrangements no longer result in improvement"; the cap
    /// only guards against numerical livelock).
    pub max_rearrange_rounds: usize,
    /// How many of a round's leading candidates may be verified with the
    /// full treatment before the round is declared fruitless.
    pub max_verify_per_round: usize,
    /// Candidates whose approximate score falls more than this below the
    /// current tree's likelihood are not worth verifying.
    pub verify_slack: f64,
    /// Foreman fault-tolerance timeout: a worker that holds a tree longer
    /// than this is marked delinquent and the tree is re-dispatched
    /// (paper §2.2, the "user-specified timeout parameter").
    pub worker_timeout: Duration,
    /// Explicit rate categories (per *pattern*); `None` means a single
    /// unit-rate category.
    pub categories: Option<RateCategories>,
    /// Score candidate rounds incrementally: broadcast the round's base
    /// topology once and dispatch compact tree edits that workers score
    /// through a per-worker CLV cache. Master-side only — like
    /// `worker_timeout` it never travels in the engine wire config; the
    /// mode a worker runs in is decided per task by the message it
    /// receives (`TreeTask` vs `TreeEditTask`).
    pub incremental: bool,
    /// Intra-rank kernel threads per worker (`--intra-threads`): the
    /// likelihood kernels fan pattern blocks across this many threads.
    /// 1 (the default) keeps the serial fast path; results are
    /// bit-identical at any value. Travels in the engine wire config so
    /// remote workers build identically threaded engines.
    pub intra_threads: usize,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            jumble_seed: 1,
            rearrange_radius: 1,
            final_radius: 1,
            tt_ratio: fdml_likelihood::f84::DEFAULT_TT_RATIO,
            optimize: OptimizeOptions::default(),
            min_improvement: 1e-5,
            max_rearrange_rounds: 64,
            max_verify_per_round: 8,
            verify_slack: 3.0,
            worker_timeout: Duration::from_secs(30),
            categories: None,
            incremental: false,
            intra_threads: 1,
        }
    }
}

impl SearchConfig {
    /// The paper's performance-test settings: rearrangement radius 5 in
    /// both the local and final steps (§3.1).
    pub fn paper_settings(jumble_seed: u64) -> SearchConfig {
        SearchConfig {
            jumble_seed,
            rearrange_radius: 5,
            final_radius: 5,
            ..SearchConfig::default()
        }
    }

    /// Build the likelihood engine this configuration describes.
    pub fn build_engine(&self, alignment: &Alignment) -> LikelihoodEngine {
        let patterns = PatternAlignment::compress(alignment);
        let model = F84Model::new(alignment.empirical_frequencies(), self.tt_ratio);
        let categories = match &self.categories {
            Some(c) => {
                assert_eq!(c.num_patterns(), patterns.num_patterns());
                c.clone()
            }
            None => RateCategories::single(patterns.num_patterns()),
        };
        LikelihoodEngine::with_parts(patterns, model, categories)
            .with_intra_threads(self.intra_threads)
    }

    /// The wire form of the engine configuration, broadcast to workers.
    pub fn engine_config_json(&self) -> String {
        serde_json::to_string(&EngineConfigWire::from(self)).expect("config serializes")
    }

    /// Rebuild a search configuration from the wire form (worker side).
    /// The wire carries both the engine model and the search-control
    /// fields, so a worker handed a whole jumble ([`fdml_comm::Message::JumbleTask`])
    /// runs the byte-identical search a serial process would.
    pub fn from_engine_config_json(json: &str) -> Result<SearchConfig, serde_json::Error> {
        let wire: EngineConfigWire = serde_json::from_str(json)?;
        Ok(wire.into_config())
    }
}

/// The transferable subset of [`SearchConfig`] — the engine model plus the
/// search-control parameters — as broadcast in
/// [`fdml_comm::Message::ProblemData`]. Only `worker_timeout` (a purely
/// foreman-side concern), `jumble_seed` (carried per-task), and
/// `incremental` (a master-side dispatch choice, visible to workers only
/// through which task message arrives) stay behind.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EngineConfigWire {
    tt_ratio: f64,
    max_passes: usize,
    length_tolerance: f64,
    newton_max_iters: usize,
    newton_tolerance: f64,
    category_rates: Vec<f64>,
    category_assignment: Option<Vec<u32>>,
    #[serde(default = "default_rearrange_radius")]
    rearrange_radius: usize,
    #[serde(default = "default_rearrange_radius")]
    final_radius: usize,
    #[serde(default = "default_min_improvement")]
    min_improvement: f64,
    #[serde(default = "default_max_rearrange_rounds")]
    max_rearrange_rounds: usize,
    #[serde(default = "default_max_verify_per_round")]
    max_verify_per_round: usize,
    #[serde(default = "default_verify_slack")]
    verify_slack: f64,
    #[serde(default = "default_intra_threads")]
    intra_threads: usize,
}

fn default_intra_threads() -> usize {
    1
}

fn default_rearrange_radius() -> usize {
    SearchConfig::default().rearrange_radius
}

fn default_min_improvement() -> f64 {
    SearchConfig::default().min_improvement
}

fn default_max_rearrange_rounds() -> usize {
    SearchConfig::default().max_rearrange_rounds
}

fn default_max_verify_per_round() -> usize {
    SearchConfig::default().max_verify_per_round
}

fn default_verify_slack() -> f64 {
    SearchConfig::default().verify_slack
}

impl From<&SearchConfig> for EngineConfigWire {
    fn from(c: &SearchConfig) -> EngineConfigWire {
        EngineConfigWire {
            tt_ratio: c.tt_ratio,
            max_passes: c.optimize.max_passes,
            length_tolerance: c.optimize.length_tolerance,
            newton_max_iters: c.optimize.newton.max_iters,
            newton_tolerance: c.optimize.newton.tolerance,
            category_rates: c
                .categories
                .as_ref()
                .map(|cat| cat.rates().to_vec())
                .unwrap_or_else(|| vec![1.0]),
            category_assignment: c.categories.as_ref().map(|cat| cat.assignment().to_vec()),
            rearrange_radius: c.rearrange_radius,
            final_radius: c.final_radius,
            min_improvement: c.min_improvement,
            max_rearrange_rounds: c.max_rearrange_rounds,
            max_verify_per_round: c.max_verify_per_round,
            verify_slack: c.verify_slack,
            intra_threads: c.intra_threads,
        }
    }
}

impl EngineConfigWire {
    fn into_config(self) -> SearchConfig {
        let categories = self
            .category_assignment
            .map(|assignment| RateCategories::new(self.category_rates.clone(), assignment));
        SearchConfig {
            tt_ratio: self.tt_ratio,
            optimize: OptimizeOptions {
                max_passes: self.max_passes,
                length_tolerance: self.length_tolerance,
                newton: NewtonOptions {
                    max_iters: self.newton_max_iters,
                    tolerance: self.newton_tolerance,
                },
            },
            categories,
            rearrange_radius: self.rearrange_radius,
            final_radius: self.final_radius,
            min_improvement: self.min_improvement,
            max_rearrange_rounds: self.max_rearrange_rounds,
            max_verify_per_round: self.max_verify_per_round,
            verify_slack: self.verify_slack,
            intra_threads: self.intra_threads,
            ..SearchConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fastdnaml_defaults() {
        let c = SearchConfig::default();
        assert_eq!(c.rearrange_radius, 1);
        assert_eq!(c.tt_ratio, 2.0);
    }

    #[test]
    fn paper_settings_use_radius_five() {
        let c = SearchConfig::paper_settings(42);
        assert_eq!(c.rearrange_radius, 5);
        assert_eq!(c.final_radius, 5);
        assert_eq!(c.jumble_seed, 42);
    }

    #[test]
    fn engine_config_wire_roundtrip() {
        let mut c = SearchConfig {
            tt_ratio: 3.5,
            ..SearchConfig::default()
        };
        c.optimize.max_passes = 3;
        c.optimize.newton.max_iters = 7;
        let json = c.engine_config_json();
        let back = SearchConfig::from_engine_config_json(&json).unwrap();
        assert_eq!(back.tt_ratio, 3.5);
        assert_eq!(back.optimize.max_passes, 3);
        assert_eq!(back.optimize.newton.max_iters, 7);
        assert!(back.categories.is_none());
    }

    #[test]
    fn engine_config_wire_carries_search_controls() {
        // A worker given a whole jumble must search exactly like a serial
        // process with the same configuration would.
        let c = SearchConfig {
            rearrange_radius: 4,
            final_radius: 6,
            min_improvement: 2e-4,
            max_rearrange_rounds: 11,
            max_verify_per_round: 3,
            verify_slack: 7.5,
            ..SearchConfig::default()
        };
        let back = SearchConfig::from_engine_config_json(&c.engine_config_json()).unwrap();
        assert_eq!(back.rearrange_radius, 4);
        assert_eq!(back.final_radius, 6);
        assert_eq!(back.min_improvement, 2e-4);
        assert_eq!(back.max_rearrange_rounds, 11);
        assert_eq!(back.max_verify_per_round, 3);
        assert_eq!(back.verify_slack, 7.5);
    }

    #[test]
    fn engine_config_json_without_search_controls_takes_defaults() {
        // Wire payloads written before the search-control fields existed
        // still parse.
        let json = r#"{"tt_ratio":2.0,"max_passes":2,"length_tolerance":1e-5,
            "newton_max_iters":10,"newton_tolerance":1e-6,
            "category_rates":[1.0],"category_assignment":null}"#;
        let back = SearchConfig::from_engine_config_json(json).unwrap();
        let d = SearchConfig::default();
        assert_eq!(back.rearrange_radius, d.rearrange_radius);
        assert_eq!(back.verify_slack, d.verify_slack);
    }

    #[test]
    fn engine_config_wire_carries_intra_threads() {
        let c = SearchConfig {
            intra_threads: 4,
            ..SearchConfig::default()
        };
        let back = SearchConfig::from_engine_config_json(&c.engine_config_json()).unwrap();
        assert_eq!(back.intra_threads, 4);
        // Pre-existing payloads without the field default to serial.
        let json = r#"{"tt_ratio":2.0,"max_passes":2,"length_tolerance":1e-5,
            "newton_max_iters":10,"newton_tolerance":1e-6,
            "category_rates":[1.0],"category_assignment":null}"#;
        let old = SearchConfig::from_engine_config_json(json).unwrap();
        assert_eq!(old.intra_threads, 1);
        let a = Alignment::from_strings(&[("x", "ACGT"), ("y", "ACGA")]).unwrap();
        assert_eq!(c.build_engine(&a).intra_threads(), 4);
    }

    #[test]
    fn engine_config_wire_carries_categories() {
        let c = SearchConfig {
            categories: Some(RateCategories::new(vec![0.5, 2.0], vec![0, 1, 1])),
            ..SearchConfig::default()
        };
        let json = c.engine_config_json();
        let back = SearchConfig::from_engine_config_json(&json).unwrap();
        let cats = back.categories.unwrap();
        assert_eq!(cats.rates(), &[0.5, 2.0]);
        assert_eq!(cats.assignment(), &[0, 1, 1]);
    }

    #[test]
    fn build_engine_matches_alignment() {
        let a = Alignment::from_strings(&[("x", "ACGT"), ("y", "ACGA")]).unwrap();
        let c = SearchConfig::default();
        let e = c.build_engine(&a);
        assert_eq!(e.patterns().num_taxa(), 2);
    }
}
