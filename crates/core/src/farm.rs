//! The jumble farm: many random addition orders at once.
//!
//! The paper's time-to-solution argument (§6) is about *many* jumbles —
//! 200 random addition orders take years serially but a month on 64 CPUs.
//! This module is that layer: a two-level orchestrator in which the farm
//! scheduler (level 1) shards whole jumbles across the worker pool while
//! each jumble (level 2) is a complete stepwise-addition search. A jumble
//! travels as a single [`Message::JumbleTask`]; the worker runs the exact
//! in-process search a serial run would ([`run_one_jumble`]), so farm
//! output is byte-identical to the serial baseline regardless of farm
//! width or transport.
//!
//! The foreman's existing machinery — ready queue, timeout requeue, eager
//! disconnect requeue, duplicate dedup — schedules jumbles exactly as it
//! schedules candidate trees, which is what keeps the pool saturated
//! through each jumble's stepwise-addition tail: the moment a worker
//! finishes, the next pending jumble is dispatched to it.
//!
//! Results stream into an incremental majority-rule consensus
//! ([`ConsensusAccumulator`]) and into a [`FarmManifest`] checkpoint
//! (write-then-rename after every completion), so `--resume` recomputes
//! only unfinished jumbles and the consensus is available the moment the
//! last jumble lands.

use crate::checkpoint::{FarmManifest, JumbleStatus};
use crate::config::SearchConfig;
use crate::executor::ScorerExecutor;
use crate::jumble::adjust_seed;
use crate::search::{SearchResult, StepwiseSearch};
use crate::wal::{self, WalRound, WalSession, WalWriter};
use crate::worker::ranks;
use fdml_comm::message::Message;
use fdml_comm::transport::Transport;
use fdml_likelihood::engine::LikelihoodEngine;
use fdml_obs::{Event, Obs};
use fdml_phylo::alignment::Alignment;
use fdml_phylo::consensus::{Consensus, ConsensusAccumulator};
use fdml_phylo::error::PhyloError;
use fdml_phylo::{newick, phylip};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;

/// How a farm run is steered.
#[derive(Debug, Clone, Default)]
pub struct FarmOptions {
    /// Maximum jumbles in flight at once; `0` means "as many as there are
    /// pending jumbles" (the foreman then shards the workers across all of
    /// them). A small width bounds the blast radius of a restart.
    pub width: usize,
    /// Where to write the manifest after every completed jumble (atomic
    /// write-then-rename). `None` disables checkpointing.
    pub manifest_path: Option<PathBuf>,
    /// A previously written manifest to resume from: `Done` entries are
    /// replayed into the consensus without recomputation, `Pending` entries
    /// are run.
    pub resume: Option<FarmManifest>,
    /// Where each in-flight jumble keeps its write-ahead round log
    /// ([`crate::wal`]). `None` disables the WAL; with a directory, a
    /// killed coordinator resumes every unfinished jumble from its last
    /// committed round instead of its last taxon-addition boundary.
    pub wal_dir: Option<PathBuf>,
}

/// One jumble's outcome in a farm run.
#[derive(Debug, Clone)]
pub struct JumbleRun {
    /// The adjusted jumble seed.
    pub seed: u64,
    /// The best tree, as Newick text.
    pub newick: String,
    /// Its log-likelihood.
    pub ln_likelihood: f64,
    /// Dispatch rounds the search ran (0 when replayed from a manifest).
    pub rounds: u64,
    /// Candidate trees evaluated (0 when replayed from a manifest).
    pub candidates: u64,
    /// Work units expended (0 when replayed from a manifest).
    pub work_units: u64,
    /// True when the result came from a resumed manifest.
    pub reused: bool,
}

/// What every farm deployment (serial, threads, TCP) produces.
#[derive(Debug, Clone)]
pub struct FarmParts {
    /// Per-jumble results, in seed order (not completion order).
    pub runs: Vec<JumbleRun>,
    /// The majority-rule consensus of all jumble trees.
    pub consensus: Consensus,
    /// The final manifest (every entry `Done`).
    pub manifest: FarmManifest,
}

impl FarmParts {
    /// The best log-likelihood over all jumbles.
    pub fn best_ln_likelihood(&self) -> f64 {
        self.runs
            .iter()
            .map(|r| r.ln_likelihood)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// The CLI's seed schedule: `jumbles` seeds starting at `base_seed` with
/// stride 2 (fastDNAml's convention keeps user seeds odd), adjusted and
/// deduplicated.
pub fn plan_seeds(base_seed: u64, jumbles: usize) -> Result<Vec<u64>, PhyloError> {
    let raw: Vec<u64> = (0..jumbles as u64)
        .map(|i| base_seed.wrapping_add(2 * i))
        .collect();
    dedup_adjusted(&raw)
}

/// Canonicalize a user seed list: adjust each seed ([`adjust_seed`]) and
/// drop duplicates, keeping first-occurrence order. Seeds 4 and 5 name the
/// same jumble (both adjust to 5); running both would silently do the same
/// work twice and double-weight that topology in the consensus.
pub fn dedup_adjusted(seeds: &[u64]) -> Result<Vec<u64>, PhyloError> {
    let mut seen = std::collections::HashSet::new();
    let out: Vec<u64> = seeds
        .iter()
        .map(|&s| adjust_seed(s))
        .filter(|&s| seen.insert(s))
        .collect();
    if out.is_empty() {
        return Err(PhyloError::InvalidTreeOp(
            "at least one jumble seed is required".into(),
        ));
    }
    Ok(out)
}

/// Run one whole jumble in-process: the single code path shared by the
/// serial farm and the workers, which is what makes farm output
/// byte-identical to the serial baseline.
pub fn run_one_jumble(
    engine: &LikelihoodEngine,
    alignment: &Alignment,
    base_config: &SearchConfig,
    seed: u64,
) -> Result<SearchResult, PhyloError> {
    let config = SearchConfig {
        jumble_seed: seed,
        ..base_config.clone()
    };
    let executor = ScorerExecutor::new(engine, config.optimize);
    let result = StepwiseSearch::new(&config, executor, alignment.num_taxa())
        .with_names(alignment.names().to_vec())
        .run();
    result
}

/// [`run_one_jumble`] with a WAL attached: replay the committed prefix
/// (scoring skipped, state bit-identical), run the remainder live, and
/// hand each newly committed round to `on_wal` — the coordinator-side
/// append, or a wire send on a worker.
pub fn run_one_jumble_wal(
    engine: &LikelihoodEngine,
    alignment: &Alignment,
    base_config: &SearchConfig,
    seed: u64,
    wal: Vec<WalRound>,
    on_wal: impl FnMut(&WalRound),
) -> Result<SearchResult, PhyloError> {
    let config = SearchConfig {
        jumble_seed: seed,
        ..base_config.clone()
    };
    let executor = ScorerExecutor::new(engine, config.optimize);
    let result = StepwiseSearch::new(&config, executor, alignment.num_taxa())
        .with_names(alignment.names().to_vec())
        .resume_from_wal(wal)
        .on_wal(on_wal)
        .run();
    result
}

/// Run one jumble locally with its WAL on disk: recover the log (or start
/// one), replay, run live appending every committed round, and surface any
/// append failure as a hard error — an unreported round would silently
/// shrink the crash-tolerance window.
fn run_one_jumble_durable(
    engine: &LikelihoodEngine,
    alignment: &Alignment,
    config: &SearchConfig,
    seed: u64,
    dir: &std::path::Path,
    job: u64,
    obs: &Obs,
) -> Result<SearchResult, PhyloError> {
    let io = |e: std::io::Error| PhyloError::Format(format!("wal jumble {seed}: {e}"));
    let mut session = WalSession::open(dir, job, seed, alignment.num_taxa(), obs).map_err(io)?;
    let rounds = session.take_rounds();
    let result = run_one_jumble_wal(engine, alignment, config, seed, rounds, session.hook())?;
    session.finish().map_err(io)?;
    Ok(result)
}

/// The state a farm starts from: the manifest, the per-seed runs so far,
/// the consensus accumulator, and the seeds still to compute.
type PreparedFarm = (
    FarmManifest,
    HashMap<u64, JumbleRun>,
    ConsensusAccumulator,
    Vec<u64>,
);

/// Validate the seed list against the resume manifest (or build a fresh
/// one) and seed the consensus accumulator with already-`Done` entries.
fn prepare(
    alignment: &Alignment,
    seeds: &[u64],
    options: &FarmOptions,
    obs: &Obs,
) -> Result<PreparedFarm, PhyloError> {
    let seeds = dedup_adjusted(seeds)?;
    let manifest = match &options.resume {
        Some(m) => {
            if m.seeds() != seeds {
                return Err(PhyloError::InvalidTreeOp(format!(
                    "manifest seeds {:?} do not match the requested farm {:?}",
                    m.seeds(),
                    seeds
                )));
            }
            m.clone()
        }
        None => FarmManifest::new(&seeds),
    };
    let mut acc = ConsensusAccumulator::new(alignment.num_taxa(), 0.5, alignment.names().to_vec())?;
    let mut runs = HashMap::new();
    for entry in &manifest.entries {
        if entry.status != JumbleStatus::Done {
            continue;
        }
        let text = entry
            .newick
            .clone()
            .ok_or_else(|| PhyloError::InvalidTreeOp("Done entry without a tree".into()))?;
        let ln_likelihood = entry
            .ln_likelihood
            .ok_or_else(|| PhyloError::InvalidTreeOp("Done entry without a likelihood".into()))?;
        let tree = newick::parse_tree(&text, alignment)?;
        acc.add_tree(&tree)?;
        runs.insert(
            entry.seed,
            JumbleRun {
                seed: entry.seed,
                newick: text,
                ln_likelihood,
                rounds: 0,
                candidates: 0,
                work_units: 0,
                reused: true,
            },
        );
        if let Some(dir) = &options.wal_dir {
            // A crash can land between the manifest rename (entry Done)
            // and the WAL retire; the replayed entry's stale log would
            // otherwise survive every future resume.
            wal::retire(dir, 0, entry.seed)
                .map_err(|e| PhyloError::Format(format!("retire wal {}: {e}", entry.seed)))?;
        }
        obs.emit(|| Event::JumbleCompleted {
            seed: entry.seed,
            ln_likelihood,
            reused: true,
        });
    }
    let todo = manifest.unfinished();
    Ok((manifest, runs, acc, todo))
}

/// Record one freshly finished jumble everywhere it needs to go: the
/// consensus accumulator, the manifest (saved atomically when a path is
/// configured), the per-seed run map, and the event stream.
#[allow(clippy::too_many_arguments)]
fn absorb(
    alignment: &Alignment,
    options: &FarmOptions,
    manifest: &mut FarmManifest,
    runs: &mut HashMap<u64, JumbleRun>,
    acc: &mut ConsensusAccumulator,
    obs: &Obs,
    run: JumbleRun,
) -> Result<(), PhyloError> {
    let tree = newick::parse_tree(&run.newick, alignment)?;
    acc.add_tree(&tree)?;
    manifest.mark_done(run.seed, run.newick.clone(), run.ln_likelihood);
    if let Some(path) = &options.manifest_path {
        manifest
            .save(path)
            .map_err(|e| PhyloError::Format(format!("write manifest: {e}")))?;
    }
    if let Some(dir) = &options.wal_dir {
        // The result is durably in the manifest (or, manifest-less, will
        // be recomputed from scratch on restart anyway): the round log
        // has served its purpose and the directory stays bounded.
        wal::retire(dir, 0, run.seed)
            .map_err(|e| PhyloError::Format(format!("retire wal {}: {e}", run.seed)))?;
    }
    obs.emit(|| Event::JumbleCompleted {
        seed: run.seed,
        ln_likelihood: run.ln_likelihood,
        reused: false,
    });
    runs.insert(run.seed, run);
    Ok(())
}

fn finish(
    manifest: FarmManifest,
    mut runs: HashMap<u64, JumbleRun>,
    acc: &ConsensusAccumulator,
) -> Result<FarmParts, PhyloError> {
    let runs: Vec<JumbleRun> = manifest
        .seeds()
        .iter()
        .map(|s| runs.remove(s).expect("every seed has a run"))
        .collect();
    Ok(FarmParts {
        runs,
        consensus: acc.consensus()?,
        manifest,
    })
}

/// The serial farm: jumbles run one after another in-process, with the
/// same manifest / resume / consensus semantics as the parallel farm —
/// the baseline the determinism suite compares every deployment against.
pub fn serial_farm(
    alignment: &Alignment,
    config: &SearchConfig,
    seeds: &[u64],
    options: &FarmOptions,
    obs: &Obs,
) -> Result<FarmParts, PhyloError> {
    let (mut manifest, mut runs, mut acc, todo) = prepare(alignment, seeds, options, obs)?;
    let total = manifest.entries.len();
    let engine = config.build_engine(alignment);
    for (i, &seed) in todo.iter().enumerate() {
        obs.emit(|| Event::JumbleStarted { seed });
        obs.emit(|| Event::FarmProgress {
            completed: total - (todo.len() - i),
            in_flight: 1,
            pending: todo.len() - i - 1,
            total,
        });
        let result = match &options.wal_dir {
            Some(dir) => run_one_jumble_durable(&engine, alignment, config, seed, dir, 0, obs)?,
            None => run_one_jumble(&engine, alignment, config, seed)?,
        };
        let run = JumbleRun {
            seed,
            newick: newick::write_tree(&result.tree, alignment.names()),
            ln_likelihood: result.ln_likelihood,
            rounds: result.rounds as u64,
            candidates: result.candidates_evaluated as u64,
            work_units: result.work_units,
            reused: false,
        };
        absorb(
            alignment,
            options,
            &mut manifest,
            &mut runs,
            &mut acc,
            obs,
            run,
        )?;
    }
    obs.emit(|| Event::FarmProgress {
        completed: total,
        in_flight: 0,
        pending: 0,
        total,
    });
    finish(manifest, runs, &acc)
}

/// The farm scheduler, run by rank 0 against any [`Transport`] (threads or
/// TCP): broadcast the problem, keep up to `width` jumbles dispatched
/// through the foreman, fold each [`Message::JumbleResult`] into the
/// consensus and the manifest, and refill the pool until every seed is
/// `Done`. The caller owns transport setup and the final `Shutdown`.
pub fn run_farm_master<T: Transport>(
    transport: &T,
    alignment: &Alignment,
    config: &SearchConfig,
    seeds: &[u64],
    options: &FarmOptions,
    obs: &Obs,
) -> Result<FarmParts, PhyloError> {
    for rank in ranks::FIRST_WORKER..transport.size() {
        // Best-effort: a worker that died before the broadcast is the
        // foreman's problem (eager requeue / all-dead abort), not ours.
        let _ = transport.send(
            rank,
            &Message::ProblemData {
                phylip: phylip::write(alignment),
                config_json: config.engine_config_json(),
            },
        );
    }
    let (mut manifest, mut runs, mut acc, todo) = prepare(alignment, seeds, options, obs)?;
    let total = manifest.entries.len();
    let width = if options.width == 0 {
        usize::MAX
    } else {
        options.width
    };
    let mut pending: VecDeque<u64> = todo.into();
    let mut in_flight: usize = 0;
    let mut next_task: u64 = 0;
    // Built only if the foreman quarantines a jumble.
    let mut local_engine: Option<LikelihoodEngine> = None;
    // One append handle per in-flight jumble when a WAL directory is
    // configured; entries leave the map when the jumble is absorbed.
    let mut writers: HashMap<u64, WalWriter> = HashMap::new();
    let wal_io = |e: std::io::Error| PhyloError::Format(format!("wal: {e}"));
    macro_rules! dispatch_up_to_width {
        () => {
            while in_flight < width {
                let Some(seed) = pending.pop_front() else {
                    break;
                };
                let msg = match &options.wal_dir {
                    Some(dir) => {
                        // Carry the committed prefix inline so the worker
                        // replays it, then streams rounds back starting at
                        // exactly this writer's next index.
                        let (entries, writer) = match wal::load(dir, 0, seed).map_err(wal_io)? {
                            Some(state) => {
                                let w = WalWriter::resume(dir, 0, seed, &state).map_err(wal_io)?;
                                let replayed = state.rounds.len() as u64;
                                if replayed > 0 {
                                    obs.emit(|| Event::WalReplay {
                                        job: 0,
                                        seed,
                                        rounds: replayed,
                                    });
                                }
                                let entries = state.rounds.iter().map(|r| r.to_json()).collect();
                                (entries, w)
                            }
                            None => {
                                let w = WalWriter::create(dir, 0, seed, alignment.num_taxa())
                                    .map_err(wal_io)?;
                                (Vec::new(), w)
                            }
                        };
                        writers.insert(seed, writer);
                        Message::JumbleResume {
                            job: 0,
                            task: next_task,
                            seed,
                            wal: entries,
                        }
                    }
                    None => Message::JumbleTask {
                        task: next_task,
                        seed,
                    },
                };
                transport
                    .send(ranks::FOREMAN, &msg)
                    .map_err(|e| PhyloError::Format(format!("transport: {e}")))?;
                next_task += 1;
                in_flight += 1;
                obs.emit(|| Event::JumbleStarted { seed });
            }
            let completed = total - in_flight - pending.len();
            obs.emit(|| Event::FarmProgress {
                completed,
                in_flight,
                pending: pending.len(),
                total,
            });
        };
    }
    dispatch_up_to_width!();
    while in_flight > 0 {
        let (_, msg) = transport
            .recv()
            .map_err(|e| PhyloError::Format(format!("transport: {e}")))?;
        match msg {
            Message::JumbleResult {
                task: _,
                seed,
                newick: text,
                ln_likelihood,
                rounds,
                candidates,
                work_units,
            } => {
                if runs.contains_key(&seed) {
                    // The foreman dedups by task id; a reassigned seed can
                    // still answer twice under a different task id.
                    continue;
                }
                in_flight -= 1;
                writers.remove(&seed);
                absorb(
                    alignment,
                    options,
                    &mut manifest,
                    &mut runs,
                    &mut acc,
                    obs,
                    JumbleRun {
                        seed,
                        newick: text,
                        ln_likelihood,
                        rounds,
                        candidates,
                        work_units,
                        reused: false,
                    },
                )?;
                dispatch_up_to_width!();
            }
            Message::Quarantined { payload, .. } => {
                // The foreman exhausted this jumble's failure budget across
                // distinct workers; run it here. Same `run_one_jumble` the
                // workers call, so the tree is byte-identical.
                let fdml_comm::message::TaskPayload::Jumble { seed } = payload else {
                    continue;
                };
                if runs.contains_key(&seed) {
                    continue;
                }
                let engine = local_engine.get_or_insert_with(|| config.build_engine(alignment));
                let result = match &options.wal_dir {
                    Some(dir) => {
                        // Drop our stale handle first: the local rerun
                        // re-recovers the log, which may hold rounds the
                        // failed workers streamed before dying.
                        writers.remove(&seed);
                        run_one_jumble_durable(engine, alignment, config, seed, dir, 0, obs)?
                    }
                    None => run_one_jumble(engine, alignment, config, seed)?,
                };
                in_flight -= 1;
                absorb(
                    alignment,
                    options,
                    &mut manifest,
                    &mut runs,
                    &mut acc,
                    obs,
                    JumbleRun {
                        seed,
                        newick: newick::write_tree(&result.tree, alignment.names()),
                        ln_likelihood: result.ln_likelihood,
                        rounds: result.rounds as u64,
                        candidates: result.candidates_evaluated as u64,
                        work_units: result.work_units,
                        reused: false,
                    },
                )?;
                dispatch_up_to_width!();
            }
            Message::Abort { reason } => {
                // The manifest on disk is still valid (write-then-rename
                // after every completion), so the run is resumable.
                return Err(PhyloError::Format(format!("farm aborted: {reason}")));
            }
            Message::WalRound {
                job: _,
                seed,
                index,
                entry,
            } => {
                // A worker committed a round. No writer means the jumble
                // already finished (a requeued duplicate's late stream):
                // drop it. A below-next index is a re-streamed prefix from
                // a restarted worker: `append` dedups it. A gap is a
                // protocol violation and aborts the farm.
                if let Some(writer) = writers.get_mut(&seed) {
                    let round = WalRound::from_json(&entry)
                        .map_err(|e| PhyloError::Format(format!("bad wal round: {e}")))?;
                    if let Some(bytes) = writer.append(&round).map_err(wal_io)? {
                        obs.emit(|| Event::WalAppend {
                            job: 0,
                            seed,
                            index,
                            bytes,
                        });
                    }
                }
            }
            // Transport-synthesized liveness: a departed worker is the
            // foreman's problem; a (re)joined worker needs the problem data
            // before it can serve jumbles.
            Message::PeerDown { .. } => {}
            Message::PeerUp { rank } => {
                let _ = transport.send(
                    rank,
                    &Message::ProblemData {
                        phylip: phylip::write(alignment),
                        config_json: config.engine_config_json(),
                    },
                );
            }
            other => {
                debug_assert!(false, "farm master got unexpected {}", other.kind());
            }
        }
    }
    finish(manifest, runs, &acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_seeds_strides_and_dedups() {
        assert_eq!(plan_seeds(1, 3).unwrap(), vec![1, 3, 5]);
        // Even base: every seed adjusts up by one; no collisions.
        assert_eq!(plan_seeds(4, 3).unwrap(), vec![5, 7, 9]);
        assert!(plan_seeds(1, 0).is_err());
    }

    #[test]
    fn dedup_folds_colliding_seeds() {
        // 4 and 5 both adjust to 5: one jumble, not two.
        assert_eq!(dedup_adjusted(&[4, 5, 7]).unwrap(), vec![5, 7]);
        assert_eq!(dedup_adjusted(&[9, 9, 1]).unwrap(), vec![9, 1]);
        assert!(dedup_adjusted(&[]).is_err());
    }
}
