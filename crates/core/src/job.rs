//! Resolving a wire-level [`JobSpec`] into the runnable form the
//! orchestration entrypoints consume.
//!
//! Every high-level entrypoint in this crate — [`crate::runner`]'s
//! threaded searches, [`crate::netrun`]'s TCP launchers, and the
//! `fdml-serve` daemon's scheduler — is constructed from the same
//! [`ResolvedJob`]: the parsed alignment, the search configuration, and
//! the planned jumble-seed list. One description of a job, however it
//! arrived (CLI flags, a `Submit` frame, or a durable registry entry).

use crate::config::SearchConfig;
use crate::farm::plan_seeds;
use fdml_comm::job::JobSpec;
use fdml_phylo::alignment::Alignment;
use fdml_phylo::error::PhyloError;
use fdml_phylo::phylip;

/// A [`JobSpec`] made runnable: alignment parsed, config rebuilt from its
/// wire form, jumble seeds planned.
#[derive(Debug, Clone)]
pub struct ResolvedJob {
    /// The parsed alignment.
    pub alignment: Alignment,
    /// The search configuration (model, radii, fault-tolerance timeout).
    pub config: SearchConfig,
    /// The adjusted, deduplicated jumble seeds, in plan order. A
    /// single-element list is the one-shot (non-farm) case.
    pub seeds: Vec<u64>,
}

impl ResolvedJob {
    /// Build from already-parsed parts (the in-process path: tests and
    /// callers that hold an [`Alignment`] already). Seeds are planned from
    /// `config.jumble_seed`.
    pub fn from_parts(
        alignment: Alignment,
        config: SearchConfig,
        jumbles: usize,
    ) -> Result<ResolvedJob, PhyloError> {
        let seeds = plan_seeds(config.jumble_seed, jumbles)?;
        Ok(ResolvedJob {
            alignment,
            config,
            seeds,
        })
    }

    /// Resolve a wire-level spec (the submit path and the daemon's
    /// registry). Fails with a typed [`PhyloError`] on malformed PHYLIP
    /// or config JSON.
    pub fn from_spec(spec: &JobSpec) -> Result<ResolvedJob, PhyloError> {
        let alignment = phylip::parse(&spec.phylip)
            .map_err(|e| PhyloError::Format(format!("bad alignment in job spec: {e}")))?;
        let mut config = SearchConfig::from_engine_config_json(&spec.config_json)
            .map_err(|e| PhyloError::Format(format!("bad config in job spec: {e}")))?;
        config.jumble_seed = spec.base_seed;
        // The typed field wins over whatever the wire config carries: the
        // scheduler accounts slots from the spec, so the engines workers
        // build must match it.
        if spec.intra_threads > 0 {
            config.intra_threads = spec.intra_threads;
        }
        let seeds = plan_seeds(spec.base_seed, spec.jumbles)?;
        Ok(ResolvedJob {
            alignment,
            config,
            seeds,
        })
    }

    /// Export back to the wire form (the CLI one-shot path builds its spec
    /// this way so one-shot and submitted runs describe jobs identically).
    pub fn to_spec(&self) -> JobSpec {
        JobSpec {
            phylip: phylip::write(&self.alignment),
            config_json: self.config.engine_config_json(),
            jumbles: self.seeds.len().max(1),
            base_seed: self.config.jumble_seed,
            max_ranks: 0,
            max_wall_ms: 0,
            intra_threads: self.config.intra_threads,
            label: String::new(),
        }
    }

    /// Whether this job is a multi-jumble farm (vs a one-shot search).
    pub fn is_farm(&self) -> bool {
        self.seeds.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_comm::job::JobSpecError;

    fn alignment() -> Alignment {
        Alignment::from_strings(&[
            ("t0", "ACGTACGTACGT"),
            ("t1", "ACGTACGAACGT"),
            ("t2", "ACTTACGAACGA"),
            ("t3", "TCTTACGAACGA"),
        ])
        .unwrap()
    }

    #[test]
    fn spec_round_trip_preserves_search_inputs() {
        let config = SearchConfig {
            jumble_seed: 7,
            rearrange_radius: 2,
            ..SearchConfig::default()
        };
        let job = ResolvedJob::from_parts(alignment(), config, 3).unwrap();
        let spec = job.to_spec();
        let back = ResolvedJob::from_spec(&spec).unwrap();
        assert_eq!(back.seeds, job.seeds);
        assert_eq!(back.config.jumble_seed, 7);
        assert_eq!(back.config.rearrange_radius, 2);
        assert_eq!(back.alignment.names(), job.alignment.names());
        assert!(back.is_farm());
    }

    #[test]
    fn builder_feeds_from_parts_equivalent_spec() {
        let config = SearchConfig::default();
        let spec = JobSpec::builder()
            .phylip(phylip::write(&alignment()))
            .config_json(config.engine_config_json())
            .base_seed(9)
            .jumbles(2)
            .build()
            .unwrap();
        let resolved = ResolvedJob::from_spec(&spec).unwrap();
        let direct = ResolvedJob::from_parts(
            alignment(),
            SearchConfig {
                jumble_seed: 9,
                ..config
            },
            2,
        )
        .unwrap();
        assert_eq!(resolved.seeds, direct.seeds);
    }

    #[test]
    fn bad_phylip_is_a_typed_error() {
        let spec = JobSpec {
            phylip: "not phylip".into(),
            config_json: SearchConfig::default().engine_config_json(),
            jumbles: 1,
            base_seed: 1,
            max_ranks: 0,
            max_wall_ms: 0,
            intra_threads: 1,
            label: String::new(),
        };
        assert!(ResolvedJob::from_spec(&spec).is_err());
        // And the builder rejects structurally bad flag sets before a spec
        // even exists.
        assert!(matches!(
            JobSpec::builder().build(),
            Err(JobSpecError::Missing { .. })
        ));
    }
}
