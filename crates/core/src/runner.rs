//! Entry points: the serial program, the threaded parallel program, and
//! multi-jumble orchestration.

use crate::checkpoint::FarmManifest;
use crate::config::SearchConfig;
use crate::executor::{FullEvalExecutor, ScorerExecutor};
use crate::farm::{dedup_adjusted, run_farm_master, run_one_jumble, FarmOptions, JumbleRun};
use crate::foreman::{run_foreman, ForemanStats};
use crate::hierarchy::{
    first_worker_rank, home_rank, regional_rank, run_regional_foreman, run_root_foreman,
    RegionalOptions, RootStats,
};
use crate::job::ResolvedJob;
use crate::master::ClusterExecutor;
use crate::monitor::{run_monitor, MonitorReport};
use crate::search::{SearchResult, StepwiseSearch};
use crate::trace::SearchTrace;
use crate::wal::WalSession;
use crate::worker::{ranks, run_worker, run_worker_homed, WorkerStats};
use fdml_chaos::{ChaosPlan, ChaosTransport};
use fdml_comm::fault::{FaultPlan, FaultyTransport};
use fdml_comm::message::Message;
use fdml_comm::recording::Recording;
use fdml_comm::threads::ThreadUniverse;
use fdml_comm::transport::Transport;
use fdml_likelihood::engine::LikelihoodEngine;
use fdml_obs::{Event, MemorySink, Obs, RunReport, Sink};
use fdml_phylo::alignment::Alignment;
use fdml_phylo::consensus::{consensus, Consensus};
use fdml_phylo::error::PhyloError;
use fdml_phylo::phylip;
use fdml_phylo::tree::Tree;
use std::collections::HashMap;
use std::thread;

/// Serial search: the worker evaluation runs as an in-process subroutine,
/// exactly as in fastDNAml's serial build. Every candidate tree receives
/// the full branch-length optimization.
pub fn serial_search(
    alignment: &Alignment,
    config: &SearchConfig,
) -> Result<SearchResult, PhyloError> {
    let engine = config.build_engine(alignment);
    let executor = FullEvalExecutor::new(&engine, config.optimize);
    StepwiseSearch::new(config, executor, alignment.num_taxa())
        .with_names(alignment.names().to_vec())
        .run()
}

/// Serial search using the incremental candidate scorer (fast mode) —
/// used for paper-scale trace generation.
pub fn fast_serial_search(
    alignment: &Alignment,
    config: &SearchConfig,
) -> Result<SearchResult, PhyloError> {
    let engine = config.build_engine(alignment);
    let executor = ScorerExecutor::new(&engine, config.optimize);
    let result = StepwiseSearch::new(config, executor, alignment.num_taxa())
        .with_names(alignment.names().to_vec())
        .run();
    result
}

/// Serial search with trace recording, for the simulator.
///
/// `full_evaluation = true` evaluates every candidate like a worker would
/// (slow, faithful); `false` uses incremental scoring (fast; the simulator
/// cost model adds the deterministic full-evaluation floor per candidate).
pub fn traced_search(
    alignment: &Alignment,
    config: &SearchConfig,
    dataset: &str,
    full_evaluation: bool,
) -> Result<(SearchResult, SearchTrace), PhyloError> {
    let engine = config.build_engine(alignment);
    let num_patterns = engine.patterns().num_patterns();
    if full_evaluation {
        let executor = FullEvalExecutor::new(&engine, config.optimize);
        let mut search = StepwiseSearch::new(config, executor, alignment.num_taxa())
            .with_names(alignment.names().to_vec())
            .with_trace(dataset, alignment.num_sites(), num_patterns, true);
        let result = search.run()?;
        let trace = search.take_trace().expect("trace enabled");
        Ok((result, trace))
    } else {
        let executor = ScorerExecutor::new(&engine, config.optimize);
        let mut search = StepwiseSearch::new(config, executor, alignment.num_taxa())
            .with_names(alignment.names().to_vec())
            .with_trace(dataset, alignment.num_sites(), num_patterns, false);
        let result = search.run()?;
        let trace = search.take_trace().expect("trace enabled");
        Ok((result, trace))
    }
}

/// Optional machinery threaded through a parallel or farm run: fault
/// injection, a chaos plan, and observer sinks. [`RunOptions::default`] is
/// the plain unobserved run, so the common call reads
/// `parallel_search(&job, n, RunOptions::default())`.
#[derive(Default)]
pub struct RunOptions {
    /// Injected per-worker fault plans, keyed by worker rank — exercises
    /// the foreman's timeout machinery.
    pub faults: HashMap<usize, FaultPlan>,
    /// A seeded chaos plan: every worker transport is wrapped in
    /// [`ChaosTransport`], injecting the plan's exact per-rank drop /
    /// delay / duplicate / corrupt / kill schedule.
    pub chaos: Option<ChaosPlan>,
    /// Observer sinks. Empty (or all-null) disables observation entirely —
    /// the instrumented code paths then cost one branch per emit point and
    /// no allocation, and the outcome's `report` is `None`.
    pub sinks: Vec<Box<dyn Sink>>,
    /// Number of regional foremen for a hierarchical run: `0` (the
    /// default) is the paper's flat topology; `R > 0` puts a root foreman
    /// at rank 1, regional foremen at ranks `3..3+R`, and shards the
    /// workers round-robin among them.
    pub regions: usize,
    /// Test hook for the region-loss ladder: `(region, n)` makes regional
    /// foreman `region` crash after forwarding `n` results, dropping its
    /// unflushed upward batch. Ignored in flat runs.
    pub die_region: Option<(usize, u64)>,
    /// Write-ahead round log directory for the master's search
    /// ([`crate::wal`]): an existing log is replayed (bit-identical
    /// resume from the last committed round), and every newly committed
    /// round is appended durably. `None` disables the WAL.
    pub wal_dir: Option<std::path::PathBuf>,
}

impl RunOptions {
    /// Observation only: events stream into `sinks` and the outcome
    /// carries a [`RunReport`].
    pub fn observed(sinks: Vec<Box<dyn Sink>>) -> RunOptions {
        RunOptions {
            sinks,
            ..RunOptions::default()
        }
    }

    /// Fault injection only (keyed by worker rank).
    pub fn with_faults(faults: HashMap<usize, FaultPlan>) -> RunOptions {
        RunOptions {
            faults,
            ..RunOptions::default()
        }
    }

    /// Chaos plan only. The soak property: as long as at least one worker
    /// survives, the result is byte-identical to the fault-free run; when
    /// the plan kills every worker, the run returns a typed error instead
    /// of hanging.
    pub fn chaotic(plan: &ChaosPlan) -> RunOptions {
        RunOptions {
            chaos: Some(plan.clone()),
            ..RunOptions::default()
        }
    }
}

/// Scheduling-tree statistics of a hierarchical run.
#[derive(Debug)]
pub struct HierarchyOutcome {
    /// The root foreman's leasing / stealing / region-loss counters.
    pub root: RootStats,
    /// Per-region foreman statistics, indexed by region index.
    pub regions: HashMap<usize, ForemanStats>,
}

/// Everything a parallel run returns.
#[derive(Debug)]
pub struct ParallelOutcome {
    /// The search result (identical tree to a serial run with the same
    /// configuration).
    pub result: SearchResult,
    /// The monitor's aggregated instrumentation.
    pub monitor: MonitorReport,
    /// Foreman statistics — the flat foreman's, or the root foreman's
    /// scheduler counters in a hierarchical run.
    pub foreman: ForemanStats,
    /// Per-worker statistics, indexed by rank.
    pub workers: HashMap<usize, WorkerStats>,
    /// Root and per-region statistics — `Some` only for hierarchical runs
    /// (`RunOptions::regions > 0`).
    pub hierarchy: Option<HierarchyOutcome>,
    /// The end-of-run observability report — `Some` when the run was
    /// observed (sinks in [`RunOptions`]), `None` otherwise.
    pub report: Option<RunReport>,
}

/// Parallel search over `num_ranks` thread-ranks: rank 0 master, rank 1
/// foreman, rank 2 monitor, ranks 3.. workers. As in the paper, "the fully
/// instrumented parallel version of fastDNAml requires a minimum of four
/// processors".
///
/// The job (alignment + config) arrives as a [`ResolvedJob`]; faults,
/// chaos, and observer sinks ride in [`RunOptions`]
/// ([`RunOptions::default`] for a plain run).
pub fn parallel_search(
    job: &ResolvedJob,
    num_ranks: usize,
    options: RunOptions,
) -> Result<ParallelOutcome, PhyloError> {
    let RunOptions {
        mut faults,
        chaos,
        mut sinks,
        regions,
        die_region,
        wal_dir,
    } = options;
    let alignment = &job.alignment;
    let config = &job.config;
    let first_worker = first_worker_rank(regions);
    assert!(
        num_ranks >= 4,
        "the fully instrumented parallel version requires at least four ranks"
    );
    assert!(
        regions == 0 || num_ranks > first_worker,
        "a hierarchical run needs at least one worker above its {regions} regional foremen"
    );
    // When observing, tee into a memory sink so the end-of-run report can
    // be aggregated no matter where else the events go.
    let observing = sinks.iter().any(|s| !s.is_null());
    let mem = if observing {
        let mem = MemorySink::new();
        sinks.push(Box::new(mem.clone()));
        Some(mem)
    } else {
        None
    };
    let obs = Obs::multi(sinks);
    obs.emit(|| Event::RunStarted {
        ranks: num_ranks,
        workers: num_ranks - first_worker,
    });
    obs.emit(|| Event::KernelDispatch {
        isa: fdml_likelihood::isa::active().name().to_string(),
        intra_threads: config.intra_threads,
    });
    // Open the WAL before spawning anything: a bad --wal-dir fails the
    // run while it is still a one-liner to clean up.
    let wal_session = match &wal_dir {
        Some(dir) => Some(
            WalSession::open(dir, 0, config.jumble_seed, alignment.num_taxa(), &obs)
                .map_err(|e| PhyloError::Format(format!("wal: {e}")))?,
        ),
        None => None,
    };

    let mut endpoints = ThreadUniverse::create(num_ranks);
    // Take endpoints from the back so indices stay valid.
    let mut worker_handles = Vec::new();
    for rank in (first_worker..num_ranks).rev() {
        let end = endpoints.remove(rank);
        let fault = faults.remove(&rank);
        let chaos = chaos.clone();
        let worker_obs = obs.clone();
        // Flat: every worker reports to the foreman at rank 1. With
        // regions, workers are sharded round-robin among the regional
        // foremen at ranks 3..3+R.
        let home = if regions == 0 {
            ranks::FOREMAN
        } else {
            home_rank(rank, regions)
        };
        let handle = thread::spawn(move || match (chaos, fault) {
            (Some(plan), _) => run_worker_homed(
                Recording::new(
                    ChaosTransport::new(end, plan, worker_obs.clone()),
                    worker_obs.clone(),
                ),
                home,
                worker_obs,
            ),
            (None, Some(plan)) => run_worker_homed(
                Recording::new(FaultyTransport::new(end, plan), worker_obs.clone()),
                home,
                worker_obs,
            ),
            (None, None) => {
                run_worker_homed(Recording::new(end, worker_obs.clone()), home, worker_obs)
            }
        });
        worker_handles.push((rank, handle));
    }
    let mut region_handles = Vec::new();
    for region in (0..regions).rev() {
        let end = Recording::new(endpoints.remove(regional_rank(region)), obs.clone());
        let region_obs = obs.clone();
        let opts = RegionalOptions {
            worker_timeout: config.worker_timeout,
            has_monitor: true,
            die_after_results: die_region.and_then(|(r, n)| (r == region).then_some(n)),
        };
        let handle = thread::spawn(move || run_regional_foreman(end, opts, region_obs));
        region_handles.push((region, handle));
    }
    let monitor_end = Recording::new(endpoints.remove(ranks::MONITOR), obs.clone());
    let foreman_end = Recording::new(endpoints.remove(ranks::FOREMAN), obs.clone());
    let master_end = Recording::new(endpoints.remove(ranks::MASTER), obs.clone());
    let timeout = config.worker_timeout;
    let foreman_obs = obs.clone();
    let foreman_handle = thread::spawn(move || {
        if regions == 0 {
            run_foreman(foreman_end, timeout, true, foreman_obs).map(|stats| RootStats {
                stats,
                ..RootStats::default()
            })
        } else {
            run_root_foreman(foreman_end, regions, timeout, true, foreman_obs)
        }
    });
    let monitor_obs = obs.clone();
    let monitor_handle = thread::spawn(move || run_monitor(monitor_end, monitor_obs));

    let executor = ClusterExecutor::with_first_worker(
        master_end,
        alignment.names().to_vec(),
        phylip::write(alignment),
        config.engine_config_json(),
        true,
        first_worker,
    )
    .with_incremental(config.incremental);
    let mut search = StepwiseSearch::new(config, executor, alignment.num_taxa())
        .with_names(alignment.names().to_vec());
    let mut wal_session = wal_session;
    if let Some(session) = &mut wal_session {
        let rounds = session.take_rounds();
        search = search.resume_from_wal(rounds).on_wal(session.hook());
    }
    let result = search.run();
    // Shut everything down regardless of the search outcome.
    let executor = search.into_executor();
    executor.shutdown();
    let root = foreman_handle
        .join()
        .expect("foreman thread must not panic")
        .expect("foreman must exit cleanly");
    let monitor = monitor_handle
        .join()
        .expect("monitor thread must not panic")
        .expect("monitor must exit cleanly");
    let mut region_stats = HashMap::new();
    for (region, handle) in region_handles {
        let stats = handle
            .join()
            .expect("regional foreman thread must not panic")
            .unwrap_or_default();
        region_stats.insert(region, stats);
    }
    let mut workers = HashMap::new();
    for (rank, handle) in worker_handles {
        let stats = handle
            .join()
            .expect("worker thread must not panic")
            .unwrap_or_default();
        workers.insert(rank, stats);
    }
    let result = result?;
    if let Some(session) = wal_session {
        // The result is about to be delivered; the log has nothing left
        // to protect. Any append error deferred during the run surfaces
        // here, after the tree is safe but before success is reported.
        session
            .finish_and_retire()
            .map_err(|e| PhyloError::Format(format!("wal: {e}")))?;
    }
    obs.emit(|| Event::RunFinished {
        ln_likelihood: result.ln_likelihood,
    });
    obs.flush();
    let report = mem.map(|m| RunReport::from_events(&m.take()));
    Ok(ParallelOutcome {
        result,
        monitor,
        foreman: root.stats,
        workers,
        hierarchy: (regions > 0).then_some(HierarchyOutcome {
            root,
            regions: region_stats,
        }),
        report,
    })
}

/// Run many jumbles serially and compute their majority-rule consensus —
/// the biologist's workflow described in §2 of the paper.
pub fn run_jumbles(
    alignment: &Alignment,
    base_config: &SearchConfig,
    seeds: &[u64],
) -> Result<(Vec<SearchResult>, Consensus), PhyloError> {
    // Canonicalize up front: an empty list is a typed error (not a panic),
    // and seeds that collide after the odd-seed adjustment (e.g. 4 and 5)
    // would silently run the same jumble twice and double-weight it in the
    // consensus.
    let seeds = dedup_adjusted(seeds)?;
    let engine = base_config.build_engine(alignment);
    let mut results = Vec::with_capacity(seeds.len());
    for &seed in &seeds {
        results.push(run_one_jumble(&engine, alignment, base_config, seed)?);
    }
    let trees: Vec<Tree> = results.iter().map(|r| r.tree.clone()).collect();
    let cons = consensus(&trees, alignment.num_taxa(), 0.5, alignment.names())?;
    Ok((results, cons))
}

/// Everything a threaded farm run returns.
#[derive(Debug)]
pub struct FarmOutcome {
    /// Per-jumble results in seed order — byte-identical to the serial
    /// farm's regardless of farm width.
    pub runs: Vec<JumbleRun>,
    /// The majority-rule consensus over all jumbles.
    pub consensus: Consensus,
    /// The final manifest (every entry `Done`).
    pub manifest: FarmManifest,
    /// The monitor's aggregated instrumentation.
    pub monitor: MonitorReport,
    /// Foreman statistics.
    pub foreman: ForemanStats,
    /// Per-worker statistics, indexed by rank.
    pub workers: HashMap<usize, WorkerStats>,
    /// The end-of-run observability report — `Some` when the run was
    /// observed, `None` otherwise.
    pub report: Option<RunReport>,
}

/// The threaded jumble farm: whole jumbles (the [`ResolvedJob`]'s planned
/// seed list) sharded across `num_ranks - 3` worker threads through the
/// foreman (paper §6's many-jumbles workload). Faults, chaos, and observer
/// sinks ride in [`RunOptions`]; when observing, the report aggregates
/// `JumbleStarted` / `JumbleCompleted` / `FarmProgress` events.
pub fn farm_search(
    job: &ResolvedJob,
    num_ranks: usize,
    options: FarmOptions,
    run: RunOptions,
) -> Result<FarmOutcome, PhyloError> {
    // The farm stays flat: whole-jumble tasks are already coarse enough
    // that the foreman is nowhere near its message ceiling, so `regions`
    // and `die_region` do not apply here.
    let RunOptions {
        mut faults,
        chaos,
        mut sinks,
        regions: _,
        die_region: _,
        // The farm's WAL rides in `FarmOptions::wal_dir` (one log per
        // jumble), not here.
        wal_dir: _,
    } = run;
    let alignment = &job.alignment;
    let config = &job.config;
    let seeds: &[u64] = &job.seeds;
    assert!(
        num_ranks >= 4,
        "the fully instrumented parallel version requires at least four ranks"
    );
    let observing = sinks.iter().any(|s| !s.is_null());
    let mem = if observing {
        let mem = MemorySink::new();
        sinks.push(Box::new(mem.clone()));
        Some(mem)
    } else {
        None
    };
    let obs = Obs::multi(sinks);
    obs.emit(|| Event::RunStarted {
        ranks: num_ranks,
        workers: num_ranks - ranks::FIRST_WORKER,
    });
    obs.emit(|| Event::KernelDispatch {
        isa: fdml_likelihood::isa::active().name().to_string(),
        intra_threads: config.intra_threads,
    });

    let mut endpoints = ThreadUniverse::create(num_ranks);
    let mut worker_handles = Vec::new();
    for rank in (ranks::FIRST_WORKER..num_ranks).rev() {
        let end = endpoints.remove(rank);
        let fault = faults.remove(&rank);
        let chaos = chaos.clone();
        let worker_obs = obs.clone();
        let handle = thread::spawn(move || match (chaos, fault) {
            (Some(plan), _) => run_worker(
                Recording::new(
                    ChaosTransport::new(end, plan, worker_obs.clone()),
                    worker_obs.clone(),
                ),
                worker_obs,
            ),
            (None, Some(plan)) => run_worker(
                Recording::new(FaultyTransport::new(end, plan), worker_obs.clone()),
                worker_obs,
            ),
            (None, None) => run_worker(Recording::new(end, worker_obs.clone()), worker_obs),
        });
        worker_handles.push((rank, handle));
    }
    let monitor_end = Recording::new(endpoints.remove(ranks::MONITOR), obs.clone());
    let foreman_end = Recording::new(endpoints.remove(ranks::FOREMAN), obs.clone());
    let master_end = Recording::new(endpoints.remove(ranks::MASTER), obs.clone());
    let timeout = config.worker_timeout;
    let foreman_obs = obs.clone();
    let foreman_handle =
        thread::spawn(move || run_foreman(foreman_end, timeout, true, foreman_obs));
    let monitor_obs = obs.clone();
    let monitor_handle = thread::spawn(move || run_monitor(monitor_end, monitor_obs));

    let parts = run_farm_master(&master_end, alignment, config, seeds, &options, &obs);
    // Shut everything down regardless of the farm outcome.
    let _ = master_end.send(ranks::FOREMAN, &Message::Shutdown);
    let foreman = foreman_handle
        .join()
        .expect("foreman thread must not panic")
        .expect("foreman must exit cleanly");
    let monitor = monitor_handle
        .join()
        .expect("monitor thread must not panic")
        .expect("monitor must exit cleanly");
    let mut workers = HashMap::new();
    for (rank, handle) in worker_handles {
        let stats = handle
            .join()
            .expect("worker thread must not panic")
            .unwrap_or_default();
        workers.insert(rank, stats);
    }
    let parts = parts?;
    obs.emit(|| Event::RunFinished {
        ln_likelihood: parts.best_ln_likelihood(),
    });
    obs.flush();
    let report = mem.map(|m| RunReport::from_events(&m.take()));
    Ok(FarmOutcome {
        runs: parts.runs,
        consensus: parts.consensus,
        manifest: parts.manifest,
        monitor,
        foreman,
        workers,
        report,
    })
}

/// Convenience: build the default engine for an alignment (re-exported for
/// examples and benches).
pub fn default_engine(alignment: &Alignment) -> LikelihoodEngine {
    SearchConfig::default().build_engine(alignment)
}

/// One evaluated user tree.
#[derive(Debug, Clone)]
pub struct EvaluatedTree {
    /// The tree with re-optimized branch lengths.
    pub tree: Tree,
    /// Its log-likelihood.
    pub ln_likelihood: f64,
    /// The optimized tree as Newick.
    pub newick: String,
}

/// fastDNAml's *user tree* mode: instead of searching, parse the supplied
/// Newick trees, optimize their branch lengths, and report likelihoods —
/// the mode biologists use to compare specific hypotheses.
pub fn evaluate_user_trees(
    alignment: &Alignment,
    config: &SearchConfig,
    newicks: &[String],
) -> Result<Vec<EvaluatedTree>, PhyloError> {
    let engine = config.build_engine(alignment);
    newicks
        .iter()
        .map(|text| {
            let mut tree = fdml_phylo::newick::parse_tree(text, alignment)?;
            if tree.num_tips() != alignment.num_taxa() {
                return Err(PhyloError::InvalidTreeOp(format!(
                    "user tree has {} of {} taxa",
                    tree.num_tips(),
                    alignment.num_taxa()
                )));
            }
            let r = engine.optimize(&mut tree, &config.optimize);
            Ok(EvaluatedTree {
                newick: fdml_phylo::newick::write_tree(&tree, alignment.names()),
                tree,
                ln_likelihood: r.ln_likelihood,
            })
        })
        .collect()
}

/// Bootstrap analysis: infer one tree per column-resampled replicate and
/// return the replicate trees plus their majority-rule consensus, whose
/// internal labels are the bootstrap support percentages.
pub fn bootstrap_analysis(
    alignment: &Alignment,
    base_config: &SearchConfig,
    replicates: usize,
    seed: u64,
) -> Result<(Vec<SearchResult>, Consensus), PhyloError> {
    assert!(replicates >= 1);
    let samples = fdml_phylo::bootstrap::bootstrap_replicates(alignment, replicates, seed);
    let mut results = Vec::with_capacity(replicates);
    for (i, sample) in samples.iter().enumerate() {
        let config = SearchConfig {
            jumble_seed: base_config.jumble_seed.wrapping_add(2 * i as u64),
            // Each replicate has its own site patterns, so per-pattern
            // categories from the original alignment do not transfer.
            categories: None,
            ..base_config.clone()
        };
        results.push(fast_serial_search(sample, &config)?);
    }
    let trees: Vec<Tree> = results.iter().map(|r| r.tree.clone()).collect();
    let cons = consensus(&trees, alignment.num_taxa(), 0.5, alignment.names())?;
    Ok((results, cons))
}

/// Maximize the likelihood over the transition/transversion ratio by a
/// golden-section search on a fixed tree (fastDNAml's `T` option asks the
/// user for the ratio; this finds the ML value).
pub fn optimize_tt_ratio(
    alignment: &Alignment,
    config: &SearchConfig,
    tree: &Tree,
    lo: f64,
    hi: f64,
) -> (f64, f64) {
    assert!(lo > 0.0 && hi > lo);
    let eval = |tt: f64| -> f64 {
        let cfg = SearchConfig {
            tt_ratio: tt,
            ..config.clone()
        };
        let engine = cfg.build_engine(alignment);
        let mut t = tree.clone();
        engine.optimize(&mut t, &cfg.optimize).ln_likelihood
    };
    // Golden-section search in ln(tt) space.
    let phi = 0.5 * (5f64.sqrt() - 1.0);
    let (mut a, mut b) = (lo.ln(), hi.ln());
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let (mut fc, mut fd) = (eval(c.exp()), eval(d.exp()));
    for _ in 0..24 {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = eval(c.exp());
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = eval(d.exp());
        }
        if (b - a).abs() < 1e-3 {
            break;
        }
    }
    let tt = (0.5 * (a + b)).exp();
    (tt, eval(tt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_phylo::bipartition::SplitSet;
    use std::time::Duration;

    fn job(a: &Alignment, config: &SearchConfig) -> ResolvedJob {
        ResolvedJob::from_parts(a.clone(), config.clone(), 1).unwrap()
    }

    fn alignment() -> Alignment {
        Alignment::from_strings(&[
            ("t0", "ACGTACGTACGTACGTACGTACGTACGTACGT"),
            ("t1", "ACGTACGTACTTACGTACGTACGAACGTACGT"),
            ("t2", "ACGAACGTACGTACGGACGTACGTACCTAGGT"),
            ("t3", "ACGAACGTACGTACGGACGTACTTACCTAGTT"),
            ("t4", "TCGAACGGACGTACGGAAGTACGTACCTAGGA"),
            ("t5", "TCGAACGGACGTACGGAAGTACGTTCCTAGGA"),
        ])
        .unwrap()
    }

    #[test]
    fn serial_search_completes() {
        let a = alignment();
        let config = SearchConfig {
            jumble_seed: 5,
            ..Default::default()
        };
        let r = serial_search(&a, &config).unwrap();
        assert_eq!(r.tree.num_tips(), 6);
        assert!(r.ln_likelihood.is_finite() && r.ln_likelihood < 0.0);
        assert!(r.candidates_evaluated > 0);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let a = alignment();
        let config = SearchConfig {
            jumble_seed: 5,
            ..Default::default()
        };
        let serial = serial_search(&a, &config).unwrap();
        let parallel = parallel_search(&job(&a, &config), 6, RunOptions::default()).unwrap();
        // Identical search decisions: same topology; likelihoods agree to
        // the Newick round-trip precision of branch lengths.
        assert_eq!(
            SplitSet::of_tree(&serial.tree, 6),
            SplitSet::of_tree(&parallel.result.tree, 6)
        );
        assert!(
            (serial.ln_likelihood - parallel.result.ln_likelihood).abs() < 1e-5,
            "serial {} vs parallel {}",
            serial.ln_likelihood,
            parallel.result.ln_likelihood
        );
        // All workers participated and the monitor saw the run.
        assert!(parallel.foreman.dispatched > 0);
        assert!(parallel.monitor.events > 0);
        assert_eq!(parallel.workers.len(), 3);
        let total: u64 = parallel.workers.values().map(|w| w.trees_evaluated).sum();
        assert_eq!(
            total,
            parallel.foreman.results_forwarded + parallel.foreman.duplicates_ignored
        );
    }

    #[test]
    fn incremental_dispatch_is_byte_identical_to_whole_tree_dispatch() {
        use fdml_phylo::newick;
        let a = alignment();
        for seed in [1u64, 5, 11] {
            let config = SearchConfig {
                jumble_seed: seed,
                ..Default::default()
            };
            let full = parallel_search(&job(&a, &config), 6, RunOptions::default()).unwrap();
            let inc_config = SearchConfig {
                incremental: true,
                ..config.clone()
            };
            let mem = MemorySink::new();
            let inc = parallel_search(
                &job(&a, &inc_config),
                6,
                RunOptions::observed(vec![Box::new(mem.clone())]),
            )
            .unwrap();
            // The golden property: turning incremental dispatch on changes
            // HOW candidates are scored, never WHAT the search returns —
            // final tree bytes and likelihood bits are identical.
            assert_eq!(
                newick::write_tree(&full.result.tree, a.names()),
                newick::write_tree(&inc.result.tree, a.names()),
                "seed {seed}"
            );
            assert_eq!(
                full.result.ln_likelihood.to_bits(),
                inc.result.ln_likelihood.to_bits(),
                "seed {seed}: full {} vs incremental {}",
                full.result.ln_likelihood,
                inc.result.ln_likelihood
            );
            // And the run really went through the cache: the report's
            // per-worker incremental counters are live.
            let report = inc.report.expect("observed run carries a report");
            let hits: u64 = report.workers.iter().map(|w| w.clv_cache_hits).sum();
            let fallbacks: u64 = report.workers.iter().map(|w| w.incremental_fallbacks).sum();
            assert!(hits > 0, "seed {seed}: no CLV cache hits recorded");
            assert_eq!(fallbacks, 0, "seed {seed}: healthy run must not fall back");
        }
    }

    #[test]
    fn hierarchical_run_is_byte_identical_to_flat() {
        use fdml_phylo::newick;
        let a = alignment();
        for seed in [1u64, 5, 11] {
            let config = SearchConfig {
                jumble_seed: seed,
                ..Default::default()
            };
            let flat = parallel_search(&job(&a, &config), 6, RunOptions::default()).unwrap();
            // Same job over a two-region tree: ranks 0-2 control, 3-4
            // regional foremen, 5-8 workers (two per region).
            let hier = parallel_search(
                &job(&a, &config),
                9,
                RunOptions {
                    regions: 2,
                    ..RunOptions::default()
                },
            )
            .unwrap();
            // The golden property: interposing a scheduling tier changes
            // WHERE tasks run, never WHAT the search returns.
            assert_eq!(
                newick::write_tree(&flat.result.tree, a.names()),
                newick::write_tree(&hier.result.tree, a.names()),
                "seed {seed}"
            );
            assert_eq!(
                flat.result.ln_likelihood.to_bits(),
                hier.result.ln_likelihood.to_bits(),
                "seed {seed}: flat {} vs hierarchical {}",
                flat.result.ln_likelihood,
                hier.result.ln_likelihood
            );
            let h = hier.hierarchy.expect("hierarchical run records its tree");
            assert!(h.root.leases_granted > 0, "seed {seed}: no leases granted");
            assert_eq!(h.regions.len(), 2);
            let regional_results: u64 = h.regions.values().map(|r| r.results_forwarded).sum();
            assert!(
                regional_results >= h.root.stats.results_forwarded,
                "regions forwarded {regional_results} < root accepted {}",
                h.root.stats.results_forwarded
            );
        }
    }

    #[test]
    fn incremental_hierarchical_run_is_byte_identical_to_flat() {
        use fdml_phylo::newick;
        let a = alignment();
        let config = SearchConfig {
            jumble_seed: 5,
            incremental: true,
            ..Default::default()
        };
        let flat = parallel_search(&job(&a, &config), 6, RunOptions::default()).unwrap();
        let hier = parallel_search(
            &job(&a, &config),
            9,
            RunOptions {
                regions: 2,
                ..RunOptions::default()
            },
        )
        .unwrap();
        // Edits travel master → root → region → worker with the base
        // relayed down the same path; the result must not notice.
        assert_eq!(
            newick::write_tree(&flat.result.tree, a.names()),
            newick::write_tree(&hier.result.tree, a.names())
        );
        assert_eq!(
            flat.result.ln_likelihood.to_bits(),
            hier.result.ln_likelihood.to_bits()
        );
    }

    #[test]
    fn killing_a_regional_foreman_mid_round_is_byte_identical() {
        use fdml_phylo::newick;
        let a = alignment();
        let config = SearchConfig {
            jumble_seed: 5,
            worker_timeout: Duration::from_millis(150),
            ..Default::default()
        };
        let clean = parallel_search(&job(&a, &config), 6, RunOptions::default()).unwrap();
        // Region 0 crashes after forwarding two results, dropping whatever
        // sat unflushed in its upward batch. The root must reclaim its
        // lease, re-home its workers to region 1, and the final tree must
        // not change by a byte.
        let crashed = parallel_search(
            &job(&a, &config),
            9,
            RunOptions {
                regions: 2,
                die_region: Some((0, 2)),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            newick::write_tree(&clean.result.tree, a.names()),
            newick::write_tree(&crashed.result.tree, a.names())
        );
        assert_eq!(
            clean.result.ln_likelihood.to_bits(),
            crashed.result.ln_likelihood.to_bits()
        );
        let h = crashed
            .hierarchy
            .expect("hierarchical run records its tree");
        assert_eq!(h.root.regions_lost, 1, "region 0 must be declared dead");
        assert!(
            h.root.workers_rehomed >= 1,
            "region 0's workers must re-home to region 1"
        );
        assert_eq!(
            h.regions.get(&0).map(|r| r.results_forwarded),
            Some(2),
            "the crash hook fires after exactly two results"
        );
    }

    #[test]
    fn fault_tolerance_preserves_the_result() {
        let a = alignment();
        let config = SearchConfig {
            jumble_seed: 5,
            worker_timeout: Duration::from_millis(200),
            ..Default::default()
        };
        let clean = parallel_search(&job(&a, &config), 6, RunOptions::default()).unwrap();
        // Worker 3 silently drops its first four results: the foreman must
        // time it out, re-dispatch, and the final tree must be unchanged.
        let mut faults = HashMap::new();
        faults.insert(3usize, FaultPlan::drop_first(4));
        let faulty =
            parallel_search(&job(&a, &config), 6, RunOptions::with_faults(faults)).unwrap();
        assert_eq!(
            SplitSet::of_tree(&clean.result.tree, 6),
            SplitSet::of_tree(&faulty.result.tree, 6)
        );
        assert!(
            (clean.result.ln_likelihood - faulty.result.ln_likelihood).abs() < 1e-6,
            "clean {} vs faulty {}",
            clean.result.ln_likelihood,
            faulty.result.ln_likelihood
        );
        assert!(
            faulty.foreman.timeouts >= 1,
            "foreman must detect the stalled worker"
        );
    }

    #[test]
    fn severed_worker_mid_search_still_converges() {
        let a = alignment();
        let config = SearchConfig {
            jumble_seed: 5,
            worker_timeout: Duration::from_millis(200),
            ..Default::default()
        };
        let clean = parallel_search(&job(&a, &config), 6, RunOptions::default()).unwrap();
        // Worker 3 returns one result, then its link is severed for good —
        // the in-process analogue of a worker process dying mid-search. The
        // foreman must requeue its outstanding task (timeout first, then the
        // eager path on every later dispatch attempt) and the two surviving
        // workers must finish the search with an identical result.
        let mut faults = HashMap::new();
        faults.insert(3usize, FaultPlan::disconnect_after(1));
        let faulty =
            parallel_search(&job(&a, &config), 6, RunOptions::with_faults(faults)).unwrap();
        assert_eq!(
            SplitSet::of_tree(&clean.result.tree, 6),
            SplitSet::of_tree(&faulty.result.tree, 6)
        );
        assert!(
            (clean.result.ln_likelihood - faulty.result.ln_likelihood).abs() < 1e-6,
            "clean {} vs severed {}",
            clean.result.ln_likelihood,
            faulty.result.ln_likelihood
        );
        assert!(
            faulty.foreman.timeouts >= 1,
            "foreman must declare the severed worker delinquent"
        );
        // The dead worker never recovers.
        assert_eq!(faulty.foreman.recoveries, 0);
    }

    #[test]
    fn jumbles_and_consensus() {
        let a = alignment();
        let config = SearchConfig {
            rearrange_radius: 2,
            final_radius: 2,
            ..Default::default()
        };
        let (results, cons) = run_jumbles(&a, &config, &[1, 3, 5]).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(cons.num_trees, 3);
        let mut leaves = cons.tree.leaf_names();
        leaves.sort_unstable();
        assert_eq!(leaves.len(), 6);
    }

    #[test]
    fn run_jumbles_rejects_empty_and_dedups_colliding_seeds() {
        let a = alignment();
        let config = SearchConfig {
            rearrange_radius: 1,
            final_radius: 1,
            ..Default::default()
        };
        assert!(run_jumbles(&a, &config, &[]).is_err());
        // 4 adjusts to 5: one jumble, not the same jumble twice.
        let (results, cons) = run_jumbles(&a, &config, &[4, 5]).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(cons.num_trees, 1);
    }

    #[test]
    fn traced_search_produces_consistent_trace() {
        let a = alignment();
        let config = SearchConfig {
            jumble_seed: 9,
            ..Default::default()
        };
        let (result, trace) = traced_search(&a, &config, "toy", false).unwrap();
        assert_eq!(trace.num_taxa, 6);
        assert_eq!(trace.final_ln_likelihood, result.ln_likelihood);
        assert!(trace.total_candidates() > 0);
        assert!(!trace.full_evaluation);
        let (_, trace_full) = traced_search(&a, &config, "toy", true).unwrap();
        assert!(trace_full.full_evaluation);
        // Full evaluation does more work per candidate.
        assert!(trace_full.total_worker_work() > trace.total_worker_work());
    }

    #[test]
    #[should_panic(expected = "four ranks")]
    fn too_few_ranks_panics() {
        let a = alignment();
        let config = SearchConfig::default();
        let _ = parallel_search(&job(&a, &config), 3, RunOptions::default());
    }
}

#[cfg(test)]
mod mode_tests {
    use super::*;
    use fdml_datagen::{evolve, yule_tree, EvolutionConfig};
    use fdml_phylo::newick;

    fn dataset(taxa: usize, sites: usize, tt: f64) -> (Alignment, Tree) {
        let tree = yule_tree(taxa, 0.1, 41);
        let cfg = EvolutionConfig {
            tt_ratio: tt,
            missing_fraction: 0.0,
            ..Default::default()
        };
        (evolve(&tree, sites, &cfg, 8, "taxon"), tree)
    }

    #[test]
    fn user_trees_are_ranked_by_likelihood() {
        let (a, truth) = dataset(8, 600, 2.0);
        let config = SearchConfig::default();
        let names = a.names();
        // The generating tree versus a random alternative: the generating
        // tree should win.
        let alt = yule_tree(8, 0.1, 999);
        let newicks = vec![
            newick::write_tree(&truth, names),
            newick::write_tree(&alt, names),
        ];
        let evaluated = evaluate_user_trees(&a, &config, &newicks).unwrap();
        assert_eq!(evaluated.len(), 2);
        assert!(
            evaluated[0].ln_likelihood > evaluated[1].ln_likelihood,
            "true tree {} vs alternative {}",
            evaluated[0].ln_likelihood,
            evaluated[1].ln_likelihood
        );
        for e in &evaluated {
            assert!(e.newick.contains("taxon000"));
        }
    }

    #[test]
    fn user_tree_with_missing_taxa_rejected() {
        let (a, _) = dataset(6, 100, 2.0);
        let config = SearchConfig::default();
        let partial = "(taxon000:0.1,taxon001:0.1,taxon002:0.1);".to_string();
        assert!(evaluate_user_trees(&a, &config, &[partial]).is_err());
    }

    #[test]
    fn bootstrap_supports_strong_clades() {
        let (a, truth) = dataset(8, 900, 2.0);
        let config = SearchConfig {
            rearrange_radius: 2,
            final_radius: 2,
            ..Default::default()
        };
        let (results, cons) = bootstrap_analysis(&a, &config, 5, 17).unwrap();
        assert_eq!(results.len(), 5);
        assert_eq!(cons.num_trees, 5);
        // With this much signal, most consensus splits are true splits.
        let truth_splits = fdml_phylo::bipartition::SplitSet::of_tree(&truth, 8);
        let hits = cons
            .splits
            .iter()
            .filter(|s| truth_splits.splits().contains(&s.split))
            .count();
        assert!(
            hits * 2 >= cons.splits.len(),
            "{hits}/{}",
            cons.splits.len()
        );
    }

    #[test]
    fn tt_ratio_optimization_recovers_generating_ratio() {
        // Generate with a strong transition bias and check the ML estimate
        // lands near it (wide tolerance: finite data).
        let (a, truth) = dataset(10, 1500, 6.0);
        let config = SearchConfig::default();
        let (tt, lnl) = optimize_tt_ratio(&a, &config, &truth, 0.8, 30.0);
        assert!(lnl.is_finite());
        assert!(
            tt > 3.0 && tt < 12.0,
            "generating ratio 6.0, estimated {tt}"
        );
        // And the likelihood at the estimate beats the default 2.0.
        let cfg2 = SearchConfig {
            tt_ratio: 2.0,
            ..config.clone()
        };
        let engine2 = cfg2.build_engine(&a);
        let mut t2 = truth.clone();
        let at_default = engine2.optimize(&mut t2, &cfg2.optimize).ln_likelihood;
        assert!(
            lnl > at_default,
            "lnl(tt̂={tt:.2}) = {lnl} vs lnl(2.0) = {at_default}"
        );
    }
}
