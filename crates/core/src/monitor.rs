//! The monitor process (paper §2.2): "an optional process that provides
//! instrumentation for the program."
//!
//! It aggregates dispatch/completion events into per-worker utilization
//! statistics and keeps the best tree of every round — the stream the
//! paper's real-time 3-D viewer consumes (§4).

use fdml_comm::message::{Message, MonitorEvent};
use fdml_comm::transport::{CommError, Rank, Transport};
use fdml_obs::{Event, Obs};
use std::collections::HashMap;

/// Per-worker utilization counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerUtilization {
    /// Trees dispatched to this worker.
    pub dispatched: u64,
    /// Trees completed by this worker.
    pub completed: u64,
    /// Work units this worker reported.
    pub work_units: u64,
    /// Times this worker was declared delinquent.
    pub timeouts: u64,
}

/// The monitor's aggregated view of a run.
#[derive(Debug, Clone, Default)]
pub struct MonitorReport {
    /// Total events received.
    pub events: u64,
    /// Per-worker utilization.
    pub per_worker: HashMap<Rank, WorkerUtilization>,
    /// `(round, candidates, best lnL)` per completed round.
    pub round_history: Vec<(u64, usize, f64)>,
    /// Best tree per round (Newick) — the viewer's input stream.
    pub best_trees: Vec<String>,
    /// Workers re-admitted after delinquency.
    pub recoveries: u64,
}

impl MonitorReport {
    /// Coefficient of variation of completed-tree counts across workers —
    /// a load-balance figure (near 0 = even load).
    pub fn load_imbalance(&self) -> f64 {
        let counts: Vec<f64> = self
            .per_worker
            .values()
            .map(|w| w.completed as f64)
            .collect();
        if counts.len() < 2 {
            return 0.0;
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64;
        var.sqrt() / mean
    }
}

/// Run the monitor loop until `Shutdown`, returning the aggregated report.
///
/// Pass [`Obs::disabled`] to run unobserved; otherwise every
/// protocol-level [`MonitorEvent`] is also re-emitted as a structured
/// [`Event`] (task lifecycle and round boundaries), so the monitor rank
/// is where the foreman's bookkeeping enters the observability stream.
pub fn run_monitor<T: Transport>(transport: T, obs: Obs) -> Result<MonitorReport, CommError> {
    let mut report = MonitorReport::default();
    loop {
        let (_, msg) = transport.recv()?;
        match msg {
            Message::Monitor(ev) => {
                report.events += 1;
                match ev {
                    MonitorEvent::Dispatched { task, worker } => {
                        report.per_worker.entry(worker).or_default().dispatched += 1;
                        obs.emit(|| Event::TaskDispatched { task, worker });
                    }
                    MonitorEvent::Completed {
                        task,
                        worker,
                        ln_likelihood,
                        work_units,
                        service_us,
                    } => {
                        let w = report.per_worker.entry(worker).or_default();
                        w.completed += 1;
                        w.work_units += work_units;
                        obs.emit(|| Event::TaskCompleted {
                            task,
                            worker,
                            service_us,
                            work_units,
                            ln_likelihood,
                        });
                    }
                    MonitorEvent::WorkerTimedOut { worker, task } => {
                        report.per_worker.entry(worker).or_default().timeouts += 1;
                        obs.emit(|| Event::TaskTimedOut { task, worker });
                    }
                    MonitorEvent::WorkerRecovered { worker } => {
                        report.recoveries += 1;
                        obs.emit(|| Event::WorkerRecovered { worker });
                    }
                    MonitorEvent::RoundComplete {
                        round,
                        candidates,
                        best_ln_likelihood,
                        best_newick,
                    } => {
                        report
                            .round_history
                            .push((round, candidates, best_ln_likelihood));
                        report.best_trees.push(best_newick);
                        obs.emit(|| Event::RoundCompleted {
                            round,
                            candidates,
                            best_ln_likelihood,
                        });
                    }
                }
            }
            Message::Shutdown => return Ok(report),
            other => {
                debug_assert!(false, "monitor got unexpected {}", other.kind());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_comm::threads::ThreadUniverse;
    use std::thread;

    #[test]
    fn aggregates_events() {
        let mut ends = ThreadUniverse::create(3);
        let monitor_end = ends.remove(2);
        let sender = ends.remove(1);
        let handle = thread::spawn(move || run_monitor(monitor_end, Obs::disabled()).unwrap());
        for ev in [
            MonitorEvent::Dispatched { task: 1, worker: 3 },
            MonitorEvent::Completed {
                task: 1,
                worker: 3,
                ln_likelihood: -2.0,
                work_units: 10,
                service_us: 1500,
            },
            MonitorEvent::Dispatched { task: 2, worker: 4 },
            MonitorEvent::WorkerTimedOut { worker: 4, task: 2 },
            MonitorEvent::WorkerRecovered { worker: 4 },
            MonitorEvent::RoundComplete {
                round: 1,
                candidates: 2,
                best_ln_likelihood: -2.0,
                best_newick: "(a,b);".into(),
            },
        ] {
            sender.send(2, &Message::Monitor(ev)).unwrap();
        }
        sender.send(2, &Message::Shutdown).unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.events, 6);
        assert_eq!(report.per_worker[&3].completed, 1);
        assert_eq!(report.per_worker[&3].work_units, 10);
        assert_eq!(report.per_worker[&4].timeouts, 1);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.round_history, vec![(1, 2, -2.0)]);
        assert_eq!(report.best_trees, vec!["(a,b);".to_string()]);
    }

    #[test]
    fn load_imbalance_zero_for_even_load() {
        let mut r = MonitorReport::default();
        r.per_worker.insert(
            3,
            WorkerUtilization {
                completed: 10,
                ..Default::default()
            },
        );
        r.per_worker.insert(
            4,
            WorkerUtilization {
                completed: 10,
                ..Default::default()
            },
        );
        assert!(r.load_imbalance() < 1e-12);
        r.per_worker.insert(
            5,
            WorkerUtilization {
                completed: 0,
                ..Default::default()
            },
        );
        assert!(r.load_imbalance() > 0.1);
    }
}
