//! Conversions between the phylogeny crate's typed [`TreeMove`] and the
//! comm crate's untyped [`TreeEdit`] wire form.
//!
//! The wire form carries plain integers because `fdml-comm` does not
//! depend on `fdml-phylo`. The integers are node ids of the round's
//! broadcast base topology; they are meaningful on every rank because
//! Newick parsing is deterministic — all ranks that parse the same base
//! text assign the same ids.

use fdml_comm::message::TreeEdit;
use fdml_phylo::ops::TreeMove;
use fdml_phylo::tree::NodeId;

/// Encode a move against the current base tree as its wire form.
pub(crate) fn move_to_edit(mv: &TreeMove) -> TreeEdit {
    match *mv {
        TreeMove::Insertion { taxon, at } => TreeEdit::Insert {
            taxon,
            a: at.0 .0,
            b: at.1 .0,
        },
        TreeMove::Spr {
            root,
            attachment,
            target,
        } => TreeEdit::Regraft {
            root: root.0,
            attachment: attachment.0,
            a: target.0 .0,
            b: target.1 .0,
        },
    }
}

/// Decode a wire edit back into a move against the receiver's parse of the
/// same base tree.
pub(crate) fn edit_to_move(edit: &TreeEdit) -> TreeMove {
    match *edit {
        TreeEdit::Insert { taxon, a, b } => TreeMove::Insertion {
            taxon,
            at: (NodeId(a), NodeId(b)),
        },
        TreeEdit::Regraft {
            root,
            attachment,
            a,
            b,
        } => TreeMove::Spr {
            root: NodeId(root),
            attachment: NodeId(attachment),
            target: (NodeId(a), NodeId(b)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moves_round_trip_through_the_wire_form() {
        let moves = [
            TreeMove::Insertion {
                taxon: 9,
                at: (NodeId(3), NodeId(11)),
            },
            TreeMove::Spr {
                root: NodeId(4),
                attachment: NodeId(6),
                target: (NodeId(1), NodeId(2)),
            },
        ];
        for mv in moves {
            assert_eq!(edit_to_move(&move_to_edit(&mv)), mv);
        }
    }
}
