//! Multi-process orchestration over the TCP transport.
//!
//! This is the launcher layer of the paper's distributed deployments: one
//! *coordinator* process hosts the hub and the master (rank 0); *peer*
//! processes dial in and become whatever rank the hub assigns — 1 foreman,
//! 2 monitor, 3.. workers — running exactly the same `run_foreman` /
//! `run_monitor` / `run_worker` loops the threaded build runs, now against
//! [`fdml_net::TcpTransport`] instead of a channel endpoint.
//!
//! Like every orchestration entrypoint in this crate, the coordinators are
//! constructed from a [`ResolvedJob`] (what to run) plus a [`NetOptions`]
//! bundle (where and how to run it) — the same two-part surface the
//! threaded [`crate::runner`] and the `fdml-serve` daemon use.
//!
//! [`net_coordinator_search`] can also fork the peers itself (`spawn`
//! mode), reproducing the single-command cluster launch of `mpirun -np N`
//! on one machine: children are re-invocations of the current executable in
//! peer mode, connected over loopback.

use crate::checkpoint::{Checkpoint, FarmManifest};
use crate::farm::{run_farm_master, FarmOptions, JumbleRun};
use crate::foreman::{run_foreman, ForemanStats};
use crate::hierarchy::{
    first_worker_rank, home_rank, run_regional_foreman, run_root_foreman, RegionalOptions,
    RootStats,
};
use crate::job::ResolvedJob;
use crate::master::ClusterExecutor;
use crate::monitor::{run_monitor, MonitorReport};
use crate::search::{SearchResult, StepwiseSearch};
use crate::wal::WalSession;
use crate::worker::{ranks, run_worker_homed, WorkerStats};
use fdml_chaos::ChaosPlan;
use fdml_comm::message::Message;
use fdml_comm::recording::Recording;
use fdml_comm::transport::{CommError, Rank, Transport};
use fdml_net::{ClientConfig, NetConfig, TcpHub, TcpTransport, WireFormat};
use fdml_obs::{Event, MemorySink, Obs, RunReport, Sink};
use fdml_phylo::consensus::Consensus;
use fdml_phylo::error::PhyloError;
use fdml_phylo::phylip;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spawn-mode settings: the coordinator forks its own peers.
#[derive(Debug, Clone)]
pub struct NetSpawn {
    /// The executable to run for each peer (normally `current_exe`).
    pub program: PathBuf,
    /// Chaos: the child destined for this rank is told to kill itself
    /// (`process::exit`) just before sending result number `tasks + 1` —
    /// a real process death mid-search, for exercising the foreman's
    /// requeue path end to end.
    pub die_after_tasks: Option<(Rank, u64)>,
    /// Forward `--quiet` to the children, silencing their shutdown
    /// summaries on stderr.
    pub quiet: bool,
    /// Self-healing: respawn worker processes that die mid-run, with
    /// capped exponential backoff. The replacement dials back in, the hub
    /// re-binds it to the lowest dead slot, the master re-sends the
    /// problem data (`PeerUp`), and the foreman re-admits it through the
    /// ready queue. Respawned children never inherit `die_after_tasks`.
    pub supervise: bool,
    /// Ceiling on respawns per worker slot when supervising.
    pub max_restarts: u32,
}

impl NetSpawn {
    /// Plain spawn settings for `program`: no chaos, no supervision.
    pub fn new(program: PathBuf) -> NetSpawn {
        NetSpawn {
            program,
            die_after_tasks: None,
            quiet: false,
            supervise: false,
            max_restarts: 3,
        }
    }

    /// Maps a [`ChaosPlan`]'s kill schedule onto a real process death:
    /// the first scheduled kill becomes a `--die-after-tasks` child (the
    /// process-level analogue of the plan's in-process link severance).
    pub fn with_chaos_kills(mut self, plan: &ChaosPlan) -> NetSpawn {
        self.die_after_tasks = plan.kills.first().copied();
        self
    }
}

/// Where and how a coordinator runs: the listen address, universe size,
/// observer sinks, checkpointing, and optional peer spawning. The job
/// itself (alignment, config, seeds) rides separately as a
/// [`ResolvedJob`]; [`NetOptions::new`] gives the plain unobserved run.
pub struct NetOptions {
    /// Address to bind the hub on (`host:0` picks an ephemeral port).
    pub listen: String,
    /// Total universe size including the coordinator (minimum 4).
    pub num_ranks: usize,
    /// Observer sinks. Empty (or all-null) disables observation and the
    /// outcome's `report` is `None`.
    pub sinks: Vec<Box<dyn Sink>>,
    /// Write a [`Checkpoint`] file after every completed taxon addition
    /// (one-shot searches only; farms checkpoint via their manifest).
    pub checkpoint_out: Option<PathBuf>,
    /// Resume a one-shot search from a checkpoint.
    pub resume: Option<Checkpoint>,
    /// Write-ahead round log directory for the coordinator's search
    /// ([`crate::wal`]): an existing log resumes bit-identically from the
    /// last committed round (finer-grained than a checkpoint, which only
    /// captures taxon-addition boundaries). One-shot searches only; farms
    /// log per jumble via [`FarmOptions::wal_dir`].
    pub wal_dir: Option<PathBuf>,
    /// Fork the peers ourselves — the single-command cluster launch.
    pub spawn: Option<NetSpawn>,
    /// Regional foremen for a hierarchical universe (0 = flat). Announced
    /// in every `Welcome`, so each peer derives its role from its rank —
    /// no peer-side flag changes.
    pub regions: usize,
    /// Wire format the hub writes to codec-sniffing peers (JSON peers
    /// still interoperate frame by frame).
    pub wire: WireFormat,
}

impl NetOptions {
    /// Plain settings: listen on `listen`, expect `num_ranks` ranks, no
    /// observation, no checkpointing, peers dial in on their own.
    pub fn new(listen: impl Into<String>, num_ranks: usize) -> NetOptions {
        NetOptions {
            listen: listen.into(),
            num_ranks,
            sinks: Vec::new(),
            checkpoint_out: None,
            resume: None,
            wal_dir: None,
            spawn: None,
            regions: 0,
            wire: WireFormat::default(),
        }
    }

    /// Attach observer sinks.
    pub fn observed(mut self, sinks: Vec<Box<dyn Sink>>) -> NetOptions {
        self.sinks = sinks;
        self
    }

    /// Fork the peers from `spawn` instead of waiting for external dials.
    pub fn spawning(mut self, spawn: NetSpawn) -> NetOptions {
        self.spawn = Some(spawn);
        self
    }

    /// Interpose `regions` regional foremen between the root foreman and
    /// the workers.
    pub fn hierarchical(mut self, regions: usize) -> NetOptions {
        self.regions = regions;
        self
    }

    /// Set the hub's data-plane wire format.
    pub fn with_wire(mut self, wire: WireFormat) -> NetOptions {
        self.wire = wire;
        self
    }
}

/// What a coordinator run returns.
#[derive(Debug)]
pub struct NetOutcome {
    /// The search result (identical to a threads-transport run with the
    /// same configuration).
    pub result: SearchResult,
    /// End-of-run observability report — master-side traffic plus the
    /// hub's per-peer connection events. `None` when unobserved.
    pub report: Option<RunReport>,
    /// Exit statuses of spawned peers (spawn mode only), by rank.
    pub peer_exits: Vec<(Rank, Option<i32>)>,
}

/// What a peer process ran, with its shutdown statistics.
#[derive(Debug)]
pub enum PeerOutcome {
    /// This process was rank 1 in a flat universe, or a regional foreman
    /// (ranks `3..3+R`) in a hierarchical one.
    Foreman(ForemanStats),
    /// This process was rank 1 of a hierarchical universe.
    Root(RootStats),
    /// This process was rank 2.
    Monitor(MonitorReport),
    /// This process was a worker rank.
    Worker(WorkerStats),
}

/// How long the coordinator waits for the universe to assemble.
const READY_TIMEOUT: Duration = Duration::from_secs(60);

/// Tee a [`MemorySink`] into `sinks` when any sink is live, so the
/// end-of-run report can be aggregated no matter where else events go.
fn observe(mut sinks: Vec<Box<dyn Sink>>) -> (Obs, Option<MemorySink>) {
    let observing = sinks.iter().any(|s| !s.is_null());
    let mem = if observing {
        let mem = MemorySink::new();
        sinks.push(Box::new(mem.clone()));
        Some(mem)
    } else {
        None
    };
    (Obs::multi(sinks), mem)
}

/// Build the peer-mode command line for one child.
fn peer_command(spawn: &NetSpawn, addr: &str, rank: Option<Rank>) -> Command {
    let mut cmd = Command::new(&spawn.program);
    cmd.arg("--net")
        .arg("worker")
        .arg("--connect")
        .arg(addr)
        .stdout(Stdio::null());
    if spawn.quiet {
        cmd.arg("--quiet");
    }
    // An explicit `--isa` narrows the whole universe to one lane; children
    // must inherit it or worker-side dispatch would silently diverge.
    if let Some(isa) = fdml_likelihood::isa::override_isa() {
        cmd.arg("--isa").arg(isa.name());
    }
    if let (Some(rank), Some((die_rank, tasks))) = (rank, spawn.die_after_tasks) {
        if die_rank == rank {
            cmd.arg("--die-after-tasks").arg(tasks.to_string());
        }
    }
    cmd
}

/// Bind the hub, fork peers if asked, and wait for the universe.
///
/// Spawning is sequential — each child's handshake is awaited before the
/// next fork — so connection order, and therefore rank assignment, is
/// deterministic (child *i* becomes rank *i*).
fn assemble_universe(
    listen: &str,
    num_ranks: usize,
    worker_timeout: Duration,
    regions: usize,
    wire: WireFormat,
    obs: &Obs,
    spawn: &Option<NetSpawn>,
) -> Result<(TcpHub, Vec<(Rank, Child)>), PhyloError> {
    assert!(
        num_ranks >= 4,
        "the fully instrumented parallel version requires at least four ranks"
    );
    assert!(
        regions == 0 || num_ranks > first_worker_rank(regions),
        "a hierarchical universe needs at least one worker above its {regions} regional foremen"
    );
    let net_cfg = NetConfig {
        worker_timeout,
        regions,
        wire,
        ..NetConfig::default()
    };
    let hub = TcpHub::bind(listen, num_ranks, net_cfg, obs.clone())
        .map_err(|e| PhyloError::Format(format!("bind {listen}: {e}")))?;
    let addr = hub.local_addr().to_string();

    let mut children: Vec<(Rank, Child)> = Vec::new();
    if let Some(spawn) = spawn {
        for rank in 1..num_ranks {
            let child = peer_command(spawn, &addr, Some(rank))
                .spawn()
                .map_err(|e| PhyloError::Format(format!("spawn peer: {e}")))?;
            children.push((rank, child));
            let deadline = Instant::now() + READY_TIMEOUT;
            while hub.connected_peers() < rank {
                if Instant::now() >= deadline {
                    reap(&mut children, Duration::ZERO);
                    return Err(PhyloError::Format(format!(
                        "spawned peer for rank {rank} never connected"
                    )));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    hub.wait_ready(READY_TIMEOUT)
        .map_err(|e| PhyloError::Format(format!("waiting for peers: {e}")))?;
    Ok((hub, children))
}

/// Shut the universe down: stop supervision, wait for the peers to
/// acknowledge by disconnecting (or the foreman's Shutdown cascade would
/// race the relay teardown and surviving ranks would die on a broken link
/// instead of exiting cleanly), then collect child exit statuses.
fn drain_and_reap(
    master_end: Recording<TcpHub>,
    supervisor: Option<Supervisor>,
    mut children: Vec<(Rank, Child)>,
) -> Vec<(Rank, Option<i32>)> {
    let mut peer_exits = Vec::new();
    if let Some(sup) = supervisor {
        let (mut kids, mut exits) = sup.finish();
        children.append(&mut kids);
        peer_exits.append(&mut exits);
    }
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    while master_end.inner().connected_peers() > 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    peer_exits.extend(reap(&mut children, Duration::from_secs(30)));
    drop(master_end);
    peer_exits
}

/// Run the coordinator: bind the hub, (optionally) fork peers, wait for
/// the universe, then drive the stepwise search as rank 0.
///
/// `options.checkpoint_out` writes a [`Checkpoint`] file after every
/// completed taxon addition; `options.resume` restarts from one —
/// together they make a coordinator killed mid-search restartable (the
/// peers are stateless between tasks, so only rank 0 carries state worth
/// saving).
pub fn net_coordinator_search(
    job: &ResolvedJob,
    options: NetOptions,
) -> Result<NetOutcome, PhyloError> {
    let NetOptions {
        listen,
        num_ranks,
        sinks,
        checkpoint_out,
        resume,
        wal_dir,
        spawn,
        regions,
        wire,
    } = options;
    let alignment = &job.alignment;
    let config = &job.config;
    let first_worker = first_worker_rank(regions);
    let (obs, mem) = observe(sinks);
    obs.emit(|| Event::RunStarted {
        ranks: num_ranks,
        workers: num_ranks - first_worker,
    });
    obs.emit(|| Event::KernelDispatch {
        isa: fdml_likelihood::isa::active().name().to_string(),
        intra_threads: config.intra_threads,
    });
    // Open the WAL before binding the hub or forking peers: a bad
    // --wal-dir fails the run before there is anything to tear down.
    let mut wal_session = match &wal_dir {
        Some(dir) => Some(
            WalSession::open(dir, 0, config.jumble_seed, alignment.num_taxa(), &obs)
                .map_err(|e| PhyloError::Format(format!("wal: {e}")))?,
        ),
        None => None,
    };

    let (hub, mut children) = assemble_universe(
        &listen,
        num_ranks,
        config.worker_timeout,
        regions,
        wire,
        &obs,
        &spawn,
    )?;
    let addr = hub.local_addr().to_string();
    let supervisor = match &spawn {
        Some(s) if s.supervise => Some(Supervisor::start(
            std::mem::take(&mut children),
            s.clone(),
            addr,
            obs.clone(),
        )),
        _ => None,
    };

    let master_end = Recording::new(hub, obs.clone());
    let executor = ClusterExecutor::with_first_worker(
        master_end,
        alignment.names().to_vec(),
        phylip::write(alignment),
        config.engine_config_json(),
        true,
        first_worker,
    )
    .with_incremental(config.incremental);
    let mut search = StepwiseSearch::new(config, executor, alignment.num_taxa())
        .with_names(alignment.names().to_vec());
    if let Some(cp) = resume {
        search = search.resume_from(cp);
    }
    if let Some(path) = checkpoint_out {
        search = search.on_checkpoint(move |cp| {
            // Durable replace: a kill at any step leaves the previous
            // checkpoint intact, and a completed write survives power loss.
            let _ = cp.save(&path);
        });
    }
    if let Some(session) = &mut wal_session {
        let rounds = session.take_rounds();
        search = search.resume_from_wal(rounds).on_wal(session.hook());
    }
    let result = search.run();
    let executor = search.into_executor();
    // `shutdown` returns the transport; the teardown helper keeps the hub
    // alive until the peers acknowledge by disconnecting.
    let master_end = executor.shutdown();
    let peer_exits = drain_and_reap(master_end, supervisor, children);
    let result = result?;
    if let Some(session) = wal_session {
        // The tree is computed; retire the log (and surface any append
        // error deferred during the run) before reporting success.
        session
            .finish_and_retire()
            .map_err(|e| PhyloError::Format(format!("wal: {e}")))?;
    }
    obs.emit(|| Event::RunFinished {
        ln_likelihood: result.ln_likelihood,
    });
    obs.flush();
    let report = mem.map(|m| RunReport::from_events(&m.take()));
    Ok(NetOutcome {
        result,
        report,
        peer_exits,
    })
}

/// What a farm coordinator run returns.
#[derive(Debug)]
pub struct NetFarmOutcome {
    /// Per-jumble results in seed order — byte-identical to a serial or
    /// threads-transport farm with the same configuration.
    pub runs: Vec<JumbleRun>,
    /// The majority-rule consensus over all jumbles.
    pub consensus: Consensus,
    /// The final manifest (every entry `Done`).
    pub manifest: FarmManifest,
    /// End-of-run observability report. `None` when unobserved.
    pub report: Option<RunReport>,
    /// Exit statuses of spawned peers (spawn mode only), by rank.
    pub peer_exits: Vec<(Rank, Option<i32>)>,
}

/// Run the coordinator as a jumble-farm master: bind the hub, (optionally)
/// fork peers, then shard the job's planned seeds across the worker
/// processes via [`run_farm_master`]. Manifest checkpointing and resume
/// come from `farm`; the peers run the same worker loop as a tree-task
/// search, so no peer-side flags change.
pub fn net_farm_search(
    job: &ResolvedJob,
    farm: &FarmOptions,
    options: NetOptions,
) -> Result<NetFarmOutcome, PhyloError> {
    let NetOptions {
        listen,
        num_ranks,
        sinks,
        spawn,
        wire,
        // The farm shards whole jumbles, so its universe stays flat — a
        // `regions` setting is ignored here just as in the threaded farm.
        regions: _,
        ..
    } = options;
    let alignment = &job.alignment;
    let config = &job.config;
    let (obs, mem) = observe(sinks);
    obs.emit(|| Event::RunStarted {
        ranks: num_ranks,
        workers: num_ranks - ranks::FIRST_WORKER,
    });
    obs.emit(|| Event::KernelDispatch {
        isa: fdml_likelihood::isa::active().name().to_string(),
        intra_threads: config.intra_threads,
    });

    let (hub, mut children) = assemble_universe(
        &listen,
        num_ranks,
        config.worker_timeout,
        0,
        wire,
        &obs,
        &spawn,
    )?;
    let addr = hub.local_addr().to_string();
    let supervisor = match &spawn {
        Some(s) if s.supervise => Some(Supervisor::start(
            std::mem::take(&mut children),
            s.clone(),
            addr,
            obs.clone(),
        )),
        _ => None,
    };

    let master_end = Recording::new(hub, obs.clone());
    let parts = run_farm_master(&master_end, alignment, config, &job.seeds, farm, &obs);
    // Shut the universe down regardless of the farm outcome.
    let _ = master_end.send(ranks::FOREMAN, &Message::Shutdown);
    let peer_exits = drain_and_reap(master_end, supervisor, children);
    let parts = parts?;
    obs.emit(|| Event::RunFinished {
        ln_likelihood: parts.best_ln_likelihood(),
    });
    obs.flush();
    let report = mem.map(|m| RunReport::from_events(&m.take()));
    Ok(NetFarmOutcome {
        runs: parts.runs,
        consensus: parts.consensus,
        manifest: parts.manifest,
        report,
        peer_exits,
    })
}

/// What supervision hands back at shutdown: the surviving children, plus
/// the exit status of every child that died (and was possibly replaced)
/// along the way.
type SupervisionOutcome = (Vec<(Rank, Child)>, Vec<(Rank, Option<i32>)>);

/// First respawn delay; doubles per restart of the same slot.
const RESPAWN_BACKOFF: Duration = Duration::from_millis(50);
/// Ceiling on the per-slot respawn delay.
const RESPAWN_BACKOFF_CAP: Duration = Duration::from_secs(2);

/// The process-level half of the self-healing layer: watches spawned
/// children on its own thread and respawns dead workers. The coordinator
/// stops it the moment shutdown begins, so deaths during teardown are not
/// "healed" back to life.
struct Supervisor {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<SupervisionOutcome>,
}

impl Supervisor {
    fn start(children: Vec<(Rank, Child)>, spawn: NetSpawn, addr: String, obs: Obs) -> Supervisor {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || supervise(children, spawn, addr, obs, stop_flag));
        Supervisor { stop, handle }
    }

    /// Stop supervising and hand back the surviving children plus the
    /// exit statuses of every child that died (and was possibly replaced)
    /// along the way.
    fn finish(self) -> SupervisionOutcome {
        self.stop.store(true, Ordering::SeqCst);
        self.handle
            .join()
            .expect("supervisor thread must not panic")
    }
}

fn supervise(
    mut children: Vec<(Rank, Child)>,
    spawn: NetSpawn,
    addr: String,
    obs: Obs,
    stop: Arc<AtomicBool>,
) -> SupervisionOutcome {
    let mut restarts: HashMap<Rank, u32> = HashMap::new();
    // Slots waiting out their backoff before the next respawn attempt.
    let mut due: Vec<(Rank, Instant)> = Vec::new();
    let mut early_exits: Vec<(Rank, Option<i32>)> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let mut i = 0;
        while i < children.len() {
            match children[i].1.try_wait() {
                Ok(Some(status)) => {
                    let (rank, _) = children.remove(i);
                    early_exits.push((rank, status.code()));
                    let count = *restarts.get(&rank).unwrap_or(&0);
                    if rank >= ranks::FIRST_WORKER && count < spawn.max_restarts {
                        let backoff = RESPAWN_BACKOFF
                            .saturating_mul(1u32 << count.min(16))
                            .min(RESPAWN_BACKOFF_CAP);
                        due.push((rank, Instant::now() + backoff));
                    }
                }
                _ => i += 1,
            }
        }
        let now = Instant::now();
        let mut j = 0;
        while j < due.len() {
            if due[j].1 > now {
                j += 1;
                continue;
            }
            let (rank, _) = due.remove(j);
            let count = restarts.entry(rank).or_insert(0);
            *count += 1;
            let restart_count = *count as u64;
            // Deliberately built without `--die-after-tasks` (rank None):
            // the replacement is healthy even when the original was a
            // chaos casualty.
            match peer_command(&spawn, &addr, None).spawn() {
                Ok(child) => {
                    obs.emit(|| Event::WorkerRespawned {
                        worker: rank,
                        restarts: restart_count,
                    });
                    children.push((rank, child));
                }
                Err(_) => {
                    // The slot stays dead; the foreman schedules around it.
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    (children, early_exits)
}

/// Collect spawned peers, killing any that outlive `grace`.
fn reap(children: &mut Vec<(Rank, Child)>, grace: Duration) -> Vec<(Rank, Option<i32>)> {
    let deadline = Instant::now() + grace;
    let mut exits = Vec::with_capacity(children.len());
    for (rank, mut child) in children.drain(..) {
        loop {
            match child.try_wait() {
                Ok(Some(status)) => {
                    exits.push((rank, status.code()));
                    break;
                }
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    exits.push((rank, None));
                    break;
                }
            }
        }
    }
    exits
}

/// Run this process as a peer: dial the coordinator, learn our rank, and
/// run that rank's loop until shutdown. `die_after_tasks` arms the chaos
/// exit used by fault-injection tests (see [`NetSpawn::die_after_tasks`]).
pub fn run_net_peer(
    connect: &str,
    sinks: Vec<Box<dyn Sink>>,
    die_after_tasks: Option<u64>,
) -> Result<(Rank, PeerOutcome), String> {
    let obs = Obs::multi(sinks);
    let transport = TcpTransport::connect_observed(connect, ClientConfig::default(), obs.clone())
        .map_err(|e| format!("connect {connect}: {e}"))?;
    let rank = transport.rank();
    let worker_timeout = transport.worker_timeout();
    // The `Welcome` frame carries the universe's shape, so a peer derives
    // its role purely from its rank — the same binary serves flat and
    // hierarchical universes with no extra flags.
    let regions = transport.regions();
    let outcome = match rank {
        ranks::FOREMAN if regions > 0 => run_root_foreman(
            Recording::new(transport, obs.clone()),
            regions,
            worker_timeout,
            true,
            obs.clone(),
        )
        .map(PeerOutcome::Root)
        .map_err(|e| format!("root foreman: {e}"))?,
        ranks::FOREMAN => run_foreman(
            Recording::new(transport, obs.clone()),
            worker_timeout,
            true,
            obs.clone(),
        )
        .map(PeerOutcome::Foreman)
        .map_err(|e| format!("foreman: {e}"))?,
        ranks::MONITOR => run_monitor(Recording::new(transport, obs.clone()), obs.clone())
            .map(PeerOutcome::Monitor)
            .map_err(|e| format!("monitor: {e}"))?,
        r if regions > 0 && r < first_worker_rank(regions) => run_regional_foreman(
            Recording::new(transport, obs.clone()),
            RegionalOptions::new(worker_timeout, true),
            obs.clone(),
        )
        .map(PeerOutcome::Foreman)
        .map_err(|e| format!("regional foreman: {e}"))?,
        _ => {
            let home = if regions > 0 {
                home_rank(rank, regions)
            } else {
                ranks::FOREMAN
            };
            let recorded = Recording::new(transport, obs.clone());
            let stats = match die_after_tasks {
                Some(n) => run_worker_homed(DieAfter::new(recorded, n), home, obs.clone()),
                None => run_worker_homed(recorded, home, obs.clone()),
            }
            .map_err(|e| format!("worker: {e:?}"))?;
            PeerOutcome::Worker(stats)
        }
    };
    obs.flush();
    Ok((rank, outcome))
}

/// Chaos wrapper: lets `limit` results (tree or jumble) through, then terminates the
/// whole process before the next one — a genuine worker death, distinct
/// from [`fdml_comm::fault::FaultyTransport`]'s in-process severance.
struct DieAfter<T: Transport> {
    inner: T,
    limit: u64,
    sent: std::cell::Cell<u64>,
}

impl<T: Transport> DieAfter<T> {
    fn new(inner: T, limit: u64) -> DieAfter<T> {
        DieAfter {
            inner,
            limit,
            sent: std::cell::Cell::new(0),
        }
    }
}

impl<T: Transport> Transport for DieAfter<T> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, to: Rank, msg: &Message) -> Result<(), CommError> {
        if let Message::TreeResult { .. } | Message::JumbleResult { .. } = msg {
            if self.sent.get() >= self.limit {
                // Abrupt death: no Goodbye, no flush — the coordinator
                // must discover it via liveness, exactly like a crashed
                // node in the paper's clusters.
                std::process::exit(3);
            }
            self.sent.set(self.sent.get() + 1);
        }
        self.inner.send(to, msg)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(Rank, Message)>, CommError> {
        self.inner.recv_timeout(timeout)
    }
}
