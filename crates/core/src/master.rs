//! The master process (paper §2.2): "generates and compares trees. It
//! generates new tree topologies and sends these trees to the foreman."
//!
//! [`ClusterExecutor`] is the master's side of the protocol, implementing
//! [`RoundExecutor`] so the identical search driver runs serially or over
//! a transport (the paper's point about the algorithm being independent of
//! the message-passing layer).

use crate::executor::{BaseOutcome, CandidateScore, ExecutorError, RoundExecutor};
use crate::worker::ranks;
use fdml_comm::message::{Message, MonitorEvent};
use fdml_comm::transport::Transport;
use fdml_phylo::error::PhyloError;
use fdml_phylo::newick;
use fdml_phylo::ops::{apply_move, TreeMove};
use fdml_phylo::tree::Tree;
use std::collections::HashMap;

/// Master-side executor: each candidate becomes a `TreeTask` dispatched via
/// the foreman; workers do the full per-tree optimization.
pub struct ClusterExecutor<T: Transport> {
    transport: T,
    names: Vec<String>,
    base: Option<Tree>,
    base_lnl: f64,
    next_task: u64,
    round: u64,
    has_monitor: bool,
}

impl<T: Transport> ClusterExecutor<T> {
    /// Create the executor and broadcast the problem data to all workers.
    pub fn new(
        transport: T,
        names: Vec<String>,
        phylip: String,
        config_json: String,
        has_monitor: bool,
    ) -> ClusterExecutor<T> {
        for rank in ranks::FIRST_WORKER..transport.size() {
            transport
                .send(
                    rank,
                    &Message::ProblemData {
                        phylip: phylip.clone(),
                        config_json: config_json.clone(),
                    },
                )
                .expect("worker must be reachable at startup");
        }
        ClusterExecutor {
            transport,
            names,
            base: None,
            base_lnl: f64::NEG_INFINITY,
            next_task: 0,
            round: 0,
            has_monitor,
        }
    }

    /// Orderly shutdown: tell the foreman, which cascades to workers and
    /// the monitor.
    pub fn shutdown(self) -> T {
        let _ = self.transport.send(ranks::FOREMAN, &Message::Shutdown);
        self.transport
    }

    /// Dispatch a batch of Newick strings; block until all results return.
    /// Results are reordered to match submission order.
    fn dispatch_batch(
        &mut self,
        newicks: Vec<String>,
    ) -> Result<Vec<(Tree, f64, u64)>, PhyloError> {
        let mut index_of: HashMap<u64, usize> = HashMap::with_capacity(newicks.len());
        let n = newicks.len();
        for (i, text) in newicks.into_iter().enumerate() {
            let task = self.next_task;
            self.next_task += 1;
            index_of.insert(task, i);
            self.transport
                .send(ranks::FOREMAN, &Message::TreeTask { task, newick: text })
                .map_err(|e| PhyloError::Format(format!("transport: {e}")))?;
        }
        let mut results: Vec<Option<(Tree, f64, u64)>> = (0..n).map(|_| None).collect();
        let mut received = 0usize;
        while received < n {
            let (_, msg) = self
                .transport
                .recv()
                .map_err(|e| PhyloError::Format(format!("transport: {e}")))?;
            match msg {
                Message::TreeResult {
                    task,
                    newick: text,
                    ln_likelihood,
                    work_units,
                } => {
                    let Some(&i) = index_of.get(&task) else {
                        continue;
                    };
                    if results[i].is_none() {
                        let tree = newick::parse_tree_with_names(&text, &self.names)?;
                        results[i] = Some((tree, ln_likelihood, work_units));
                        received += 1;
                    }
                }
                other => {
                    debug_assert!(false, "master got unexpected {}", other.kind());
                }
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("all received"))
            .collect())
    }

    fn base(&self) -> Result<&Tree, ExecutorError> {
        self.base.as_ref().ok_or(ExecutorError::NoBase)
    }

    fn announce_round(&mut self, candidates: usize, best_lnl: f64, best: &Tree) {
        self.round += 1;
        if self.has_monitor {
            let _ = self.transport.send(
                ranks::MONITOR,
                &Message::Monitor(MonitorEvent::RoundComplete {
                    round: self.round,
                    candidates,
                    best_ln_likelihood: best_lnl,
                    best_newick: newick::write_tree(best, &self.names),
                }),
            );
        }
    }
}

impl<T: Transport> RoundExecutor for ClusterExecutor<T> {
    fn set_base(&mut self, tree: Tree) -> Result<BaseOutcome, ExecutorError> {
        let text = newick::write_tree(&tree, &self.names);
        let mut results = self.dispatch_batch(vec![text])?;
        let (tree, lnl, work) = results.pop().expect("one result");
        self.base = Some(tree.clone());
        self.base_lnl = lnl;
        Ok(BaseOutcome {
            tree,
            ln_likelihood: lnl,
            work_units: work,
        })
    }

    fn score_round(&mut self, moves: &[TreeMove]) -> Result<Vec<CandidateScore>, ExecutorError> {
        let mut newicks = Vec::with_capacity(moves.len());
        for mv in moves {
            let mut cand = self.base()?.clone();
            apply_move(&mut cand, mv)?;
            newicks.push(newick::write_tree(&cand, &self.names));
        }
        let results = self.dispatch_batch(newicks)?;
        let best = results
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(t, l, _)| (t.clone(), *l));
        if let Some((tree, lnl)) = best {
            self.announce_round(moves.len(), lnl, &tree);
        }
        Ok(results
            .into_iter()
            .map(|(_, lnl, work)| CandidateScore {
                ln_likelihood: lnl,
                work_units: work,
            })
            .collect())
    }

    fn commit(&mut self, mv: &TreeMove) -> Result<BaseOutcome, ExecutorError> {
        let mut tree = self.base()?.clone();
        apply_move(&mut tree, mv)?;
        self.set_base(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::argmax;
    use fdml_comm::threads::ThreadUniverse;
    use fdml_phylo::tree::Tree;
    use std::thread;

    /// A scripted foreman: answers every TreeTask, but holds results back
    /// and replies in REVERSE arrival order with recognizable likelihoods.
    fn reverse_order_foreman(
        end: fdml_comm::threads::ThreadTransport,
        expect_tasks: usize,
    ) -> thread::JoinHandle<()> {
        thread::spawn(move || {
            let mut pending: Vec<(u64, String)> = Vec::new();
            let mut served = 0usize;
            while served < expect_tasks {
                let (_, msg) = end.recv().unwrap();
                match msg {
                    Message::TreeTask { task, newick } => {
                        pending.push((task, newick));
                        // Batch boundary heuristic for the test: reply once
                        // per message when a single task is outstanding
                        // (set_base), otherwise wait for the full round.
                        let batch = if served == 0 { 1 } else { expect_tasks - 1 };
                        if pending.len() == batch {
                            for (task, newick) in pending.drain(..).rev() {
                                end.send(
                                    ranks::MASTER,
                                    &Message::TreeResult {
                                        task,
                                        newick,
                                        // Encode the task id in the lnL so the
                                        // test can verify the mapping.
                                        ln_likelihood: -(task as f64) - 1.0,
                                        work_units: task + 1,
                                    },
                                )
                                .unwrap();
                                served += 1;
                            }
                        }
                    }
                    Message::Shutdown => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
        })
    }

    #[test]
    fn out_of_order_results_are_reordered_to_move_order() {
        let names: Vec<String> = (0..4).map(|i| format!("t{i}")).collect();
        let mut ends = ThreadUniverse::create(2);
        let foreman_end = ends.remove(1);
        let master_end = ends.remove(0);
        // 1 set_base task + 3 insertion candidates.
        let foreman = reverse_order_foreman(foreman_end, 4);
        let mut ex = ClusterExecutor::new(
            master_end,
            names,
            String::new(), // no workers to broadcast to in this 2-rank world
            String::new(),
            false,
        );
        let base = ex.set_base(Tree::triplet(0, 1, 2)).unwrap();
        assert_eq!(base.ln_likelihood, -1.0); // task 0
        let moves = fdml_phylo::ops::enumerate_insertion_moves(&base.tree, 3);
        assert_eq!(moves.len(), 3);
        let scores = ex.score_round(&moves).unwrap();
        // Tasks 1, 2, 3 were answered in reverse order (3, 2, 1), but the
        // scores must land in submission order: lnL = -(task+1).
        let got: Vec<f64> = scores.iter().map(|s| s.ln_likelihood).collect();
        assert_eq!(got, vec![-2.0, -3.0, -4.0]);
        let works: Vec<u64> = scores.iter().map(|s| s.work_units).collect();
        assert_eq!(works, vec![2, 3, 4]);
        // Deterministic selection: argmax picks the first (task 1).
        assert_eq!(argmax(&scores), 0);
        ex.shutdown();
        foreman.join().unwrap();
    }
}
