//! The master process (paper §2.2): "generates and compares trees. It
//! generates new tree topologies and sends these trees to the foreman."
//!
//! [`ClusterExecutor`] is the master's side of the protocol, implementing
//! [`RoundExecutor`] so the identical search driver runs serially or over
//! a transport (the paper's point about the algorithm being independent of
//! the message-passing layer).

use crate::config::SearchConfig;
use crate::edits::{edit_to_move, move_to_edit};
use crate::executor::{BaseOutcome, CandidateScore, ExecutorError, RoundExecutor};
use crate::worker::ranks;
use fdml_comm::message::{Message, MonitorEvent, TaskPayload, TreeEdit};
use fdml_comm::transport::Transport;
use fdml_likelihood::engine::LikelihoodEngine;
use fdml_likelihood::incremental::ClvCache;
use fdml_phylo::alignment::Alignment;
use fdml_phylo::error::PhyloError;
use fdml_phylo::ops::{apply_move, TreeMove};
use fdml_phylo::tree::Tree;
use fdml_phylo::{newick, phylip};
use std::collections::HashMap;

/// Master-side executor: each candidate becomes a `TreeTask` dispatched via
/// the foreman; workers do the full per-tree optimization. With
/// [`ClusterExecutor::with_incremental`] enabled, candidates instead travel
/// as compact `TreeEditTask`s against a per-round `BaseTopology` broadcast
/// and workers score them through their CLV caches.
pub struct ClusterExecutor<T: Transport> {
    transport: T,
    names: Vec<String>,
    phylip: String,
    config_json: String,
    local: Option<(Alignment, LikelihoodEngine, SearchConfig)>,
    base: Option<Tree>,
    base_lnl: f64,
    next_task: u64,
    round: u64,
    has_monitor: bool,
    incremental: bool,
    /// Generation id of the current base broadcast (incremental mode).
    base_id: u64,
    /// Newick text of the current broadcast base (incremental mode): the
    /// single source of truth every rank parses, so node ids agree.
    base_text: Option<String>,
    /// The master's own CLV cache, built lazily to score quarantined edit
    /// tasks bit-identically to a healthy worker.
    local_cache: Option<(u64, ClvCache)>,
    /// First worker rank: [`ranks::FIRST_WORKER`] in the flat topology,
    /// higher when regional foremen sit between rank 2 and the fleet.
    first_worker: usize,
}

impl<T: Transport> ClusterExecutor<T> {
    /// Create the executor and broadcast the problem data to all workers
    /// (flat topology: workers start at [`ranks::FIRST_WORKER`]).
    pub fn new(
        transport: T,
        names: Vec<String>,
        phylip: String,
        config_json: String,
        has_monitor: bool,
    ) -> ClusterExecutor<T> {
        Self::with_first_worker(
            transport,
            names,
            phylip,
            config_json,
            has_monitor,
            ranks::FIRST_WORKER,
        )
    }

    /// Like [`ClusterExecutor::new`], but for a hierarchical topology
    /// where workers start at `first_worker` (the ranks below it are
    /// regional foremen, which must not receive worker problem data).
    pub fn with_first_worker(
        transport: T,
        names: Vec<String>,
        phylip: String,
        config_json: String,
        has_monitor: bool,
        first_worker: usize,
    ) -> ClusterExecutor<T> {
        for rank in first_worker..transport.size() {
            // A worker that died before the broadcast is the foreman's
            // problem (eager requeue / all-dead abort), not a panic here.
            let _ = transport.send(
                rank,
                &Message::ProblemData {
                    phylip: phylip.clone(),
                    config_json: config_json.clone(),
                },
            );
        }
        ClusterExecutor {
            transport,
            names,
            phylip,
            config_json,
            local: None,
            base: None,
            base_lnl: f64::NEG_INFINITY,
            next_task: 0,
            round: 0,
            has_monitor,
            incremental: false,
            base_id: 0,
            base_text: None,
            local_cache: None,
            first_worker,
        }
    }

    /// Toggle incremental candidate evaluation: when on, `set_base`
    /// broadcasts the round's base topology and `score_round` dispatches
    /// compact edits instead of whole candidate trees.
    pub fn with_incremental(mut self, on: bool) -> ClusterExecutor<T> {
        self.incremental = on;
        self
    }

    /// Build (once) the master's own likelihood engine, used only to
    /// evaluate quarantined tasks. It runs the identical parse → optimize
    /// path as the workers, so a locally evaluated task is byte-identical
    /// to what a healthy worker would have returned.
    fn local_engine(&mut self) -> Result<&(Alignment, LikelihoodEngine, SearchConfig), PhyloError> {
        if self.local.is_none() {
            let alignment = phylip::parse(&self.phylip)?;
            let config = SearchConfig::from_engine_config_json(&self.config_json)
                .map_err(|e| PhyloError::Format(format!("bad engine config: {e}")))?;
            let engine = config.build_engine(&alignment);
            self.local = Some((alignment, engine, config));
        }
        Ok(self.local.as_ref().expect("just built"))
    }

    /// Orderly shutdown: tell the foreman, which cascades to workers and
    /// the monitor.
    pub fn shutdown(self) -> T {
        let _ = self.transport.send(ranks::FOREMAN, &Message::Shutdown);
        self.transport
    }

    /// Score a quarantined edit on the master's own CLV cache. Workers and
    /// the master parse the same base text and run the same junction
    /// algorithm, so the result is bit-identical to a healthy worker's.
    fn score_edit_locally(
        &mut self,
        base_id: u64,
        edit: &TreeEdit,
    ) -> Result<(Tree, f64, u64), PhyloError> {
        if base_id != self.base_id {
            return Err(PhyloError::Format(format!(
                "quarantined edit for stale base {base_id} (current {})",
                self.base_id
            )));
        }
        let text = self
            .base_text
            .clone()
            .ok_or_else(|| PhyloError::Format("quarantined edit with no base".into()))?;
        self.local_engine()?;
        let (alignment, engine, config) = self.local.as_ref().expect("just built");
        if self.local_cache.as_ref().map(|(id, _)| *id) != Some(base_id) {
            let base = newick::parse_tree(&text, alignment)?;
            self.local_cache = Some((base_id, ClvCache::build(engine, base)));
        }
        let (_, cache) = self.local_cache.as_mut().expect("just built");
        let mv = edit_to_move(edit);
        let score = cache.score_edit(engine, &mv, &config.optimize)?;
        let cand = cache.materialize(&mv, &score)?;
        Ok((cand, score.ln_likelihood, score.work.work_units()))
    }

    /// Dispatch a batch of Newick strings; block until all results return.
    /// Results are reordered to match submission order.
    fn dispatch_batch(
        &mut self,
        newicks: Vec<String>,
    ) -> Result<Vec<(Tree, f64, u64)>, PhyloError> {
        let mut index_of: HashMap<u64, usize> = HashMap::with_capacity(newicks.len());
        let n = newicks.len();
        for (i, text) in newicks.into_iter().enumerate() {
            let task = self.next_task;
            self.next_task += 1;
            index_of.insert(task, i);
            self.transport
                .send(ranks::FOREMAN, &Message::TreeTask { task, newick: text })
                .map_err(|e| PhyloError::Format(format!("transport: {e}")))?;
        }
        self.collect_results(index_of, n)
    }

    /// Dispatch a round of compact edits against the current broadcast
    /// base; block until all results return, in submission order.
    fn dispatch_edits(&mut self, moves: &[TreeMove]) -> Result<Vec<(Tree, f64, u64)>, PhyloError> {
        let mut index_of: HashMap<u64, usize> = HashMap::with_capacity(moves.len());
        let n = moves.len();
        for (i, mv) in moves.iter().enumerate() {
            let task = self.next_task;
            self.next_task += 1;
            index_of.insert(task, i);
            self.transport
                .send(
                    ranks::FOREMAN,
                    &Message::TreeEditTask {
                        task,
                        base_id: self.base_id,
                        edit: move_to_edit(mv),
                        base_newick: None,
                    },
                )
                .map_err(|e| PhyloError::Format(format!("transport: {e}")))?;
        }
        self.collect_results(index_of, n)
    }

    /// The shared result loop behind [`Self::dispatch_batch`] and
    /// [`Self::dispatch_edits`].
    fn collect_results(
        &mut self,
        index_of: HashMap<u64, usize>,
        n: usize,
    ) -> Result<Vec<(Tree, f64, u64)>, PhyloError> {
        let mut results: Vec<Option<(Tree, f64, u64)>> = (0..n).map(|_| None).collect();
        let mut received = 0usize;
        while received < n {
            let (_, msg) = self
                .transport
                .recv()
                .map_err(|e| PhyloError::Format(format!("transport: {e}")))?;
            match msg {
                Message::TreeResult {
                    task,
                    newick: text,
                    ln_likelihood,
                    work_units,
                } => {
                    let Some(&i) = index_of.get(&task) else {
                        continue;
                    };
                    if results[i].is_none() {
                        let tree = newick::parse_tree_with_names(&text, &self.names)?;
                        results[i] = Some((tree, ln_likelihood, work_units));
                        received += 1;
                    }
                }
                Message::Quarantined { task, payload, .. } => {
                    // The foreman exhausted a task's failure budget across
                    // distinct workers; the master evaluates it itself.
                    let Some(&i) = index_of.get(&task) else {
                        continue;
                    };
                    if results[i].is_some() {
                        continue;
                    }
                    let (tree, lnl, work) = match payload {
                        TaskPayload::Tree { newick: text } => {
                            let (alignment, engine, config) = self.local_engine()?;
                            let mut tree = newick::parse_tree(&text, alignment)?;
                            let r = engine.optimize(&mut tree, &config.optimize);
                            (tree, r.ln_likelihood, r.work.work_units())
                        }
                        TaskPayload::TreeEdit { base_id, edit } => {
                            self.score_edit_locally(base_id, &edit)?
                        }
                        TaskPayload::Jumble { .. } => continue,
                    };
                    results[i] = Some((tree, lnl, work));
                    received += 1;
                }
                Message::Abort { reason } => {
                    return Err(PhyloError::Format(format!("search aborted: {reason}")));
                }
                // Transport-synthesized liveness. A departed worker is the
                // foreman's problem; a (re)joined worker needs the problem
                // data before it can serve tasks.
                Message::PeerDown { .. } => {}
                Message::PeerUp { rank } => {
                    // Only workers hold problem data; a rejoining regional
                    // foreman must not be mistaken for one.
                    if rank >= self.first_worker {
                        let _ = self.transport.send(
                            rank,
                            &Message::ProblemData {
                                phylip: self.phylip.clone(),
                                config_json: self.config_json.clone(),
                            },
                        );
                    }
                }
                other => {
                    debug_assert!(false, "master got unexpected {}", other.kind());
                }
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("all received"))
            .collect())
    }

    fn base(&self) -> Result<&Tree, ExecutorError> {
        self.base.as_ref().ok_or(ExecutorError::NoBase)
    }

    fn announce_round(&mut self, candidates: usize, best_lnl: f64, best: &Tree) {
        self.round += 1;
        if self.has_monitor {
            let _ = self.transport.send(
                ranks::MONITOR,
                &Message::Monitor(MonitorEvent::RoundComplete {
                    round: self.round,
                    candidates,
                    best_ln_likelihood: best_lnl,
                    best_newick: newick::write_tree(best, &self.names),
                }),
            );
        }
    }
}

impl<T: Transport> RoundExecutor for ClusterExecutor<T> {
    fn set_base(&mut self, tree: Tree) -> Result<BaseOutcome, ExecutorError> {
        let text = newick::write_tree(&tree, &self.names);
        let mut results = self.dispatch_batch(vec![text])?;
        let (mut tree, lnl, work) = results.pop().expect("one result");
        if self.incremental {
            // Broadcast the optimized base and re-parse the broadcast text
            // ourselves: the returned arena is then identical (by the
            // determinism of Newick parsing) to the one every worker
            // builds, so the node ids inside the edits the driver
            // enumerates on this tree are meaningful on every rank.
            let text = newick::write_tree(&tree, &self.names);
            self.base_id += 1;
            self.local_cache = None;
            self.transport
                .send(
                    ranks::FOREMAN,
                    &Message::BaseTopology {
                        base_id: self.base_id,
                        newick: text.clone(),
                    },
                )
                .map_err(|e| PhyloError::Format(format!("transport: {e}")))?;
            tree = newick::parse_tree_with_names(&text, &self.names)?;
            self.base_text = Some(text);
        }
        self.base = Some(tree.clone());
        self.base_lnl = lnl;
        Ok(BaseOutcome {
            tree,
            ln_likelihood: lnl,
            work_units: work,
        })
    }

    fn score_round(&mut self, moves: &[TreeMove]) -> Result<Vec<CandidateScore>, ExecutorError> {
        let results = if self.incremental {
            self.dispatch_edits(moves)?
        } else {
            let mut newicks = Vec::with_capacity(moves.len());
            for mv in moves {
                let mut cand = self.base()?.clone();
                apply_move(&mut cand, mv)?;
                newicks.push(newick::write_tree(&cand, &self.names));
            }
            self.dispatch_batch(newicks)?
        };
        let best = results
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(t, l, _)| (t.clone(), *l));
        if let Some((tree, lnl)) = best {
            self.announce_round(moves.len(), lnl, &tree);
        }
        Ok(results
            .into_iter()
            .map(|(_, lnl, work)| CandidateScore {
                ln_likelihood: lnl,
                work_units: work,
            })
            .collect())
    }

    fn commit(&mut self, mv: &TreeMove) -> Result<BaseOutcome, ExecutorError> {
        let mut tree = self.base()?.clone();
        apply_move(&mut tree, mv)?;
        self.set_base(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::argmax;
    use fdml_comm::threads::ThreadUniverse;
    use fdml_phylo::tree::Tree;
    use std::thread;

    /// A scripted foreman: answers every TreeTask, but holds results back
    /// and replies in REVERSE arrival order with recognizable likelihoods.
    fn reverse_order_foreman(
        end: fdml_comm::threads::ThreadTransport,
        expect_tasks: usize,
    ) -> thread::JoinHandle<()> {
        thread::spawn(move || {
            let mut pending: Vec<(u64, String)> = Vec::new();
            let mut served = 0usize;
            while served < expect_tasks {
                let (_, msg) = end.recv().unwrap();
                match msg {
                    Message::TreeTask { task, newick } => {
                        pending.push((task, newick));
                        // Batch boundary heuristic for the test: reply once
                        // per message when a single task is outstanding
                        // (set_base), otherwise wait for the full round.
                        let batch = if served == 0 { 1 } else { expect_tasks - 1 };
                        if pending.len() == batch {
                            for (task, newick) in pending.drain(..).rev() {
                                end.send(
                                    ranks::MASTER,
                                    &Message::TreeResult {
                                        task,
                                        newick,
                                        // Encode the task id in the lnL so the
                                        // test can verify the mapping.
                                        ln_likelihood: -(task as f64) - 1.0,
                                        work_units: task + 1,
                                    },
                                )
                                .unwrap();
                                served += 1;
                            }
                        }
                    }
                    Message::Shutdown => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
        })
    }

    #[test]
    fn out_of_order_results_are_reordered_to_move_order() {
        let names: Vec<String> = (0..4).map(|i| format!("t{i}")).collect();
        let mut ends = ThreadUniverse::create(2);
        let foreman_end = ends.remove(1);
        let master_end = ends.remove(0);
        // 1 set_base task + 3 insertion candidates.
        let foreman = reverse_order_foreman(foreman_end, 4);
        let mut ex = ClusterExecutor::new(
            master_end,
            names,
            String::new(), // no workers to broadcast to in this 2-rank world
            String::new(),
            false,
        );
        let base = ex.set_base(Tree::triplet(0, 1, 2)).unwrap();
        assert_eq!(base.ln_likelihood, -1.0); // task 0
        let moves = fdml_phylo::ops::enumerate_insertion_moves(&base.tree, 3);
        assert_eq!(moves.len(), 3);
        let scores = ex.score_round(&moves).unwrap();
        // Tasks 1, 2, 3 were answered in reverse order (3, 2, 1), but the
        // scores must land in submission order: lnL = -(task+1).
        let got: Vec<f64> = scores.iter().map(|s| s.ln_likelihood).collect();
        assert_eq!(got, vec![-2.0, -3.0, -4.0]);
        let works: Vec<u64> = scores.iter().map(|s| s.work_units).collect();
        assert_eq!(works, vec![2, 3, 4]);
        // Deterministic selection: argmax picks the first (task 1).
        assert_eq!(argmax(&scores), 0);
        ex.shutdown();
        foreman.join().unwrap();
    }

    fn problem() -> (Alignment, String, String) {
        let a = Alignment::from_strings(&[
            ("t0", "ACGTACGTACGTACGTACGT"),
            ("t1", "ACGTACGTACTTACGTACGA"),
            ("t2", "ACGAACGTACGTACGGAGGT"),
            ("t3", "TCGAACGGACGTACGGAGGA"),
        ])
        .unwrap();
        let config = SearchConfig::default();
        (
            a.clone(),
            fdml_phylo::phylip::write(&a),
            config.engine_config_json(),
        )
    }

    #[test]
    fn quarantined_task_is_evaluated_locally_and_matches_a_worker() {
        let (alignment, phylip_text, config_json) = problem();
        let names: Vec<String> = alignment.names().to_vec();
        let mut ends = ThreadUniverse::create(2);
        let foreman_end = ends.remove(1);
        let master_end = ends.remove(0);
        // A foreman that gives up on every task: each TreeTask bounces
        // straight back as Quarantined, forcing the local-eval path.
        let foreman = thread::spawn(move || loop {
            let (_, msg) = foreman_end.recv().unwrap();
            match msg {
                Message::TreeTask { task, newick } => {
                    foreman_end
                        .send(
                            ranks::MASTER,
                            &Message::Quarantined {
                                task,
                                failures: 3,
                                payload: TaskPayload::Tree { newick },
                            },
                        )
                        .unwrap();
                }
                Message::Shutdown => break,
                other => panic!("unexpected {other:?}"),
            }
        });
        let mut ex = ClusterExecutor::new(
            master_end,
            names,
            phylip_text.clone(),
            config_json.clone(),
            false,
        );
        let base = ex.set_base(Tree::triplet(0, 1, 2)).unwrap();
        assert!(base.ln_likelihood.is_finite() && base.ln_likelihood < 0.0);
        ex.shutdown();
        foreman.join().unwrap();

        // Byte-identical to what a healthy worker (same engine, same
        // optimizer) computes for the same tree.
        let config = SearchConfig::from_engine_config_json(&config_json).unwrap();
        let engine = config.build_engine(&alignment);
        let mut tree = Tree::triplet(0, 1, 2);
        let r = engine.optimize(&mut tree, &config.optimize);
        assert_eq!(base.ln_likelihood.to_bits(), r.ln_likelihood.to_bits());
        assert_eq!(base.work_units, r.work.work_units());
    }

    #[test]
    fn foreman_abort_surfaces_as_typed_error() {
        let names: Vec<String> = (0..3).map(|i| format!("t{i}")).collect();
        let mut ends = ThreadUniverse::create(2);
        let foreman_end = ends.remove(1);
        let master_end = ends.remove(0);
        let foreman = thread::spawn(move || {
            let (_, msg) = foreman_end.recv().unwrap();
            assert!(matches!(msg, Message::TreeTask { .. }));
            foreman_end
                .send(
                    ranks::MASTER,
                    &Message::Abort {
                        reason: "all 3 workers dead".into(),
                    },
                )
                .unwrap();
            // Absorb the shutdown that follows the error.
            let (_, msg) = foreman_end.recv().unwrap();
            assert_eq!(msg, Message::Shutdown);
        });
        let mut ex = ClusterExecutor::new(master_end, names, String::new(), String::new(), false);
        let err = ex.set_base(Tree::triplet(0, 1, 2)).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("aborted"), "got: {text}");
        assert!(text.contains("workers dead"), "got: {text}");
        ex.shutdown();
        foreman.join().unwrap();
    }
}
