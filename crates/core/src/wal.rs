//! The write-ahead round log: coordinator crash tolerance at round
//! granularity.
//!
//! A checkpoint captures the search only at taxon-addition boundaries; a
//! long rearrangement phase between two boundaries is lost when the
//! coordinator dies. The WAL closes that gap: after every *committed*
//! round the search appends one [`WalRound`] — the verify ladder it
//! walked (each tentatively committed move, in order), whether the last
//! one was accepted, and the round-end log-likelihood — to a CRC32-framed
//! log (see [`crate::durable`]). Resume replays the records by repeating
//! the exact executor-call sequence (commit, revert, commit, …) while
//! skipping candidate *scoring* entirely, which is where virtually all
//! the compute lives. Because the executors are deterministic and the
//! replayed calls are the very calls the original run made, the resumed
//! search's state — down to optimized branch lengths — is bit-identical
//! to the uninterrupted run, and so is its final Newick.
//!
//! Records are appended *after* the round commits: a crash between commit
//! and append merely re-runs that round live on resume, deterministically
//! reproducing it. The log is therefore always a prefix of the round
//! sequence, and any torn tail is dropped by the durable layer's
//! truncate-to-valid recovery.
//!
//! One WAL file per (job, jumble seed) lives under `--wal-dir`; on jumble
//! completion the farm retires the file (the result is in the manifest or
//! checkpoint by then), keeping the directory bounded.

use crate::durable::{self, LogWriter};
use fdml_obs::{Event, Obs};
use fdml_phylo::ops::TreeMove;
use fdml_phylo::tree::NodeId;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::io;
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// Which phase of the search a WAL round belongs to. Mirrors
/// [`crate::trace::RoundKind`] but is its own type so the on-disk format
/// is decoupled from the trace format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalPhase {
    /// A taxon-addition round (paper step 3).
    Addition,
    /// A local rearrangement round after an addition (step 4).
    Rearrange,
    /// A final-phase rearrangement round (step 5).
    Final,
}

/// A [`TreeMove`] in WAL form: raw ids, serializable, re-appliable to any
/// structurally identical clone of its base tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalMove {
    /// Insert `taxon` into the edge `a`–`b`.
    Ins {
        /// Taxon id being inserted.
        taxon: u32,
        /// First endpoint of the target edge.
        a: u32,
        /// Second endpoint of the target edge.
        b: u32,
    },
    /// Prune at `root`–`attachment`, regraft into `ta`–`tb`.
    Spr {
        /// Root node of the pruned subtree.
        root: u32,
        /// The internal node dissolved by the prune.
        attachment: u32,
        /// First endpoint of the regraft edge.
        ta: u32,
        /// Second endpoint of the regraft edge.
        tb: u32,
    },
}

impl WalMove {
    /// Capture a search move.
    pub fn from_move(mv: &TreeMove) -> WalMove {
        match *mv {
            TreeMove::Insertion { taxon, at } => WalMove::Ins {
                taxon,
                a: at.0 .0,
                b: at.1 .0,
            },
            TreeMove::Spr {
                root,
                attachment,
                target,
            } => WalMove::Spr {
                root: root.0,
                attachment: attachment.0,
                ta: target.0 .0,
                tb: target.1 .0,
            },
        }
    }

    /// Reconstruct the search move.
    pub fn to_move(self) -> TreeMove {
        match self {
            WalMove::Ins { taxon, a, b } => TreeMove::Insertion {
                taxon,
                at: (NodeId(a), NodeId(b)),
            },
            WalMove::Spr {
                root,
                attachment,
                ta,
                tb,
            } => TreeMove::Spr {
                root: NodeId(root),
                attachment: NodeId(attachment),
                target: (NodeId(ta), NodeId(tb)),
            },
        }
    }
}

/// One committed round: everything needed to repeat its executor calls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRound {
    /// 0-based position in the round sequence (dedup key when records
    /// stream over the wire from possibly-duplicated workers).
    pub index: u64,
    /// Which search phase the round ran in.
    pub phase: WalPhase,
    /// The verify ladder: each move tentatively committed, in order. For
    /// an addition round this is the single chosen insertion. May be
    /// empty for a fruitless rearrangement round whose best candidate
    /// fell below the verify threshold.
    pub tried: Vec<WalMove>,
    /// Whether the *last* entry of `tried` was accepted as the new base
    /// (`false`: every tentative commit was reverted).
    pub accepted: bool,
    /// Bit pattern of the round-end log-likelihood — the replay
    /// divergence guard: a replayed round must land on exactly these
    /// bits or resume aborts rather than silently drift.
    pub lnl_bits: u64,
}

impl WalRound {
    /// Serialize for a log record or a wire message.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("wal round serializes")
    }

    /// Parse a log record or wire payload.
    pub fn from_json(text: &str) -> Result<WalRound, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// The first record of every WAL file: identifies the search so resume
/// can refuse a mismatched log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalStart {
    /// The jumble seed of the search this log belongs to.
    pub jumble_seed: u64,
    /// Taxon count of the search.
    pub num_taxa: usize,
}

/// A record in the log: the opening [`WalStart`] or a committed round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// First record of the file.
    Start(WalStart),
    /// One committed round.
    Round(WalRound),
}

/// Everything recovered from an existing WAL file.
#[derive(Debug, Clone, PartialEq)]
pub struct WalState {
    /// The identifying header.
    pub start: WalStart,
    /// The committed rounds, in order, re-indexed contiguously.
    pub rounds: Vec<WalRound>,
    /// Bytes dropped from a torn/corrupt tail (0 on a clean log).
    pub dropped_bytes: u64,
}

/// Path of the WAL for `seed` under `dir`, optionally namespaced by a
/// serve-job id (`job == 0` means "no job": the plain farm and serial
/// paths; registry job ids start at 1).
pub fn wal_path(dir: &Path, job: u64, seed: u64) -> PathBuf {
    if job == 0 {
        dir.join(format!("jumble-{seed}.wal"))
    } else {
        dir.join(format!("job-{job}-jumble-{seed}.wal"))
    }
}

/// Load and validate the WAL for `(job, seed)` under `dir`. `Ok(None)`
/// when no log exists or the log holds no usable header (a fresh run).
/// Records after a valid header are re-indexed from 0 — gaps cannot
/// occur because appends are index-gated, but a recovered prefix is
/// renumbered defensively.
pub fn load(dir: &Path, job: u64, seed: u64) -> io::Result<Option<WalState>> {
    let path = wal_path(dir, job, seed);
    let recovered = match durable::read_log(&path)? {
        Some(r) => r,
        None => return Ok(None),
    };
    let parse = |raw: &[u8]| -> Option<WalRecord> {
        let text = std::str::from_utf8(raw).ok()?;
        serde_json::from_str::<WalRecord>(text).ok()
    };
    let mut records = recovered.records.iter();
    let start = match records.next() {
        Some(first) => match parse(first) {
            Some(WalRecord::Start(s)) => s,
            _ => return Ok(None),
        },
        None => return Ok(None),
    };
    let mut rounds = Vec::new();
    for raw in records {
        match parse(raw) {
            Some(WalRecord::Round(r)) => rounds.push(r),
            // A record that framed correctly but does not parse is
            // treated like a torn tail: stop at the last good one.
            _ => break,
        }
    }
    for (i, r) in rounds.iter_mut().enumerate() {
        r.index = i as u64;
    }
    Ok(Some(WalState {
        start,
        rounds,
        dropped_bytes: recovered.dropped_bytes,
    }))
}

/// Delete the WAL for `(job, seed)` — called when the jumble's result has
/// been durably recorded elsewhere (manifest, checkpoint, or registry).
/// Missing file is fine (the jumble may have run WAL-less or pre-crash).
pub fn retire(dir: &Path, job: u64, seed: u64) -> io::Result<()> {
    match std::fs::remove_file(wal_path(dir, job, seed)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Append-side handle for one jumble's WAL: index-gated, duplicate-safe.
#[derive(Debug)]
pub struct WalWriter {
    log: LogWriter,
    next_index: u64,
}

impl WalWriter {
    /// Create a fresh WAL (truncating any unusable previous file) and
    /// durably write the [`WalStart`] header.
    pub fn create(dir: &Path, job: u64, seed: u64, num_taxa: usize) -> io::Result<WalWriter> {
        std::fs::create_dir_all(dir)?;
        let path = wal_path(dir, job, seed);
        let mut log = LogWriter::create(&path)?;
        let start = WalRecord::Start(WalStart {
            jumble_seed: seed,
            num_taxa,
        });
        log.append(
            serde_json::to_string(&start)
                .expect("wal start serializes")
                .as_bytes(),
        )?;
        Ok(WalWriter { log, next_index: 0 })
    }

    /// Open for appending after [`load`] recovered `state` from the same
    /// path: truncates any torn tail and continues at the next index.
    pub fn resume(dir: &Path, job: u64, seed: u64, state: &WalState) -> io::Result<WalWriter> {
        let path = wal_path(dir, job, seed);
        let (log, recovered) = LogWriter::resume(&path)?;
        // `load` may have stopped early on an unparseable framed record;
        // only the rounds it accepted count toward the index.
        debug_assert!(recovered.records.len() > state.rounds.len());
        Ok(WalWriter {
            log,
            next_index: state.rounds.len() as u64,
        })
    }

    /// Append one committed round if `round.index` is the exact next
    /// index. Returns `Ok(Some(bytes))` when appended, `Ok(None)` when
    /// the record is a duplicate (index below next — e.g. a restarted
    /// worker re-streaming a prefix the coordinator already has). An
    /// index *above* next is a protocol violation: records would be
    /// missing in between.
    pub fn append(&mut self, round: &WalRound) -> io::Result<Option<u64>> {
        if round.index < self.next_index {
            return Ok(None);
        }
        if round.index > self.next_index {
            return Err(io::Error::other(format!(
                "wal gap: got round index {} but next is {}",
                round.index, self.next_index
            )));
        }
        let rec = WalRecord::Round(round.clone());
        let bytes = self.log.append(
            serde_json::to_string(&rec)
                .expect("wal round serializes")
                .as_bytes(),
        )?;
        self.next_index += 1;
        Ok(Some(bytes))
    }

    /// The index the next appended round must carry.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Total bytes in the log file.
    pub fn len_bytes(&self) -> u64 {
        self.log.len_bytes()
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        self.log.path()
    }
}

/// One coordinator-side WAL attachment for an in-process search: recover
/// the log (or start one), hand the committed prefix to
/// `StepwiseSearch::resume_from_wal`, append each newly committed round
/// via [`WalSession::hook`], and surface any deferred append error when
/// the run is over. The hook's I/O error cannot abort the search from
/// inside the callback (it returns unit by design), so the session
/// captures the first failure and [`WalSession::finish`] re-raises it —
/// a silently unreported round would shrink the crash-tolerance window
/// without anyone noticing.
pub struct WalSession {
    shared: Rc<RefCell<SessionShared>>,
    rounds: Option<Vec<WalRound>>,
}

struct SessionShared {
    writer: WalWriter,
    error: Option<io::Error>,
    obs: Obs,
    job: u64,
    seed: u64,
}

impl WalSession {
    /// Recover (or start) the WAL for `(job, seed)` under `dir`, emitting
    /// [`Event::WalReplay`] when a committed prefix was found.
    pub fn open(
        dir: &Path,
        job: u64,
        seed: u64,
        num_taxa: usize,
        obs: &Obs,
    ) -> io::Result<WalSession> {
        let (rounds, writer) = match load(dir, job, seed)? {
            Some(state) => {
                let writer = WalWriter::resume(dir, job, seed, &state)?;
                (state.rounds, writer)
            }
            None => (Vec::new(), WalWriter::create(dir, job, seed, num_taxa)?),
        };
        if !rounds.is_empty() {
            let replayed = rounds.len() as u64;
            obs.emit(|| Event::WalReplay {
                job,
                seed,
                rounds: replayed,
            });
        }
        Ok(WalSession {
            shared: Rc::new(RefCell::new(SessionShared {
                writer,
                error: None,
                obs: obs.clone(),
                job,
                seed,
            })),
            rounds: Some(rounds),
        })
    }

    /// The recovered committed prefix, for `resume_from_wal`. Empty after
    /// the first call (and on a fresh log).
    pub fn take_rounds(&mut self) -> Vec<WalRound> {
        self.rounds.take().unwrap_or_default()
    }

    /// The append callback for `StepwiseSearch::on_wal`: index-gated
    /// append plus an [`Event::WalAppend`] per durable record. After the
    /// first I/O error the hook goes quiet (the search finishes, the
    /// error surfaces in [`WalSession::finish`]).
    pub fn hook(&self) -> impl FnMut(&WalRound) {
        let shared = Rc::clone(&self.shared);
        move |round| {
            let mut s = shared.borrow_mut();
            if s.error.is_some() {
                return;
            }
            match s.writer.append(round) {
                Ok(Some(bytes)) => {
                    let (job, seed, index) = (s.job, s.seed, round.index);
                    s.obs.emit(|| Event::WalAppend {
                        job,
                        seed,
                        index,
                        bytes,
                    });
                }
                Ok(None) => {}
                Err(e) => s.error = Some(e),
            }
        }
    }

    /// Re-raise the first append error captured during the run, if any.
    pub fn finish(self) -> io::Result<()> {
        match self.shared.borrow_mut().error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// [`WalSession::finish`], then delete the log — for a search that
    /// completed and delivered its result: the WAL has nothing left to
    /// protect, and retiring it keeps `--wal-dir` bounded.
    pub fn finish_and_retire(self) -> io::Result<()> {
        let path = self.shared.borrow().writer.path().to_path_buf();
        self.finish()?;
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fdml-wal-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn round(index: u64, accepted: bool) -> WalRound {
        WalRound {
            index,
            phase: WalPhase::Rearrange,
            tried: vec![
                WalMove::Spr {
                    root: 4,
                    attachment: 9,
                    ta: 1,
                    tb: 2,
                },
                WalMove::Ins {
                    taxon: 3,
                    a: 0,
                    b: 7,
                },
            ],
            accepted,
            lnl_bits: (-1234.5f64).to_bits() ^ index,
        }
    }

    #[test]
    fn moves_roundtrip_through_wal_form() {
        let ins = TreeMove::Insertion {
            taxon: 5,
            at: (NodeId(2), NodeId(9)),
        };
        let spr = TreeMove::Spr {
            root: NodeId(1),
            attachment: NodeId(3),
            target: (NodeId(4), NodeId(8)),
        };
        assert_eq!(WalMove::from_move(&ins).to_move(), ins);
        assert_eq!(WalMove::from_move(&spr).to_move(), spr);
    }

    #[test]
    fn create_append_load_roundtrip() {
        let dir = scratch_dir();
        let mut w = WalWriter::create(&dir, 0, 7, 6).unwrap();
        for i in 0..4 {
            assert!(w.append(&round(i, i != 3)).unwrap().is_some());
        }
        drop(w);
        let state = load(&dir, 0, 7).unwrap().unwrap();
        assert_eq!(state.start.jumble_seed, 7);
        assert_eq!(state.start.num_taxa, 6);
        assert_eq!(state.rounds.len(), 4);
        assert_eq!(state.rounds[3], round(3, false));
        assert_eq!(state.dropped_bytes, 0);
        // Unrelated (job, seed) pairs see nothing.
        assert!(load(&dir, 0, 8).unwrap().is_none());
        assert!(load(&dir, 3, 7).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn job_namespacing_separates_files() {
        let dir = scratch_dir();
        let mut a = WalWriter::create(&dir, 1, 7, 6).unwrap();
        let mut b = WalWriter::create(&dir, 2, 7, 6).unwrap();
        a.append(&round(0, true)).unwrap();
        b.append(&round(0, true)).unwrap();
        b.append(&round(1, true)).unwrap();
        assert_eq!(load(&dir, 1, 7).unwrap().unwrap().rounds.len(), 1);
        assert_eq!(load(&dir, 2, 7).unwrap().unwrap().rounds.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_indices_are_ignored_and_gaps_rejected() {
        let dir = scratch_dir();
        let mut w = WalWriter::create(&dir, 0, 3, 6).unwrap();
        assert!(w.append(&round(0, true)).unwrap().is_some());
        assert!(w.append(&round(1, true)).unwrap().is_some());
        // A restarted worker re-streams from 0: silently deduplicated.
        assert!(w.append(&round(0, true)).unwrap().is_none());
        assert!(w.append(&round(1, true)).unwrap().is_none());
        assert_eq!(w.next_index(), 2);
        // Skipping ahead means lost records: hard error.
        assert!(w.append(&round(5, true)).is_err());
        drop(w);
        assert_eq!(load(&dir, 0, 3).unwrap().unwrap().rounds.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_continues_after_torn_tail() {
        let dir = scratch_dir();
        let mut w = WalWriter::create(&dir, 0, 9, 6).unwrap();
        w.append(&round(0, true)).unwrap();
        w.append(&round(1, true)).unwrap();
        drop(w);
        // Tear the file mid-record.
        let path = wal_path(&dir, 0, 9);
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() - 3]).unwrap();
        let state = load(&dir, 0, 9).unwrap().unwrap();
        assert_eq!(state.rounds.len(), 1);
        assert!(state.dropped_bytes > 0);
        let mut w = WalWriter::resume(&dir, 0, 9, &state).unwrap();
        assert_eq!(w.next_index(), 1);
        w.append(&round(1, false)).unwrap();
        drop(w);
        let state = load(&dir, 0, 9).unwrap().unwrap();
        assert_eq!(state.rounds.len(), 2);
        assert!(!state.rounds[1].accepted);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retire_deletes_and_tolerates_missing() {
        let dir = scratch_dir();
        let w = WalWriter::create(&dir, 0, 5, 6).unwrap();
        drop(w);
        assert!(wal_path(&dir, 0, 5).exists());
        retire(&dir, 0, 5).unwrap();
        assert!(!wal_path(&dir, 0, 5).exists());
        retire(&dir, 0, 5).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }
}
