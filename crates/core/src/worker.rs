//! The worker process (paper §2.2): "calculate branch lengths for a tree
//! topology and the likelihood value for the tree. The worker processes
//! communicate only with the foreman process."
//!
//! In service mode ([`crate::netrun`] peers attached to an `fdml-serve`
//! daemon) a worker serves several jobs at once: each
//! [`Message::JobData`] broadcast installs one engine per job id, and
//! job-tagged jumbles ([`Message::JobTask`]) from concurrent jobs
//! interleave freely on the same rank.

use crate::config::SearchConfig;
use crate::edits::edit_to_move;
use crate::wal::WalRound;
use fdml_comm::job::JobId;
use fdml_comm::message::Message;
use fdml_comm::transport::{CommError, Transport};
use fdml_likelihood::engine::LikelihoodEngine;
use fdml_likelihood::incremental::ClvCache;
use fdml_obs::{Event, Obs};
use fdml_phylo::alignment::Alignment;
use fdml_phylo::{newick, phylip};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

// The rank convention now lives with the transport layer; re-exported here
// because the runtime modules historically imported it from `worker`.
pub use fdml_comm::transport::ranks;

/// Summary statistics a worker returns when it shuts down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Trees this worker evaluated.
    pub trees_evaluated: u64,
    /// Total work units expended.
    pub work_units: u64,
}

/// Errors terminating a worker abnormally.
#[derive(Debug)]
pub enum WorkerError {
    /// Transport failure.
    Comm(CommError),
    /// Malformed problem data or tree.
    Protocol(String),
}

impl From<CommError> for WorkerError {
    fn from(e: CommError) -> WorkerError {
        WorkerError::Comm(e)
    }
}

/// One job's cached problem: the parsed alignment, the engine built from
/// it, and the search controls.
struct Problem {
    alignment: Alignment,
    engine: LikelihoodEngine,
    config: SearchConfig,
}

impl Problem {
    fn build(phylip_text: &str, config_json: &str) -> Result<Problem, WorkerError> {
        let alignment = phylip::parse(phylip_text)
            .map_err(|e| WorkerError::Protocol(format!("bad alignment: {e}")))?;
        let config = SearchConfig::from_engine_config_json(config_json)
            .map_err(|e| WorkerError::Protocol(format!("bad config: {e}")))?;
        let engine = config.build_engine(&alignment);
        Ok(Problem {
            alignment,
            engine,
            config,
        })
    }
}

/// Send a message up to the worker's current foreman, tolerating a dead
/// link. In the hierarchical topology a worker's regional foreman can die
/// while the worker computes; the root reclaims the lost lease (so an
/// undelivered result's task is re-dispatched elsewhere) and re-homes the
/// worker with a [`Message::Rehome`] — exiting here would turn a healable
/// failure into a lost worker.
fn send_up<T: Transport>(transport: &T, foreman: usize, msg: &Message) -> Result<(), WorkerError> {
    match transport.send(foreman, msg) {
        Err(CommError::Disconnected(_)) => Ok(()),
        other => other.map_err(WorkerError::from),
    }
}

/// Run the worker event loop until `Shutdown`. Pass [`Obs::disabled`] to
/// run unobserved; otherwise each evaluated tree emits an
/// [`Event::WorkerTaskDone`] carrying the time spent inside likelihood
/// optimization (compute only — queueing and transport excluded).
///
/// The worker reports to rank [`ranks::FOREMAN`] — the flat topology of
/// the paper. Hierarchical fleets home workers onto regional foremen via
/// [`run_worker_homed`].
pub fn run_worker<T: Transport>(transport: T, obs: Obs) -> Result<WorkerStats, WorkerError> {
    run_worker_homed(transport, ranks::FOREMAN, obs)
}

/// [`run_worker`] with an explicit home foreman rank: the worker announces
/// to `home` and sends every result there, until a [`Message::Rehome`]
/// moves it to a different foreman (the self-healing path when a regional
/// foreman dies).
pub fn run_worker_homed<T: Transport>(
    transport: T,
    home: usize,
    obs: Obs,
) -> Result<WorkerStats, WorkerError> {
    let mut foreman = home;
    let mut state: Option<Problem> = None;
    let mut jobs: HashMap<JobId, Problem> = HashMap::new();
    // Incremental evaluation state: the raw text of the round's base
    // broadcast, and the CLV cache lazily indexed from it on the first
    // edit task of the round.
    let mut base_text: Option<(u64, String)> = None;
    let mut cache: Option<(u64, ClvCache)> = None;
    let mut stats = WorkerStats::default();
    // Messages unpacked from a `Batch` frame, served before the transport
    // is polled again so batched tasks keep their dispatch order.
    let mut pending: VecDeque<Message> = VecDeque::new();
    loop {
        let msg = match pending.pop_front() {
            Some(msg) => msg,
            None => transport.recv()?.1,
        };
        match msg {
            Message::Batch { msgs } => {
                // One frame, many messages (e.g. a job's data + its task):
                // unpack in order and serve them as if sent individually.
                pending.extend(msgs);
            }
            Message::Rehome { foreman: new_home } => {
                // The root moved us to a sibling region after our foreman
                // died. Announce to the new foreman; it replies with the
                // current base broadcast if one is live.
                foreman = new_home;
                send_up(&transport, foreman, &Message::WorkerReady)?;
            }
            Message::ProblemData {
                phylip,
                config_json,
            } => {
                state = Some(Problem::build(&phylip, &config_json)?);
                // A new problem invalidates any base of the old one.
                base_text = None;
                cache = None;
                send_up(&transport, foreman, &Message::WorkerReady)?;
            }
            Message::JobData {
                job,
                phylip,
                config_json,
            } => {
                // Per-job data in a multi-tenant fleet. No WorkerReady
                // reply: the scheduler pairs this with the JobTask that
                // needs it, and readiness is tracked per rank, not per
                // job.
                jobs.insert(job, Problem::build(&phylip, &config_json)?);
            }
            Message::TreeTask { task, newick: text } => {
                let p = state
                    .as_ref()
                    .ok_or_else(|| WorkerError::Protocol("task before problem data".into()))?;
                let mut tree = newick::parse_tree(&text, &p.alignment)
                    .map_err(|e| WorkerError::Protocol(format!("bad tree: {e}")))?;
                let started = Instant::now();
                let result = p.engine.optimize(&mut tree, &p.config.optimize);
                let busy_us = started.elapsed().as_micros() as u64;
                stats.trees_evaluated += 1;
                stats.work_units += result.work.work_units();
                obs.emit(|| Event::WorkerTaskDone {
                    worker: transport.rank(),
                    task,
                    busy_us,
                    work_units: result.work.work_units(),
                    pattern_updates: result.work.total_pattern_updates(),
                });
                send_up(
                    &transport,
                    foreman,
                    &Message::TreeResult {
                        task,
                        newick: newick::write_tree(&tree, p.alignment.names()),
                        ln_likelihood: result.ln_likelihood,
                        work_units: result.work.work_units(),
                    },
                )?;
            }
            Message::BaseTopology { base_id, newick } => {
                // The round's base tree. Parsing and CLV indexing are
                // deferred to the first edit task, so a worker that never
                // receives an edit pays nothing.
                base_text = Some((base_id, newick));
                cache = None;
            }
            Message::TreeEditTask {
                task,
                base_id,
                edit,
                base_newick,
            } => {
                let p = state
                    .as_ref()
                    .ok_or_else(|| WorkerError::Protocol("edit task before problem data".into()))?;
                // Fallback ladder, bottom rung local to the worker: a
                // self-contained dispatch carries the base text; install
                // it when the broadcast was missed (fresh respawn). An
                // edit for an unknown base with no embedded text is a
                // protocol error — the supervisor respawns the worker and
                // the foreman requeues the task self-contained.
                let mut fallbacks = 0u64;
                if base_text.as_ref().map(|(id, _)| *id) != Some(base_id) {
                    let text = base_newick.ok_or_else(|| {
                        WorkerError::Protocol(format!(
                            "edit task {task} for unknown base {base_id}"
                        ))
                    })?;
                    base_text = Some((base_id, text));
                    cache = None;
                    fallbacks = 1;
                }
                let started = Instant::now();
                if cache.as_ref().map(|(id, _)| *id) != Some(base_id) {
                    let (_, text) = base_text.as_ref().expect("just ensured");
                    let base = newick::parse_tree(text, &p.alignment)
                        .map_err(|e| WorkerError::Protocol(format!("bad base tree: {e}")))?;
                    cache = Some((base_id, ClvCache::build(&p.engine, base)));
                }
                let (_, c) = cache.as_mut().expect("just built");
                let mv = edit_to_move(&edit);
                let score = c
                    .score_edit(&p.engine, &mv, &p.config.optimize)
                    .map_err(|e| WorkerError::Protocol(format!("edit task {task}: {e}")))?;
                let cand = c
                    .materialize(&mv, &score)
                    .map_err(|e| WorkerError::Protocol(format!("edit task {task}: {e}")))?;
                let busy_us = started.elapsed().as_micros() as u64;
                let work_units = score.work.work_units();
                stats.trees_evaluated += 1;
                stats.work_units += work_units;
                obs.emit(|| Event::WorkerTaskDone {
                    worker: transport.rank(),
                    task,
                    busy_us,
                    work_units,
                    pattern_updates: score.work.total_pattern_updates(),
                });
                obs.emit(|| Event::IncrementalEdit {
                    worker: transport.rank(),
                    cache_hits: score.cache_hits,
                    edges_recomputed: score.edges_recomputed,
                    fallbacks,
                });
                send_up(
                    &transport,
                    foreman,
                    &Message::TreeResult {
                        task,
                        newick: newick::write_tree(&cand, p.alignment.names()),
                        ln_likelihood: score.ln_likelihood,
                        work_units,
                    },
                )?;
            }
            Message::JumbleTask { task, seed } => {
                let p = state
                    .as_ref()
                    .ok_or_else(|| WorkerError::Protocol("jumble before problem data".into()))?;
                let started = Instant::now();
                let result = crate::farm::run_one_jumble(&p.engine, &p.alignment, &p.config, seed)
                    .map_err(|e| WorkerError::Protocol(format!("jumble {seed}: {e}")))?;
                let busy_us = started.elapsed().as_micros() as u64;
                stats.trees_evaluated += 1;
                stats.work_units += result.work_units;
                obs.emit(|| Event::WorkerTaskDone {
                    worker: transport.rank(),
                    task,
                    busy_us,
                    work_units: result.work_units,
                    pattern_updates: 0,
                });
                send_up(
                    &transport,
                    foreman,
                    &Message::JumbleResult {
                        task,
                        seed,
                        newick: newick::write_tree(&result.tree, p.alignment.names()),
                        ln_likelihood: result.ln_likelihood,
                        rounds: result.rounds as u64,
                        candidates: result.candidates_evaluated as u64,
                        work_units: result.work_units,
                    },
                )?;
            }
            Message::JumbleResume {
                job,
                task,
                seed,
                wal,
            } => {
                // A WAL-aware jumble: replay the committed prefix the
                // coordinator carried inline, then run live, streaming each
                // newly committed round back so the coordinator's log stays
                // one round behind the search at most. `job` doubles as the
                // reply selector: 0 is the anonymous farm (JumbleResult),
                // anything else a daemon job (JobTaskResult).
                let p = if job == 0 {
                    state.as_ref().ok_or_else(|| {
                        WorkerError::Protocol("jumble resume before problem data".into())
                    })?
                } else {
                    jobs.get(&job).ok_or_else(|| {
                        WorkerError::Protocol(format!("job {job} resume before its JobData"))
                    })?
                };
                let mut rounds = Vec::with_capacity(wal.len());
                for entry in &wal {
                    rounds.push(WalRound::from_json(entry).map_err(|e| {
                        WorkerError::Protocol(format!("jumble {seed}: bad wal entry: {e}"))
                    })?);
                }
                let started = Instant::now();
                let result = crate::farm::run_one_jumble_wal(
                    &p.engine,
                    &p.alignment,
                    &p.config,
                    seed,
                    rounds,
                    |round| {
                        // Best-effort: a lost round merely re-runs live on
                        // the coordinator's next resume.
                        let _ = send_up(
                            &transport,
                            foreman,
                            &Message::WalRound {
                                job,
                                seed,
                                index: round.index,
                                entry: round.to_json(),
                            },
                        );
                    },
                )
                .map_err(|e| WorkerError::Protocol(format!("jumble {seed}: {e}")))?;
                let busy_us = started.elapsed().as_micros() as u64;
                stats.trees_evaluated += 1;
                stats.work_units += result.work_units;
                obs.emit(|| Event::WorkerTaskDone {
                    worker: transport.rank(),
                    task,
                    busy_us,
                    work_units: result.work_units,
                    pattern_updates: 0,
                });
                let newick = newick::write_tree(&result.tree, p.alignment.names());
                let reply = if job == 0 {
                    Message::JumbleResult {
                        task,
                        seed,
                        newick,
                        ln_likelihood: result.ln_likelihood,
                        rounds: result.rounds as u64,
                        candidates: result.candidates_evaluated as u64,
                        work_units: result.work_units,
                    }
                } else {
                    Message::JobTaskResult {
                        job,
                        task,
                        seed,
                        newick,
                        ln_likelihood: result.ln_likelihood,
                        work_units: result.work_units,
                    }
                };
                send_up(&transport, foreman, &reply)?;
            }
            Message::JobTask { job, task, seed } => {
                let p = jobs.get(&job).ok_or_else(|| {
                    WorkerError::Protocol(format!("job {job} task before its JobData"))
                })?;
                let started = Instant::now();
                let result = crate::farm::run_one_jumble(&p.engine, &p.alignment, &p.config, seed)
                    .map_err(|e| WorkerError::Protocol(format!("job {job} jumble {seed}: {e}")))?;
                let busy_us = started.elapsed().as_micros() as u64;
                stats.trees_evaluated += 1;
                stats.work_units += result.work_units;
                obs.emit(|| Event::WorkerTaskDone {
                    worker: transport.rank(),
                    task,
                    busy_us,
                    work_units: result.work_units,
                    pattern_updates: 0,
                });
                send_up(
                    &transport,
                    foreman,
                    &Message::JobTaskResult {
                        job,
                        task,
                        seed,
                        newick: newick::write_tree(&result.tree, p.alignment.names()),
                        ln_likelihood: result.ln_likelihood,
                        work_units: result.work_units,
                    },
                )?;
            }
            Message::JobRetire { job } => {
                // The scheduler finished or failed the job; drop its engine
                // so a long-lived shared-fleet worker does not accumulate
                // one alignment + likelihood state per job ever served.
                jobs.remove(&job);
            }
            Message::Ping => {
                // Foreman liveness probe: answering re-admits a worker
                // whose result was lost in flight and who would otherwise
                // idle forever as delinquent.
                send_up(&transport, foreman, &Message::WorkerReady)?;
            }
            Message::Shutdown => return Ok(stats),
            other => {
                return Err(WorkerError::Protocol(format!(
                    "unexpected message {}",
                    other.kind()
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_comm::message::TreeEdit;
    use fdml_comm::threads::ThreadUniverse;
    use std::thread;

    fn problem() -> (String, String) {
        let a = Alignment::from_strings(&[
            ("t0", "ACGTACGTACGT"),
            ("t1", "ACGTACGAACGT"),
            ("t2", "ACTTACGAACGA"),
        ])
        .unwrap();
        let config = SearchConfig::default();
        (phylip::write(&a), config.engine_config_json())
    }

    #[test]
    fn worker_evaluates_and_replies() {
        // Universe: 0 = this test acting as master+foreman, 3 = worker.
        let mut ends = ThreadUniverse::create(4);
        let worker_end = ends.remove(3);
        let foreman_end = ends.remove(1);
        let handle = thread::spawn(move || run_worker(worker_end, Obs::disabled()).unwrap());
        let (phylip_text, config_json) = problem();
        foreman_end
            .send(
                3,
                &Message::ProblemData {
                    phylip: phylip_text,
                    config_json,
                },
            )
            .unwrap();
        let (from, msg) = foreman_end.recv().unwrap();
        assert_eq!(from, 3);
        assert_eq!(msg, Message::WorkerReady);
        foreman_end
            .send(
                3,
                &Message::TreeTask {
                    task: 42,
                    newick: "(t0:0.1,t1:0.1,t2:0.1);".into(),
                },
            )
            .unwrap();
        let (_, msg) = foreman_end.recv().unwrap();
        match msg {
            Message::TreeResult {
                task,
                ln_likelihood,
                work_units,
                newick,
            } => {
                assert_eq!(task, 42);
                assert!(ln_likelihood.is_finite() && ln_likelihood < 0.0);
                assert!(work_units > 0);
                assert!(newick.contains("t0"));
            }
            other => panic!("unexpected {other:?}"),
        }
        foreman_end.send(3, &Message::Shutdown).unwrap();
        let stats = handle.join().unwrap();
        assert_eq!(stats.trees_evaluated, 1);
    }

    #[test]
    fn worker_scores_tree_edits_through_the_clv_cache() {
        use crate::edits::move_to_edit;
        use fdml_phylo::ops::enumerate_insertion_moves;
        let a = Alignment::from_strings(&[
            ("t0", "ACGTACGTACGT"),
            ("t1", "ACGTACGAACGT"),
            ("t2", "ACTTACGAACGA"),
            ("t3", "ACTTACGAACGT"),
        ])
        .unwrap();
        let phylip_text = phylip::write(&a);
        let config_json = SearchConfig::default().engine_config_json();
        let mut ends = ThreadUniverse::create(4);
        let worker_end = ends.remove(3);
        let foreman_end = ends.remove(1);
        let handle = thread::spawn(move || run_worker(worker_end, Obs::disabled()).unwrap());
        foreman_end
            .send(
                3,
                &Message::ProblemData {
                    phylip: phylip_text,
                    config_json,
                },
            )
            .unwrap();
        let (_, msg) = foreman_end.recv().unwrap();
        assert_eq!(msg, Message::WorkerReady);

        // The edit's node ids come from parsing the exact broadcast text —
        // the same deterministic arena the worker will build.
        let base_text = "(t0:0.1,t1:0.1,t2:0.1);".to_string();
        let base = newick::parse_tree(&base_text, &a).unwrap();
        let edit = move_to_edit(&enumerate_insertion_moves(&base, 3)[0]);

        // Broadcast path: the base arrives ahead of the compact edit.
        foreman_end
            .send(
                3,
                &Message::BaseTopology {
                    base_id: 1,
                    newick: base_text.clone(),
                },
            )
            .unwrap();
        foreman_end
            .send(
                3,
                &Message::TreeEditTask {
                    task: 1,
                    base_id: 1,
                    edit,
                    base_newick: None,
                },
            )
            .unwrap();
        let (_, msg) = foreman_end.recv().unwrap();
        let broadcast_lnl = match msg {
            Message::TreeResult {
                task,
                ln_likelihood,
                newick: cand,
                ..
            } => {
                assert_eq!(task, 1);
                assert!(ln_likelihood.is_finite() && ln_likelihood < 0.0);
                assert!(cand.contains("t3"), "candidate must gain the taxon: {cand}");
                ln_likelihood
            }
            other => panic!("unexpected {other:?}"),
        };

        // Self-contained path: a requeued edit for a base this worker never
        // saw broadcast carries its own text, and rescoring through the
        // rebuilt cache is bit-identical.
        foreman_end
            .send(
                3,
                &Message::TreeEditTask {
                    task: 2,
                    base_id: 2,
                    edit,
                    base_newick: Some(base_text),
                },
            )
            .unwrap();
        let (_, msg) = foreman_end.recv().unwrap();
        match msg {
            Message::TreeResult {
                task,
                ln_likelihood,
                ..
            } => {
                assert_eq!(task, 2);
                assert_eq!(
                    ln_likelihood.to_bits(),
                    broadcast_lnl.to_bits(),
                    "self-contained rescore must be bit-identical"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        foreman_end.send(3, &Message::Shutdown).unwrap();
        let stats = handle.join().unwrap();
        assert_eq!(stats.trees_evaluated, 2);
    }

    #[test]
    fn edit_for_unknown_base_without_text_is_a_protocol_error() {
        let mut ends = ThreadUniverse::create(4);
        let worker_end = ends.remove(3);
        let foreman_end = ends.remove(1);
        let handle = thread::spawn(move || run_worker(worker_end, Obs::disabled()));
        let (phylip_text, config_json) = problem();
        foreman_end
            .send(
                3,
                &Message::ProblemData {
                    phylip: phylip_text,
                    config_json,
                },
            )
            .unwrap();
        let (_, msg) = foreman_end.recv().unwrap();
        assert_eq!(msg, Message::WorkerReady);
        foreman_end
            .send(
                3,
                &Message::TreeEditTask {
                    task: 5,
                    base_id: 9,
                    edit: TreeEdit::Insert {
                        taxon: 0,
                        a: 0,
                        b: 1,
                    },
                    base_newick: None,
                },
            )
            .unwrap();
        let err = handle.join().unwrap().unwrap_err();
        assert!(format!("{err:?}").contains("unknown base"), "got: {err:?}");
    }

    #[test]
    fn worker_runs_a_whole_jumble() {
        let mut ends = ThreadUniverse::create(4);
        let worker_end = ends.remove(3);
        let foreman_end = ends.remove(1);
        let handle = thread::spawn(move || run_worker(worker_end, Obs::disabled()).unwrap());
        let (phylip_text, config_json) = problem();
        foreman_end
            .send(
                3,
                &Message::ProblemData {
                    phylip: phylip_text,
                    config_json,
                },
            )
            .unwrap();
        let (_, msg) = foreman_end.recv().unwrap();
        assert_eq!(msg, Message::WorkerReady);
        foreman_end
            .send(3, &Message::JumbleTask { task: 7, seed: 9 })
            .unwrap();
        let (_, msg) = foreman_end.recv().unwrap();
        match msg {
            Message::JumbleResult {
                task,
                seed,
                newick,
                ln_likelihood,
                candidates,
                ..
            } => {
                assert_eq!(task, 7);
                assert_eq!(seed, 9);
                assert!(ln_likelihood.is_finite() && ln_likelihood < 0.0);
                // Three taxa admit a single topology, so no candidate
                // rearrangements are evaluated.
                assert_eq!(candidates, 0);
                assert!(newick.contains("t0"));
            }
            other => panic!("unexpected {other:?}"),
        }
        foreman_end.send(3, &Message::Shutdown).unwrap();
        let stats = handle.join().unwrap();
        assert_eq!(stats.trees_evaluated, 1);
        assert!(stats.work_units > 0);
    }

    #[test]
    fn problem_data_can_be_rebroadcast() {
        // A new analysis re-broadcasts ProblemData; the worker rebuilds its
        // engine and keeps serving.
        let mut ends = ThreadUniverse::create(4);
        let worker_end = ends.remove(3);
        let foreman_end = ends.remove(1);
        let handle = thread::spawn(move || run_worker(worker_end, Obs::disabled()).unwrap());
        let (phylip_text, config_json) = problem();
        for _ in 0..2 {
            foreman_end
                .send(
                    3,
                    &Message::ProblemData {
                        phylip: phylip_text.clone(),
                        config_json: config_json.clone(),
                    },
                )
                .unwrap();
            let (_, msg) = foreman_end.recv().unwrap();
            assert_eq!(msg, Message::WorkerReady);
        }
        foreman_end
            .send(
                3,
                &Message::TreeTask {
                    task: 1,
                    newick: "(t0:0.1,t1:0.1,t2:0.1);".into(),
                },
            )
            .unwrap();
        let (_, msg) = foreman_end.recv().unwrap();
        assert!(matches!(msg, Message::TreeResult { task: 1, .. }));
        foreman_end.send(3, &Message::Shutdown).unwrap();
        let stats = handle.join().unwrap();
        assert_eq!(stats.trees_evaluated, 1);
    }

    #[test]
    fn task_before_data_is_protocol_error() {
        let mut ends = ThreadUniverse::create(4);
        let worker_end = ends.remove(3);
        let foreman_end = ends.remove(1);
        foreman_end
            .send(
                3,
                &Message::TreeTask {
                    task: 1,
                    newick: "(a,b,c);".into(),
                },
            )
            .unwrap();
        let err = run_worker(worker_end, Obs::disabled()).unwrap_err();
        assert!(matches!(err, WorkerError::Protocol(_)));
    }

    #[test]
    fn malformed_tree_is_protocol_error() {
        let mut ends = ThreadUniverse::create(4);
        let worker_end = ends.remove(3);
        let foreman_end = ends.remove(1);
        let (phylip_text, config_json) = problem();
        foreman_end
            .send(
                3,
                &Message::ProblemData {
                    phylip: phylip_text,
                    config_json,
                },
            )
            .unwrap();
        foreman_end
            .send(
                3,
                &Message::TreeTask {
                    task: 1,
                    newick: "not a tree".into(),
                },
            )
            .unwrap();
        let err = run_worker(worker_end, Obs::disabled()).unwrap_err();
        assert!(matches!(err, WorkerError::Protocol(_)));
    }

    #[test]
    fn concurrent_jobs_interleave_on_one_worker() {
        // Two jobs with different alignments; their tasks interleave and
        // each answer is tagged with its job id.
        let mut ends = ThreadUniverse::create(4);
        let worker_end = ends.remove(3);
        let foreman_end = ends.remove(1);
        let handle = thread::spawn(move || run_worker(worker_end, Obs::disabled()).unwrap());
        let (phylip_a, config_a) = problem();
        let b = Alignment::from_strings(&[
            ("x0", "AAGTACGTAGGT"),
            ("x1", "ACGTACTAACGT"),
            ("x2", "ACTTACGAACGA"),
            ("x3", "TCTTACGAACGA"),
        ])
        .unwrap();
        let config_b = SearchConfig::default();
        foreman_end
            .send(
                3,
                &Message::JobData {
                    job: 1,
                    phylip: phylip_a,
                    config_json: config_a,
                },
            )
            .unwrap();
        foreman_end
            .send(
                3,
                &Message::JobData {
                    job: 2,
                    phylip: phylip::write(&b),
                    config_json: config_b.engine_config_json(),
                },
            )
            .unwrap();
        for (job, task, seed) in [(1u64, 10u64, 9u64), (2, 11, 7), (1, 12, 11)] {
            foreman_end
                .send(3, &Message::JobTask { job, task, seed })
                .unwrap();
            let (_, msg) = foreman_end.recv().unwrap();
            match msg {
                Message::JobTaskResult {
                    job: j,
                    task: t,
                    seed: s,
                    newick,
                    ln_likelihood,
                    ..
                } => {
                    assert_eq!((j, t, s), (job, task, seed));
                    assert!(ln_likelihood.is_finite() && ln_likelihood < 0.0);
                    let tip = if job == 1 { "t0" } else { "x0" };
                    assert!(newick.contains(tip));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        foreman_end.send(3, &Message::Shutdown).unwrap();
        let stats = handle.join().unwrap();
        assert_eq!(stats.trees_evaluated, 3);
    }

    #[test]
    fn retired_job_engine_is_evicted() {
        let mut ends = ThreadUniverse::create(4);
        let worker_end = ends.remove(3);
        let foreman_end = ends.remove(1);
        let handle = thread::spawn(move || run_worker(worker_end, Obs::disabled()));
        let (phylip_text, config_json) = problem();
        foreman_end
            .send(
                3,
                &Message::JobData {
                    job: 1,
                    phylip: phylip_text,
                    config_json,
                },
            )
            .unwrap();
        foreman_end
            .send(
                3,
                &Message::JobTask {
                    job: 1,
                    task: 1,
                    seed: 9,
                },
            )
            .unwrap();
        let (_, msg) = foreman_end.recv().unwrap();
        assert!(matches!(msg, Message::JobTaskResult { job: 1, .. }));
        // Retire the job; a further task for it must now be a protocol
        // error, proving the cached engine is gone rather than leaked.
        foreman_end.send(3, &Message::JobRetire { job: 1 }).unwrap();
        foreman_end
            .send(
                3,
                &Message::JobTask {
                    job: 1,
                    task: 2,
                    seed: 11,
                },
            )
            .unwrap();
        let err = handle.join().unwrap().unwrap_err();
        assert!(matches!(err, WorkerError::Protocol(_)));
    }

    #[test]
    fn job_task_before_its_data_is_protocol_error() {
        let mut ends = ThreadUniverse::create(4);
        let worker_end = ends.remove(3);
        let foreman_end = ends.remove(1);
        foreman_end
            .send(
                3,
                &Message::JobTask {
                    job: 5,
                    task: 1,
                    seed: 3,
                },
            )
            .unwrap();
        let err = run_worker(worker_end, Obs::disabled()).unwrap_err();
        assert!(matches!(err, WorkerError::Protocol(_)));
    }
}
