//! Two-level foreman tree: the scale-out scheduler that pushes past the
//! paper's 64-processor ceiling (§4: "the performance … begins to fall off
//! beyond 32–64 processors as the foreman becomes a bottleneck").
//!
//! Topology: the master (rank 0) talks to one **root foreman** (rank 1),
//! which leases task batches to `R` **regional foremen** (ranks
//! `3..3+R`); each regional foreman runs the flat scheduler of
//! [`crate::foreman`] over its own worker shard (ranks `3+R..` assigned
//! round-robin). Results stream upward in batches, so the root pays one
//! frame per batch instead of one per task, and the per-message cost that
//! capped the flat design is amortised across the tree.
//!
//! Fault tolerance holds at both levels. Workers get the flat ladder
//! (timeout → requeue → quarantine) from their regional foreman. Regions
//! get a second ladder at the root: a region is declared dead only on a
//! failed send or a transport `PeerDown` (never on silence alone — a
//! silent region with leased work is `Ping`ed, and answers with a
//! `LeaseRequest` heartbeat). A dead region's lease is reclaimed and
//! requeued self-contained, and its orphaned workers are re-homed to the
//! surviving regions with [`Message::Rehome`]. Because the master dedups
//! results by task id, every recovery path converges on byte-identical
//! output.

use crate::foreman::{invariant, ForemanError, ForemanStats, Sched, TaskBody};
use crate::worker::ranks;
use fdml_comm::message::{Message, MonitorEvent};
use fdml_comm::transport::{CommError, Rank, Transport};
use fdml_obs::{Event, Obs};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// Most tasks a single lease grant may carry. Bounds the damage of losing
/// a region mid-lease and keeps the root's grants round-robin fair.
pub const GRANT_CAP: usize = 64;

/// Rank of the regional foreman for region index `region`.
pub fn regional_rank(region: usize) -> Rank {
    ranks::FIRST_WORKER + region
}

/// First worker rank when `regions` regional foremen sit between the
/// control ranks and the fleet. `regions == 0` (flat) degenerates to
/// [`ranks::FIRST_WORKER`].
pub fn first_worker_rank(regions: usize) -> Rank {
    ranks::FIRST_WORKER + regions
}

/// Home region index of `worker` under round-robin sharding.
pub fn home_region(worker: Rank, regions: usize) -> usize {
    (worker - first_worker_rank(regions)) % regions
}

/// Rank of the regional foreman `worker` initially reports to.
pub fn home_rank(worker: Rank, regions: usize) -> Rank {
    regional_rank(home_region(worker, regions))
}

/// Root-foreman statistics returned at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RootStats {
    /// The shared scheduler counters (dispatched = tasks granted,
    /// timeouts = tasks reclaimed from lost regions, …).
    pub stats: ForemanStats,
    /// Lease batches granted to regions.
    pub leases_granted: u64,
    /// Tasks moved between regions by steal arbitration.
    pub tasks_stolen: u64,
    /// Regions declared dead.
    pub regions_lost: u64,
    /// Workers re-homed to a surviving region.
    pub workers_rehomed: u64,
}

/// Per-region ledger at the root.
struct Region {
    rank: Rank,
    /// Outstanding demand from the region's last `LeaseRequest`.
    wants: u32,
    dead: bool,
    /// The region reported all its workers dead (`Abort` upward). Cleared
    /// when it asks for work again.
    exhausted: bool,
    has_base: bool,
    last_heard: Instant,
    next_ping: Instant,
}

/// Mutable state of the root foreman.
struct Root {
    regions: Vec<Region>,
    /// Tasks not yet leased to any region.
    queue: VecDeque<(u64, TaskBody)>,
    /// Tasks leased out: task id → (region index, body) for reclaim.
    leased: HashMap<u64, (usize, TaskBody)>,
    completed: HashSet<u64>,
    /// Worker rank → current home region index (for re-homing and for
    /// relaying worker `PeerDown`/`PeerUp` to the right region).
    home: HashMap<Rank, usize>,
    base: Option<(u64, String)>,
    /// Steal arbitration ledger: victim region → thieves awaiting its
    /// `StealReturn`.
    pending_steals: HashMap<usize, VecDeque<usize>>,
    stats: RootStats,
}

impl Root {
    fn new(regions: usize, size: usize, now: Instant) -> Root {
        let first_worker = first_worker_rank(regions);
        Root {
            regions: (0..regions)
                .map(|r| Region {
                    rank: regional_rank(r),
                    wants: 0,
                    dead: false,
                    exhausted: false,
                    has_base: false,
                    last_heard: now,
                    next_ping: now,
                })
                .collect(),
            queue: VecDeque::new(),
            leased: HashMap::new(),
            completed: HashSet::new(),
            home: (first_worker..size)
                .map(|w| (w, home_region(w, regions)))
                .collect(),
            base: None,
            pending_steals: HashMap::new(),
            stats: RootStats::default(),
        }
    }

    /// Region index of a regional-foreman rank, if it is one.
    fn region_of(&self, rank: Rank) -> Option<usize> {
        let n = self.regions.len();
        (ranks::FIRST_WORKER..ranks::FIRST_WORKER + n)
            .contains(&rank)
            .then(|| rank - ranks::FIRST_WORKER)
    }

    /// Build the dispatch message for one leased task, embedding the base
    /// for edits whenever the region is not known to hold it (or the task
    /// is marked self-contained). `has_base` is threaded through so only
    /// the first edit of a batch pays the embedded copy.
    fn grant_message(&self, body: &TaskBody, task: u64, has_base: &mut bool) -> Message {
        let embed = match body {
            TaskBody::Edit {
                base_id,
                self_contained,
                ..
            } => self
                .base
                .as_ref()
                .filter(|(id, _)| id == base_id)
                .filter(|_| *self_contained || !*has_base)
                .map(|(_, text)| text.clone()),
            _ => None,
        };
        if embed.is_some() {
            *has_base = true;
        }
        body.to_message(task, embed.as_deref())
    }

    /// Declare region `r` dead: reclaim its lease (requeued up front,
    /// self-contained), drop it from steal arbitration, and re-home its
    /// workers round-robin across the survivors.
    fn declare_region_dead<T: Transport>(&mut self, r: usize, transport: &T) {
        if self.regions[r].dead {
            return;
        }
        self.regions[r].dead = true;
        self.regions[r].wants = 0;
        self.regions[r].has_base = false;
        self.stats.regions_lost += 1;
        // Reclaim the lease. Self-contained, because the next region to
        // run these tasks may never have seen the base broadcast. Sorted
        // so the requeue order does not depend on hash-map iteration.
        let mut reclaimed: Vec<u64> = self
            .leased
            .iter()
            .filter(|(_, (reg, _))| *reg == r)
            .map(|(&t, _)| t)
            .collect();
        reclaimed.sort_unstable();
        for task in reclaimed.into_iter().rev() {
            if let Some((_, body)) = self.leased.remove(&task) {
                self.stats.stats.timeouts += 1;
                self.queue.push_front((task, body.self_contained()));
            }
        }
        // Forget its steal ledger entries, both as victim and as thief.
        self.pending_steals.remove(&r);
        for thieves in self.pending_steals.values_mut() {
            thieves.retain(|&t| t != r);
        }
        // Re-home the orphaned workers across surviving regions.
        let survivors: Vec<usize> = (0..self.regions.len())
            .filter(|&i| !self.regions[i].dead)
            .collect();
        if survivors.is_empty() {
            return;
        }
        let mut orphans: Vec<Rank> = self
            .home
            .iter()
            .filter(|(_, &reg)| reg == r)
            .map(|(&w, _)| w)
            .collect();
        orphans.sort_unstable();
        for (i, worker) in orphans.into_iter().enumerate() {
            let target = survivors[i % survivors.len()];
            self.home.insert(worker, target);
            self.stats.workers_rehomed += 1;
            // A dead worker just fails the send; it re-announces on
            // respawn and the transport's PeerUp relays it onward.
            let _ = transport.send(
                worker,
                &Message::Rehome {
                    foreman: regional_rank(target),
                },
            );
        }
    }
}

/// Run the root foreman of a two-level tree until the master sends
/// `Shutdown`. `regions` is the number of regional foremen (ranks
/// `3..3+regions`); workers occupy the ranks above them.
pub fn run_root_foreman<T: Transport>(
    transport: T,
    regions: usize,
    worker_timeout: Duration,
    has_monitor: bool,
    obs: Obs,
) -> Result<RootStats, ForemanError> {
    let mut s = Root::new(regions, transport.size(), Instant::now());
    let tick = (worker_timeout / 4)
        .max(Duration::from_millis(1))
        .min(Duration::from_millis(50));
    let mut last_depth: Option<(usize, usize, usize)> = None;
    let mut aborted = false;
    let mut next_region = 0usize;

    loop {
        // Grant loop: round-robin over hungry regions, a batch per grant.
        while !s.queue.is_empty() {
            let Some(r) = (0..s.regions.len())
                .map(|i| (next_region + i) % s.regions.len())
                .find(|&i| !s.regions[i].dead && s.regions[i].wants > 0)
            else {
                break;
            };
            next_region = (r + 1) % s.regions.len();
            let n = (s.regions[r].wants as usize)
                .min(GRANT_CAP)
                .min(s.queue.len());
            let mut has_base = s.regions[r].has_base;
            let mut granted = Vec::with_capacity(n);
            let mut msgs = Vec::with_capacity(n);
            for _ in 0..n {
                let (task, body) = invariant(s.queue.pop_front(), "grant outran the queue")?;
                msgs.push(s.grant_message(&body, task, &mut has_base));
                granted.push((task, body));
            }
            s.regions[r].has_base = has_base;
            s.regions[r].wants -= n as u32;
            for (task, body) in granted {
                s.leased.insert(task, (r, body));
            }
            let msg = if msgs.len() == 1 {
                invariant(msgs.pop(), "single-grant batch was empty")?
            } else {
                Message::Batch { msgs }
            };
            let bytes = serde_json::to_string(&msg).map(|j| j.len() as u64).ok();
            match transport.send(s.regions[r].rank, &msg) {
                Ok(()) => {
                    s.stats.stats.dispatched += n as u64;
                    s.stats.leases_granted += 1;
                    obs.emit(|| Event::LeaseGranted {
                        region: r,
                        tasks: n,
                    });
                    if n > 1 {
                        obs.emit(|| Event::BatchSent {
                            from: ranks::FOREMAN,
                            msgs: n,
                            bytes: bytes.unwrap_or(0),
                        });
                    }
                }
                Err(CommError::Disconnected(_)) => s.declare_region_dead(r, &transport),
                Err(e) => return Err(e.into()),
            }
        }

        // Steal arbitration: the queue is dry but a region is hungry, so
        // ask the most-loaded sibling to give some of its lease back. One
        // new steal per tick, and one outstanding request per thief.
        if s.queue.is_empty() {
            let thief = (0..s.regions.len()).find(|&i| {
                let reg = &s.regions[i];
                !reg.dead
                    && !reg.exhausted
                    && reg.wants > 0
                    && !s.pending_steals.values().any(|q| q.contains(&i))
            });
            if let Some(thief) = thief {
                let victim = (0..s.regions.len())
                    .filter(|&i| i != thief && !s.regions[i].dead)
                    .map(|i| {
                        let held = s.leased.values().filter(|(reg, _)| *reg == i).count();
                        (i, held)
                    })
                    .filter(|&(_, held)| held >= 2)
                    .max_by_key(|&(_, held)| held);
                if let Some((victim, _)) = victim {
                    let want = s.regions[thief].wants;
                    match transport.send(s.regions[victim].rank, &Message::StealRequest { want }) {
                        Ok(()) => {
                            s.pending_steals.entry(victim).or_default().push_back(thief);
                        }
                        Err(CommError::Disconnected(_)) => {
                            s.declare_region_dead(victim, &transport)
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }
        }

        // Liveness probe: a region holding a lease in silence gets pinged
        // once per timeout period. Silence alone never kills a region —
        // only a failed send (threads) or PeerDown (TCP hub) does, so a
        // busy region deep in a long jumble is safe.
        let now = Instant::now();
        for r in 0..s.regions.len() {
            let holds_lease = s.leased.values().any(|(reg, _)| *reg == r);
            let reg = &s.regions[r];
            if reg.dead
                || !holds_lease
                || now.duration_since(reg.last_heard) <= worker_timeout
                || now < reg.next_ping
            {
                continue;
            }
            s.regions[r].next_ping = now + worker_timeout;
            if let Err(CommError::Disconnected(_)) =
                transport.send(s.regions[r].rank, &Message::Ping)
            {
                s.declare_region_dead(r, &transport);
            }
        }

        // The run cannot heal if every region is dead or exhausted while
        // work is outstanding.
        if !aborted
            && !s.regions.is_empty()
            && s.regions.iter().all(|r| r.dead || r.exhausted)
            && (!s.queue.is_empty() || !s.leased.is_empty())
        {
            aborted = true;
            let reason = format!(
                "all {} regions are dead or exhausted with {} tasks outstanding",
                s.regions.len(),
                s.queue.len() + s.leased.len()
            );
            transport.send(ranks::MASTER, &Message::Abort { reason })?;
        }

        // One global queue-depth sample per state change; "ready" is the
        // fleet's aggregate demand.
        let depth = (
            s.queue.len(),
            s.regions.iter().map(|r| r.wants as usize).sum(),
            s.leased.len(),
        );
        if last_depth != Some(depth) {
            last_depth = Some(depth);
            obs.emit(|| Event::QueueDepth {
                work: depth.0,
                ready: depth.1,
                in_flight: depth.2,
            });
        }

        // Drain everything already queued before granting again, so a
        // burst of master tasks coalesces into one batched lease instead
        // of a grant per message.
        let mut next = transport.recv_timeout(tick)?;
        while let Some((from, msg)) = next {
            if let Some(stats) = root_handle(
                &mut s,
                &transport,
                has_monitor,
                from,
                msg,
                &obs,
                &mut aborted,
            )? {
                return Ok(stats);
            }
            next = transport.recv_timeout(Duration::ZERO)?;
        }
    }
}

/// Handle one message at the root. Returns `Some(stats)` on `Shutdown`.
#[allow(clippy::too_many_arguments)]
fn root_handle<T: Transport>(
    s: &mut Root,
    transport: &T,
    has_monitor: bool,
    from: Rank,
    msg: Message,
    obs: &Obs,
    aborted: &mut bool,
) -> Result<Option<RootStats>, ForemanError> {
    if let Some(r) = s.region_of(from) {
        s.regions[r].last_heard = Instant::now();
    }
    match msg {
        Message::Batch { msgs } => {
            for inner in msgs {
                if let Some(stats) =
                    root_handle(s, transport, has_monitor, from, inner, obs, aborted)?
                {
                    return Ok(Some(stats));
                }
            }
        }
        // Work from the master goes on the root queue; the grant loop
        // shards it.
        Message::TreeTask { .. }
        | Message::JumbleTask { .. }
        | Message::JumbleResume { .. }
        | Message::TreeEditTask { .. } => {
            debug_assert_eq!(from, ranks::MASTER);
            if let Some((task, body)) = TaskBody::from_message(&msg) {
                s.queue.push_back((task, body));
            }
        }
        msg @ Message::WalRound { .. } => {
            // A committed round streamed up from a region's worker: relay
            // to the master, which owns the on-disk write-ahead log.
            transport.send(ranks::MASTER, &msg)?;
        }
        Message::BaseTopology { base_id, newick } => {
            debug_assert_eq!(from, ranks::MASTER);
            for r in 0..s.regions.len() {
                s.regions[r].has_base = false;
                if s.regions[r].dead {
                    continue;
                }
                let relay = Message::BaseTopology {
                    base_id,
                    newick: newick.clone(),
                };
                if transport.send(s.regions[r].rank, &relay).is_ok() {
                    s.regions[r].has_base = true;
                }
            }
            s.base = Some((base_id, newick));
        }
        Message::LeaseRequest { want } => {
            let Some(r) = s.region_of(from) else {
                return Ok(None);
            };
            if s.regions[r].dead {
                // The region came back (supervisor respawn): revive it and
                // re-send the base so its edit grants can go compact.
                s.regions[r].dead = false;
                if let Some((base_id, newick)) = &s.base {
                    let relay = Message::BaseTopology {
                        base_id: *base_id,
                        newick: newick.clone(),
                    };
                    s.regions[r].has_base = transport.send(from, &relay).is_ok();
                }
            }
            if want > 0 {
                s.regions[r].exhausted = false;
            }
            s.regions[r].wants = want;
        }
        Message::StealReturn { tasks } => {
            let Some(victim) = s.region_of(from) else {
                return Ok(None);
            };
            let thief = s
                .pending_steals
                .get_mut(&victim)
                .and_then(|q| q.pop_front())
                .filter(|&t| !s.regions[t].dead);
            let mut moved = Vec::new();
            for m in &tasks {
                let Some((task, body)) = TaskBody::from_message(m) else {
                    continue;
                };
                if s.completed.contains(&task) || s.queue.iter().any(|(t, _)| *t == task) {
                    continue;
                }
                s.leased.remove(&task);
                moved.push((task, body));
            }
            match thief {
                Some(thief) if !moved.is_empty() => {
                    let n = moved.len();
                    let mut has_base = s.regions[thief].has_base;
                    let mut msgs = Vec::with_capacity(n);
                    for (task, body) in &moved {
                        msgs.push(s.grant_message(body, *task, &mut has_base));
                    }
                    s.regions[thief].has_base = has_base;
                    let out = if msgs.len() == 1 {
                        invariant(msgs.pop(), "single-steal batch was empty")?
                    } else {
                        Message::Batch { msgs }
                    };
                    match transport.send(s.regions[thief].rank, &out) {
                        Ok(()) => {
                            for (task, body) in moved {
                                s.leased.insert(task, (thief, body));
                            }
                            s.regions[thief].wants =
                                s.regions[thief].wants.saturating_sub(n as u32);
                            s.stats.tasks_stolen += n as u64;
                            obs.emit(|| Event::TaskStolen {
                                from_region: victim,
                                to_region: thief,
                                tasks: n,
                            });
                        }
                        Err(CommError::Disconnected(_)) => {
                            s.declare_region_dead(thief, transport);
                            for (task, body) in moved {
                                s.queue.push_front((task, body.self_contained()));
                            }
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                _ => {
                    // No live thief left waiting: the surrendered tasks go
                    // back on the root queue for the next hungry region.
                    for (task, body) in moved {
                        s.queue.push_front((task, body.self_contained()));
                    }
                }
            }
        }
        msg @ (Message::TreeResult { .. } | Message::JumbleResult { .. }) => {
            let task = match &msg {
                Message::TreeResult { task, .. } | Message::JumbleResult { task, .. } => *task,
                _ => unreachable!("outer pattern admits only results"),
            };
            let is_new = !s.completed.contains(&task)
                && (s.leased.contains_key(&task) || s.queue.iter().any(|(t, _)| *t == task));
            if is_new {
                s.completed.insert(task);
                s.leased.remove(&task);
                s.queue.retain(|(t, _)| *t != task);
                transport.send(ranks::MASTER, &msg)?;
                s.stats.stats.results_forwarded += 1;
            } else {
                s.stats.stats.duplicates_ignored += 1;
            }
        }
        msg @ Message::Quarantined { .. } => {
            let Message::Quarantined { task, .. } = &msg else {
                unreachable!("outer pattern admits only Quarantined");
            };
            let task = *task;
            if !s.completed.contains(&task) {
                s.completed.insert(task);
                s.leased.remove(&task);
                s.queue.retain(|(t, _)| *t != task);
                s.stats.stats.quarantined += 1;
                transport.send(ranks::MASTER, &msg)?;
            }
        }
        Message::Abort { .. } => {
            // A region reporting all its workers dead. Reclaim its lease
            // so a sibling can run the work; the region keeps running and
            // clears `exhausted` if a re-homed worker reaches it.
            if let Some(r) = s.region_of(from) {
                s.regions[r].exhausted = true;
                s.regions[r].wants = 0;
                let mut reclaimed: Vec<u64> = s
                    .leased
                    .iter()
                    .filter(|(_, (reg, _))| *reg == r)
                    .map(|(&t, _)| t)
                    .collect();
                reclaimed.sort_unstable();
                for task in reclaimed.into_iter().rev() {
                    if let Some((_, body)) = s.leased.remove(&task) {
                        s.stats.stats.timeouts += 1;
                        s.queue.push_front((task, body.self_contained()));
                    }
                }
            }
        }
        Message::PeerDown { rank } => {
            if let Some(r) = s.region_of(rank) {
                s.declare_region_dead(r, transport);
            } else if let Some(&r) = s.home.get(&rank) {
                // A worker's link dropped: its regional foreman owns the
                // eager-requeue, so relay the notice there.
                if !s.regions[r].dead {
                    let _ = transport.send(s.regions[r].rank, &Message::PeerDown { rank });
                }
            }
        }
        Message::PeerUp { rank } => {
            if let Some(r) = s.region_of(rank) {
                // A respawned region announces demand via LeaseRequest;
                // until then just stop treating it as dead.
                s.regions[r].dead = false;
            } else if let Some(&r) = s.home.get(&rank) {
                if !s.regions[r].dead {
                    let _ = transport.send(s.regions[r].rank, &Message::PeerUp { rank });
                }
            }
        }
        Message::Shutdown => {
            debug_assert_eq!(from, ranks::MASTER);
            // The root broadcasts to the whole tree; regional foremen do
            // not cascade, so nobody is shut down twice.
            if has_monitor {
                let _ = transport.send(ranks::MONITOR, &Message::Shutdown);
            }
            for rank in ranks::FIRST_WORKER..transport.size() {
                let _ = transport.send(rank, &Message::Shutdown);
            }
            return Ok(Some(s.stats));
        }
        other => {
            debug_assert!(false, "root foreman got unexpected {}", other.kind());
        }
    }
    let _ = aborted;
    Ok(None)
}

/// Options for a regional foreman.
#[derive(Debug, Clone, Copy)]
pub struct RegionalOptions {
    /// Per-worker fault-tolerance timeout (same meaning as the flat
    /// foreman's).
    pub worker_timeout: Duration,
    /// Whether a monitor sits at rank 2 (regions send `Dispatched` /
    /// `Completed`, the root sends nothing).
    pub has_monitor: bool,
    /// Test hook: crash (return immediately, dropping any unflushed
    /// upward results) after forwarding this many results. Simulates the
    /// loss of a regional foreman mid-round.
    pub die_after_results: Option<u64>,
}

impl RegionalOptions {
    /// A live region with the given worker timeout.
    pub fn new(worker_timeout: Duration, has_monitor: bool) -> RegionalOptions {
        RegionalOptions {
            worker_timeout,
            has_monitor,
            die_after_results: None,
        }
    }
}

/// Run a regional foreman: the flat worker-facing scheduler of
/// [`crate::foreman`], fed by leases from the root (rank 1) instead of the
/// master, streaming results upward in batches.
pub fn run_regional_foreman<T: Transport>(
    transport: T,
    opts: RegionalOptions,
    obs: Obs,
) -> Result<ForemanStats, ForemanError> {
    let mut s = Sched::default();
    let region = transport.rank() - ranks::FIRST_WORKER;
    let tick = (opts.worker_timeout / 4)
        .max(Duration::from_millis(1))
        .min(Duration::from_millis(50));
    let monitor = |t: &T, ev: MonitorEvent| {
        if opts.has_monitor {
            let _ = t.send(ranks::MONITOR, &Message::Monitor(ev));
        }
    };

    // Workers that have ever contacted this region. The shard is dynamic:
    // re-homed refugees from a dead sibling join by announcing
    // `WorkerReady`, so membership cannot be derived from rank arithmetic.
    let mut known: HashSet<Rank> = HashSet::new();
    // Results and quarantines awaiting the per-iteration upward flush.
    let mut upward: Vec<Message> = Vec::new();
    let mut last_depth: Option<(usize, usize, usize)> = None;
    let mut aborted = false;
    let mut next_ping: HashMap<Rank, Instant> = HashMap::new();
    let mut next_lease = Instant::now();

    loop {
        // Dispatch to the shard — the flat ladder, verbatim.
        while !s.work_queue.is_empty() && !s.ready.is_empty() {
            let worker = invariant(s.ready.pop_front(), "ready queue emptied mid-dispatch")?;
            if s.delinquent.contains(&worker) {
                continue;
            }
            let (task, body) =
                invariant(s.work_queue.pop_front(), "work queue emptied mid-dispatch")?;
            let embed_base = match &body {
                TaskBody::Edit {
                    base_id,
                    self_contained,
                    ..
                } => s
                    .base
                    .as_ref()
                    .filter(|(id, _)| id == base_id)
                    .filter(|_| *self_contained || !s.has_base.contains(&worker))
                    .map(|(_, text)| text.clone()),
                _ => None,
            };
            match transport.send(worker, &body.to_message(task, embed_base.as_deref())) {
                Ok(()) => {}
                Err(CommError::Disconnected(_)) => {
                    s.delinquent.insert(worker);
                    s.dead.insert(worker);
                    s.has_base.remove(&worker);
                    s.stats.timeouts += 1;
                    monitor(&transport, MonitorEvent::WorkerTimedOut { worker, task });
                    if let Some(q) = s.fail_task(task, body, worker, true, &obs) {
                        upward.push(q);
                    }
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
            if embed_base.is_some() {
                s.has_base.insert(worker);
            }
            s.in_flight.insert(
                task,
                crate::foreman::InFlight {
                    worker,
                    body,
                    dispatched_at: Instant::now(),
                },
            );
            s.stats.dispatched += 1;
            monitor(&transport, MonitorEvent::Dispatched { task, worker });
        }

        // Worker timeouts.
        let now = Instant::now();
        let timed_out: Vec<u64> = s
            .in_flight
            .iter()
            .filter(|(_, f)| now.duration_since(f.dispatched_at) > opts.worker_timeout)
            .map(|(&task, _)| task)
            .collect();
        for task in timed_out {
            let f = invariant(s.in_flight.remove(&task), "timed-out task not in flight")?;
            s.delinquent.insert(f.worker);
            s.ready.retain(|&w| w != f.worker);
            s.stats.timeouts += 1;
            monitor(
                &transport,
                MonitorEvent::WorkerTimedOut {
                    worker: f.worker,
                    task,
                },
            );
            if let Some(q) = s.fail_task(task, f.body, f.worker, false, &obs) {
                upward.push(q);
            }
        }

        // Liveness probes of delinquent shard members.
        if !s.work_queue.is_empty() || !s.in_flight.is_empty() {
            let due: Vec<Rank> = s
                .delinquent
                .iter()
                .copied()
                .filter(|w| !s.dead.contains(w))
                .filter(|w| next_ping.get(w).is_none_or(|&t| now >= t))
                .collect();
            for worker in due {
                next_ping.insert(worker, now + opts.worker_timeout);
                if let Err(CommError::Disconnected(_)) = transport.send(worker, &Message::Ping) {
                    for (task, quarantined) in s.peer_down(worker, &obs) {
                        monitor(&transport, MonitorEvent::WorkerTimedOut { worker, task });
                        if let Some(q) = quarantined {
                            upward.push(q);
                        }
                    }
                }
            }
        }

        // Lease more work when the shard can absorb it: keep the backlog
        // at about two tasks per live worker. The request doubles as the
        // region's heartbeat.
        let live_workers = known.iter().filter(|w| !s.dead.contains(w)).count();
        let backlog = s.work_queue.len() + s.in_flight.len();
        if live_workers > 0 && backlog < 2 * live_workers && now >= next_lease {
            next_lease = now + tick;
            let want = (2 * live_workers - backlog) as u32;
            match transport.send(ranks::FOREMAN, &Message::LeaseRequest { want }) {
                Ok(()) | Err(CommError::Disconnected(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }

        // All shard members dead with work outstanding: tell the root (it
        // reclaims the lease for a sibling) but keep running — re-homed
        // refugees may arrive and repopulate the shard.
        if !known.is_empty()
            && known.iter().all(|w| s.dead.contains(w))
            && (!s.work_queue.is_empty() || !s.in_flight.is_empty())
        {
            if !aborted {
                aborted = true;
                let reason = format!(
                    "region {region}: all {} workers are dead with {} tasks outstanding",
                    known.len(),
                    s.work_queue.len() + s.in_flight.len()
                );
                match transport.send(ranks::FOREMAN, &Message::Abort { reason }) {
                    Ok(()) | Err(CommError::Disconnected(_)) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        } else {
            aborted = false;
        }

        // Per-region queue-depth sample on change.
        let depth = (s.work_queue.len(), s.ready.len(), s.in_flight.len());
        if last_depth != Some(depth) {
            last_depth = Some(depth);
            obs.emit(|| Event::RegionQueueDepth {
                region,
                work: depth.0,
                ready: depth.1,
                in_flight: depth.2,
            });
        }

        // Flush the upward buffer: one frame per iteration, however many
        // results it carries.
        if !upward.is_empty() {
            let n = upward.len();
            let msg = if n == 1 {
                invariant(upward.pop(), "upward flush of an empty buffer")?
            } else {
                Message::Batch {
                    msgs: std::mem::take(&mut upward),
                }
            };
            upward.clear();
            let bytes = serde_json::to_string(&msg)
                .map(|j| j.len() as u64)
                .unwrap_or(0);
            transport.send(ranks::FOREMAN, &msg)?;
            if n > 1 {
                obs.emit(|| Event::BatchSent {
                    from: transport.rank(),
                    msgs: n,
                    bytes,
                });
            }
        }

        let Some((from, msg)) = transport.recv_timeout(tick)? else {
            continue;
        };
        // Unpack lease batches in order; everything else is one message.
        let msgs = match msg {
            Message::Batch { msgs } => msgs,
            other => vec![other],
        };
        for msg in msgs {
            match msg {
                // Leased work from the root.
                Message::TreeTask { .. }
                | Message::JumbleTask { .. }
                | Message::JumbleResume { .. } => {
                    if let Some((task, body)) = TaskBody::from_message(&msg) {
                        s.work_queue.push_back((task, body));
                    }
                }
                msg @ Message::WalRound { .. } => {
                    // A worker's committed round: join the upward stream.
                    // Per-link FIFO keeps it ahead of the jumble's result.
                    upward.push(msg);
                }
                Message::TreeEditTask {
                    task,
                    base_id,
                    edit,
                    ref base_newick,
                } => {
                    // A grant embedding the base doubles as the region's
                    // base install: later compact grants of the round rely
                    // on it.
                    if let Some(text) = base_newick {
                        if s.base.as_ref().map(|(id, _)| *id) != Some(base_id) {
                            s.has_base.clear();
                        }
                        s.base = Some((base_id, text.clone()));
                    }
                    s.work_queue.push_back((
                        task,
                        TaskBody::Edit {
                            base_id,
                            edit,
                            self_contained: base_newick.is_some(),
                        },
                    ));
                }
                Message::BaseTopology { base_id, newick } => {
                    // Relay to the live shard, exactly as the flat foreman
                    // relays a master broadcast.
                    s.has_base.clear();
                    for &rank in &known {
                        if s.dead.contains(&rank) {
                            continue;
                        }
                        let relay = Message::BaseTopology {
                            base_id,
                            newick: newick.clone(),
                        };
                        if transport.send(rank, &relay).is_ok() {
                            s.has_base.insert(rank);
                        }
                    }
                    s.base = Some((base_id, newick));
                }
                Message::StealRequest { want } => {
                    // Surrender the coldest queued tasks (back of the
                    // queue), base embedded so the thief can always score
                    // them. Always answer, even empty-handed: the root's
                    // steal ledger needs the resolution.
                    let n = (want as usize).min(s.work_queue.len());
                    let mut tasks = Vec::with_capacity(n);
                    for _ in 0..n {
                        let (task, body) =
                            invariant(s.work_queue.pop_back(), "steal outran the queue")?;
                        let base_text = match &body {
                            TaskBody::Edit { base_id, .. } => s
                                .base
                                .as_ref()
                                .filter(|(id, _)| id == base_id)
                                .map(|(_, text)| text.clone()),
                            _ => None,
                        };
                        tasks.push(body.to_message(task, base_text.as_deref()));
                    }
                    tasks.reverse();
                    match transport.send(ranks::FOREMAN, &Message::StealReturn { tasks }) {
                        Ok(()) | Err(CommError::Disconnected(_)) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
                Message::Ping => {
                    // Root liveness probe: answer with current demand.
                    let live = known.iter().filter(|w| !s.dead.contains(w)).count();
                    let backlog = s.work_queue.len() + s.in_flight.len();
                    let want = (2 * live).saturating_sub(backlog) as u32;
                    match transport.send(ranks::FOREMAN, &Message::LeaseRequest { want }) {
                        Ok(()) | Err(CommError::Disconnected(_)) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
                msg @ (Message::TreeResult { .. } | Message::JumbleResult { .. }) => {
                    let (task, ln_likelihood, work_units) = match &msg {
                        Message::TreeResult {
                            task,
                            ln_likelihood,
                            work_units,
                            ..
                        }
                        | Message::JumbleResult {
                            task,
                            ln_likelihood,
                            work_units,
                            ..
                        } => (*task, *ln_likelihood, *work_units),
                        _ => unreachable!("outer pattern admits only results"),
                    };
                    s.dead.remove(&from);
                    if s.delinquent.remove(&from) {
                        s.stats.recoveries += 1;
                        monitor(&transport, MonitorEvent::WorkerRecovered { worker: from });
                    }
                    let was_expected = s
                        .in_flight
                        .get(&task)
                        .map(|f| f.worker == from)
                        .unwrap_or(false);
                    let is_new = !s.completed.contains(&task)
                        && (was_expected
                            || s.work_queue.iter().any(|(t, _)| *t == task)
                            || s.in_flight.contains_key(&task));
                    if is_new {
                        s.completed.insert(task);
                        s.failures.remove(&task);
                        let service_us = s
                            .in_flight
                            .remove(&task)
                            .map(|f| f.dispatched_at.elapsed().as_micros() as u64)
                            .unwrap_or(0);
                        s.work_queue.retain(|(t, _)| *t != task);
                        upward.push(msg);
                        s.stats.results_forwarded += 1;
                        monitor(
                            &transport,
                            MonitorEvent::Completed {
                                task,
                                worker: from,
                                ln_likelihood,
                                work_units,
                                service_us,
                            },
                        );
                        if opts
                            .die_after_results
                            .is_some_and(|n| s.stats.results_forwarded >= n)
                        {
                            // Crash hook: die with the upward buffer
                            // unflushed, losing this result in flight —
                            // the root's lease reclaim must cover it.
                            return Ok(s.stats);
                        }
                    } else {
                        s.stats.duplicates_ignored += 1;
                    }
                    s.ready.push_back(from);
                }
                Message::WorkerReady => {
                    known.insert(from);
                    s.dead.remove(&from);
                    if s.delinquent.remove(&from) {
                        s.stats.recoveries += 1;
                        monitor(&transport, MonitorEvent::WorkerRecovered { worker: from });
                    }
                    if !s.has_base.contains(&from) {
                        if let Some((base_id, newick)) = &s.base {
                            let relay = Message::BaseTopology {
                                base_id: *base_id,
                                newick: newick.clone(),
                            };
                            if transport.send(from, &relay).is_ok() {
                                s.has_base.insert(from);
                            }
                        }
                    }
                    if !s.ready.contains(&from) {
                        s.ready.push_back(from);
                    }
                }
                Message::PeerDown { rank } => {
                    for (task, quarantined) in s.peer_down(rank, &obs) {
                        monitor(
                            &transport,
                            MonitorEvent::WorkerTimedOut { worker: rank, task },
                        );
                        if let Some(q) = quarantined {
                            upward.push(q);
                        }
                    }
                }
                Message::PeerUp { rank } => {
                    s.dead.remove(&rank);
                    if s.delinquent.remove(&rank) {
                        s.stats.recoveries += 1;
                        monitor(&transport, MonitorEvent::WorkerRecovered { worker: rank });
                    }
                }
                Message::Shutdown => {
                    // The root broadcast reaches the workers directly; no
                    // cascade from here, so nobody shuts down twice.
                    return Ok(s.stats);
                }
                other => {
                    debug_assert!(false, "regional foreman got unexpected {}", other.kind());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_comm::threads::ThreadUniverse;
    use std::thread;

    fn universe(n: usize) -> Vec<fdml_comm::threads::ThreadTransport> {
        ThreadUniverse::create(n)
    }

    fn tree_task(task: u64) -> Message {
        Message::TreeTask {
            task,
            newick: format!("(t{task});"),
        }
    }

    fn tree_result(task: u64) -> Message {
        Message::TreeResult {
            task,
            newick: format!("(t{task}:1);"),
            ln_likelihood: -(task as f64),
            work_units: 1,
        }
    }

    /// Receive, skipping liveness probes.
    fn recv_skipping_pings(t: &fdml_comm::threads::ThreadTransport) -> Message {
        loop {
            let (_, msg) = t.recv().unwrap();
            if msg != Message::Ping {
                return msg;
            }
        }
    }

    #[test]
    fn rank_helpers_shard_round_robin() {
        // Two regions at ranks 3 and 4; workers from rank 5 up alternate.
        assert_eq!(regional_rank(0), 3);
        assert_eq!(regional_rank(1), 4);
        assert_eq!(first_worker_rank(2), 5);
        assert_eq!(home_region(5, 2), 0);
        assert_eq!(home_region(6, 2), 1);
        assert_eq!(home_region(7, 2), 0);
        assert_eq!(home_rank(6, 2), 4);
    }

    #[test]
    fn root_grants_leases_in_batches_and_forwards_results() {
        // Ranks: 0 master, 1 root, 2 monitor (absent), 3 region, 4 worker.
        let mut ends = universe(5);
        let worker = ends.remove(4);
        let region = ends.remove(3);
        let root_end = ends.remove(1);
        let master = ends.remove(0);
        let f = thread::spawn(move || {
            run_root_foreman(root_end, 1, Duration::from_secs(5), false, Obs::disabled()).unwrap()
        });
        // Work first, demand second: per-link FIFO means the root sees
        // both tasks before the lease request, so the grant is one batch.
        for t in [1u64, 2] {
            master.send(ranks::FOREMAN, &tree_task(t)).unwrap();
        }
        region
            .send(ranks::FOREMAN, &Message::LeaseRequest { want: 2 })
            .unwrap();
        // Both tasks arrive in one Batch grant.
        let msg = recv_skipping_pings(&region);
        let Message::Batch { msgs } = msg else {
            panic!("expected a batched grant, got {msg:?}");
        };
        assert_eq!(msgs.len(), 2);
        assert!(matches!(msgs[0], Message::TreeTask { task: 1, .. }));
        assert!(matches!(msgs[1], Message::TreeTask { task: 2, .. }));
        // The region streams both results back in one Batch.
        region
            .send(
                ranks::FOREMAN,
                &Message::Batch {
                    msgs: vec![tree_result(1), tree_result(2)],
                },
            )
            .unwrap();
        for expect in [1u64, 2] {
            let (_, msg) = master.recv().unwrap();
            assert!(
                matches!(msg, Message::TreeResult { task, .. } if task == expect),
                "got {msg:?}"
            );
        }
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        // The root broadcasts shutdown to the region AND the worker.
        assert_eq!(recv_skipping_pings(&region), Message::Shutdown);
        let (_, msg) = worker.recv().unwrap();
        assert_eq!(msg, Message::Shutdown);
        let stats = f.join().unwrap();
        assert_eq!(stats.leases_granted, 1);
        assert_eq!(stats.stats.dispatched, 2);
        assert_eq!(stats.stats.results_forwarded, 2);
        assert_eq!(stats.regions_lost, 0);
    }

    #[test]
    fn steal_moves_queued_tasks_from_loaded_to_drained_region() {
        // Ranks: 0 master, 1 root, 2 monitor, 3 region A, 4 region B,
        // 5..7 workers.
        let mut ends = universe(7);
        ends.truncate(5);
        let region_b = ends.remove(4);
        let region_a = ends.remove(3);
        let root_end = ends.remove(1);
        let master = ends.remove(0);
        let f = thread::spawn(move || {
            run_root_foreman(root_end, 2, Duration::from_secs(5), false, Obs::disabled()).unwrap()
        });
        // A leases all four tasks (work queued before the demand so the
        // grant coalesces into one batch).
        for t in 1u64..=4 {
            master.send(ranks::FOREMAN, &tree_task(t)).unwrap();
        }
        region_a
            .send(ranks::FOREMAN, &Message::LeaseRequest { want: 4 })
            .unwrap();
        let Message::Batch { msgs } = recv_skipping_pings(&region_a) else {
            panic!("expected batched grant to A");
        };
        assert_eq!(msgs.len(), 4);
        // B turns up hungry with the root queue dry: the root asks A to
        // give some back.
        region_b
            .send(ranks::FOREMAN, &Message::LeaseRequest { want: 2 })
            .unwrap();
        let msg = recv_skipping_pings(&region_a);
        let Message::StealRequest { want } = msg else {
            panic!("expected StealRequest at the victim, got {msg:?}");
        };
        assert_eq!(want, 2);
        // A surrenders its two coldest tasks (3 and 4).
        region_a
            .send(
                ranks::FOREMAN,
                &Message::StealReturn {
                    tasks: vec![tree_task(3), tree_task(4)],
                },
            )
            .unwrap();
        let Message::Batch { msgs } = recv_skipping_pings(&region_b) else {
            panic!("expected stolen batch at the thief");
        };
        assert_eq!(msgs.len(), 2);
        assert!(matches!(msgs[0], Message::TreeTask { task: 3, .. }));
        // Everyone answers; the master sees all four exactly once.
        region_a
            .send(
                ranks::FOREMAN,
                &Message::Batch {
                    msgs: vec![tree_result(1), tree_result(2)],
                },
            )
            .unwrap();
        region_b
            .send(
                ranks::FOREMAN,
                &Message::Batch {
                    msgs: vec![tree_result(3), tree_result(4)],
                },
            )
            .unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let (_, msg) = master.recv().unwrap();
            let Message::TreeResult { task, .. } = msg else {
                panic!("expected result, got {msg:?}");
            };
            assert!(seen.insert(task), "duplicate result for task {task}");
        }
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        let stats = f.join().unwrap();
        assert_eq!(stats.tasks_stolen, 2);
        assert_eq!(stats.stats.results_forwarded, 4);
        assert_eq!(stats.stats.duplicates_ignored, 0);
    }

    #[test]
    fn dead_region_lease_is_reclaimed_and_workers_rehomed() {
        // Ranks: 0 master, 1 root, 2 monitor, 3 region A, 4 region B,
        // 5 worker (home A), 6 worker (home B).
        let mut ends = universe(7);
        let worker_b = ends.remove(6);
        let worker_a = ends.remove(5);
        let region_b = ends.remove(4);
        let region_a = ends.remove(3);
        let root_end = ends.remove(1);
        let master = ends.remove(0);
        // Short timeout so the silence probe fires fast.
        let f = thread::spawn(move || {
            run_root_foreman(
                root_end,
                2,
                Duration::from_millis(50),
                false,
                Obs::disabled(),
            )
            .unwrap()
        });
        for t in [1u64, 2] {
            master.send(ranks::FOREMAN, &tree_task(t)).unwrap();
        }
        region_a
            .send(ranks::FOREMAN, &Message::LeaseRequest { want: 2 })
            .unwrap();
        let Message::Batch { msgs } = region_a.recv().unwrap().1 else {
            panic!("expected batched grant to A");
        };
        assert_eq!(msgs.len(), 2);
        // A dies holding the lease: the root's silence probe hits the
        // dropped endpoint and fails the send.
        drop(region_a);
        // B asks for work; once A is declared dead the reclaimed tasks go
        // to B, and A's worker is re-homed to B.
        loop {
            region_b
                .send(ranks::FOREMAN, &Message::LeaseRequest { want: 2 })
                .unwrap();
            match recv_skipping_pings(&region_b) {
                Message::Batch { msgs } => {
                    assert_eq!(msgs.len(), 2);
                    assert!(matches!(msgs[0], Message::TreeTask { task: 1, .. }));
                    break;
                }
                // Steal arbitration may fire first while A still looks
                // alive; B never answers it (it is not the victim).
                Message::StealRequest { .. } => continue,
                other => panic!("unexpected message at B: {other:?}"),
            }
        }
        let (_, msg) = worker_a.recv().unwrap();
        assert_eq!(msg, Message::Rehome { foreman: 4 });
        drop(worker_b);
        region_b
            .send(
                ranks::FOREMAN,
                &Message::Batch {
                    msgs: vec![tree_result(1), tree_result(2)],
                },
            )
            .unwrap();
        for _ in 0..2 {
            let (_, msg) = master.recv().unwrap();
            assert!(matches!(msg, Message::TreeResult { .. }));
        }
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        let stats = f.join().unwrap();
        assert_eq!(stats.regions_lost, 1);
        assert_eq!(stats.workers_rehomed, 1);
        assert_eq!(stats.stats.timeouts, 2, "both leased tasks reclaimed");
        assert_eq!(stats.stats.results_forwarded, 2);
    }

    #[test]
    fn regional_foreman_leases_dispatches_and_streams_upward() {
        // Ranks: 0 master, 1 root (scripted), 2 monitor, 3 region (under
        // test), 4 worker (scripted).
        let mut ends = universe(5);
        let worker = ends.remove(4);
        let region_end = ends.remove(3);
        let root = ends.remove(1);
        let f = thread::spawn(move || {
            run_regional_foreman(
                region_end,
                RegionalOptions::new(Duration::from_secs(5), false),
                Obs::disabled(),
            )
            .unwrap()
        });
        worker
            .send(regional_rank(0), &Message::WorkerReady)
            .unwrap();
        // The region asks the root for work (want = 2×1 live worker).
        let (_, msg) = root.recv().unwrap();
        assert_eq!(msg, Message::LeaseRequest { want: 2 });
        // Grant a batch of two.
        root.send(
            regional_rank(0),
            &Message::Batch {
                msgs: vec![tree_task(1), tree_task(2)],
            },
        )
        .unwrap();
        // Both reach the worker, one dispatch at a time.
        for t in [1u64, 2] {
            let msg = recv_skipping_pings(&worker);
            assert!(
                matches!(msg, Message::TreeTask { task, .. } if task == t),
                "got {msg:?}"
            );
            worker.send(regional_rank(0), &tree_result(t)).unwrap();
        }
        // Results stream up (possibly batched, depending on timing).
        let mut got = Vec::new();
        while got.len() < 2 {
            match recv_skipping_pings(&root) {
                Message::Batch { msgs } => got.extend(msgs),
                Message::LeaseRequest { .. } => continue,
                msg => got.push(msg),
            }
        }
        assert!(matches!(got[0], Message::TreeResult { task: 1, .. }));
        assert!(matches!(got[1], Message::TreeResult { task: 2, .. }));
        // Shutdown from the root ends the region without a cascade: the
        // worker's queue stays empty.
        root.send(regional_rank(0), &Message::Shutdown).unwrap();
        let stats = f.join().unwrap();
        assert_eq!(stats.dispatched, 2);
        assert_eq!(stats.results_forwarded, 2);
        assert_eq!(
            worker.recv_timeout(Duration::from_millis(50)).unwrap(),
            None,
            "regional foremen must not cascade Shutdown"
        );
    }

    #[test]
    fn die_after_results_drops_the_unflushed_result() {
        let mut ends = universe(5);
        let worker = ends.remove(4);
        let region_end = ends.remove(3);
        let root = ends.remove(1);
        let f = thread::spawn(move || {
            run_regional_foreman(
                region_end,
                RegionalOptions {
                    worker_timeout: Duration::from_secs(5),
                    has_monitor: false,
                    die_after_results: Some(1),
                },
                Obs::disabled(),
            )
            .unwrap()
        });
        worker
            .send(regional_rank(0), &Message::WorkerReady)
            .unwrap();
        let (_, msg) = root.recv().unwrap();
        assert!(matches!(msg, Message::LeaseRequest { .. }));
        root.send(regional_rank(0), &tree_task(1)).unwrap();
        let msg = recv_skipping_pings(&worker);
        assert!(matches!(msg, Message::TreeTask { task: 1, .. }));
        worker.send(regional_rank(0), &tree_result(1)).unwrap();
        let stats = f.join().unwrap();
        assert_eq!(stats.results_forwarded, 1);
        // The result died with the region: the root never sees it (only,
        // at most, further lease-request heartbeats).
        loop {
            match root.recv_timeout(Duration::from_millis(80)).unwrap() {
                None => break,
                Some((_, Message::LeaseRequest { .. })) => continue,
                Some((_, other)) => panic!("crash hook leaked {other:?} upward"),
            }
        }
    }
}
