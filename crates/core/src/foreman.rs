//! The foreman process (paper §2.2): "dispatches trees to worker processes
//! for analysis, receives back trees and their associated likelihood
//! values… The foreman manages this process via a work queue and a ready
//! queue. The work queue includes a record of the tree dispatched to each
//! worker and the time the tree was dispatched (used to implement fault
//! tolerance)."

use crate::worker::ranks;
use fdml_comm::message::{Message, MonitorEvent, TaskPayload, TreeEdit};
use fdml_comm::transport::{CommError, Rank, Transport};
use fdml_obs::{Event, Obs};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

/// How many *distinct* workers may fail a task (timeout or disconnect
/// while holding it) before the foreman stops requeuing it and hands it to
/// the master for local evaluation. Distinct workers, so one flapping
/// worker cannot quarantine a healthy task by failing it repeatedly.
pub const QUARANTINE_BUDGET: u64 = 3;

/// Why the foreman stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForemanError {
    /// The transport failed underneath the scheduler.
    Comm(CommError),
    /// A scheduler invariant was violated — a bug, reported as a typed
    /// error instead of a panic, because a panicking foreman hangs every
    /// remote peer blocked on it.
    Invariant(&'static str),
}

impl fmt::Display for ForemanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForemanError::Comm(e) => write!(f, "foreman transport failure: {e}"),
            ForemanError::Invariant(what) => {
                write!(f, "foreman scheduler invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for ForemanError {}

impl From<CommError> for ForemanError {
    fn from(e: CommError) -> ForemanError {
        ForemanError::Comm(e)
    }
}

/// The single invariant guard: turns an `Option` that must be `Some` into
/// a typed [`ForemanError::Invariant`] naming what was violated.
pub(crate) fn invariant<V>(value: Option<V>, what: &'static str) -> Result<V, ForemanError> {
    value.ok_or(ForemanError::Invariant(what))
}

/// Foreman statistics returned at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForemanStats {
    /// Tree dispatches to workers (including re-dispatches).
    pub dispatched: u64,
    /// Results accepted and forwarded to the master.
    pub results_forwarded: u64,
    /// Worker timeouts declared.
    pub timeouts: u64,
    /// Delinquent workers re-admitted after answering late.
    pub recoveries: u64,
    /// Late/duplicate results ignored.
    pub duplicates_ignored: u64,
    /// Tasks that exhausted their failure budget and were handed to the
    /// master for local evaluation.
    pub quarantined: u64,
}

/// What a queued task asks a worker to do: evaluate one candidate tree, or
/// run a whole jumble. The foreman's scheduling (ready queue, timeouts,
/// eager requeue, duplicate dedup) is identical for both — only the
/// dispatched message differs.
#[derive(Debug, Clone)]
pub(crate) enum TaskBody {
    /// One candidate tree as Newick text.
    Tree(String),
    /// One whole stepwise-addition search, identified by its jumble seed.
    Jumble(u64),
    /// A jumble resumed from (and streaming back to) the coordinator's
    /// write-ahead log. Requeue-safe: a second worker replays the same
    /// prefix and, by determinism, re-streams the identical rounds, which
    /// the coordinator's index-gated appends deduplicate.
    JumbleResume {
        /// The job the jumble belongs to (0 = the anonymous farm).
        job: u64,
        /// The jumble seed.
        seed: u64,
        /// The committed rounds to replay, one JSON `WalRound` each.
        wal: Vec<String>,
    },
    /// One candidate edit against the round's broadcast base topology.
    Edit {
        /// Generation id of the base the edit applies to.
        base_id: u64,
        /// The edit itself.
        edit: TreeEdit,
        /// Force the dispatched message to embed the base text. Set when
        /// the task is requeued after a failure: the next worker to take
        /// it may be a fresh respawn with no cached base, and a
        /// self-contained dispatch is the rung of the fallback ladder that
        /// keeps the self-healing invariants independent of cache state.
        self_contained: bool,
    },
}

impl TaskBody {
    /// Parse a dispatched task message back into its queue form — the
    /// inverse of [`TaskBody::to_message`], used when tasks travel between
    /// scheduling tiers (root grants, steal returns, reclaimed leases).
    /// Returns `None` for non-task messages.
    pub(crate) fn from_message(msg: &Message) -> Option<(u64, TaskBody)> {
        match msg {
            Message::TreeTask { task, newick } => Some((*task, TaskBody::Tree(newick.clone()))),
            Message::JumbleTask { task, seed } => Some((*task, TaskBody::Jumble(*seed))),
            Message::JumbleResume {
                job,
                task,
                seed,
                wal,
            } => Some((
                *task,
                TaskBody::JumbleResume {
                    job: *job,
                    seed: *seed,
                    wal: wal.clone(),
                },
            )),
            Message::TreeEditTask {
                task,
                base_id,
                edit,
                base_newick,
            } => Some((
                *task,
                TaskBody::Edit {
                    base_id: *base_id,
                    edit: *edit,
                    // A task that travels with its base embedded stays
                    // self-contained: whoever dispatches it next cannot
                    // assume the receiving worker saw any broadcast.
                    self_contained: base_newick.is_some(),
                },
            )),
            _ => None,
        }
    }

    /// `base_text` is the base to embed for an [`TaskBody::Edit`]; `None`
    /// dispatches the compact form (the worker is known to hold the base).
    pub(crate) fn to_message(&self, task: u64, base_text: Option<&str>) -> Message {
        match self {
            TaskBody::Tree(newick) => Message::TreeTask {
                task,
                newick: newick.clone(),
            },
            TaskBody::Jumble(seed) => Message::JumbleTask { task, seed: *seed },
            TaskBody::JumbleResume { job, seed, wal } => Message::JumbleResume {
                job: *job,
                task,
                seed: *seed,
                wal: wal.clone(),
            },
            TaskBody::Edit { base_id, edit, .. } => Message::TreeEditTask {
                task,
                base_id: *base_id,
                edit: *edit,
                base_newick: base_text.map(str::to_owned),
            },
        }
    }

    /// Force the self-contained dispatch form (edits embed their base from
    /// here on). Identity for non-edit bodies.
    pub(crate) fn self_contained(self) -> TaskBody {
        match self {
            TaskBody::Edit { base_id, edit, .. } => TaskBody::Edit {
                base_id,
                edit,
                self_contained: true,
            },
            other => other,
        }
    }

    pub(crate) fn into_payload(self) -> TaskPayload {
        match self {
            TaskBody::Tree(newick) => TaskPayload::Tree { newick },
            TaskBody::Jumble(seed) => TaskPayload::Jumble { seed },
            // The master re-runs a quarantined jumble locally against its
            // own WAL copy; the streamed prefix need not travel back.
            TaskBody::JumbleResume { seed, .. } => TaskPayload::Jumble { seed },
            TaskBody::Edit { base_id, edit, .. } => TaskPayload::TreeEdit { base_id, edit },
        }
    }
}

pub(crate) struct InFlight {
    pub(crate) worker: Rank,
    pub(crate) body: TaskBody,
    pub(crate) dispatched_at: Instant,
}

/// The foreman's mutable scheduling state, bundled so the failure /
/// quarantine bookkeeping can live in one place. Shared with the regional
/// foremen of [`crate::hierarchy`], which run the identical worker-facing
/// machinery under a leased task supply.
#[derive(Default)]
pub(crate) struct Sched {
    pub(crate) work_queue: VecDeque<(u64, TaskBody)>,
    pub(crate) ready: VecDeque<Rank>,
    pub(crate) in_flight: HashMap<u64, InFlight>,
    pub(crate) delinquent: HashSet<Rank>,
    /// Workers whose link is known dead (failed send, or a transport
    /// `PeerDown`). Distinct from `delinquent`: a delinquent worker may
    /// still answer; a dead one cannot until the transport says `PeerUp`.
    pub(crate) dead: HashSet<Rank>,
    pub(crate) completed: HashSet<u64>,
    /// Per-task set of distinct workers that failed it, for the
    /// poison-task quarantine budget.
    pub(crate) failures: HashMap<u64, HashSet<Rank>>,
    /// The current base topology broadcast (generation id + Newick text),
    /// kept so edit dispatches can fall back to embedding the base for
    /// workers that missed the broadcast.
    pub(crate) base: Option<(u64, String)>,
    /// Workers known to hold the current base broadcast. A rank leaves the
    /// set when its link dies (a respawn has an empty cache) and rejoins
    /// when the foreman relays the base to it.
    pub(crate) has_base: HashSet<Rank>,
    pub(crate) stats: ForemanStats,
}

impl Sched {
    /// Attribute a failure of `task` (held by `worker`) and decide its
    /// fate: requeued (front or back), or — once [`QUARANTINE_BUDGET`]
    /// distinct workers have failed it — quarantined. Returns the
    /// `Quarantined` message to forward to the master in the latter case.
    pub(crate) fn fail_task(
        &mut self,
        task: u64,
        body: TaskBody,
        worker: Rank,
        front: bool,
        obs: &Obs,
    ) -> Option<Message> {
        let set = self.failures.entry(task).or_default();
        set.insert(worker);
        let failures = set.len() as u64;
        // A requeued edit must be scoreable by any worker, including a
        // fresh respawn that has no cached base: force the self-contained
        // dispatch form from here on.
        let body = body.self_contained();
        if failures >= QUARANTINE_BUDGET {
            // The task has now serially killed (or stalled) several
            // different workers: stop feeding it to the fleet. Marking it
            // completed makes any late answers plain duplicates.
            self.failures.remove(&task);
            self.completed.insert(task);
            self.stats.quarantined += 1;
            obs.emit(|| Event::TaskQuarantined { task, failures });
            Some(Message::Quarantined {
                task,
                failures,
                payload: body.into_payload(),
            })
        } else {
            if front {
                self.work_queue.push_front((task, body));
            } else {
                self.work_queue.push_back((task, body));
            }
            None
        }
    }

    /// Declare `worker`'s link dead: eagerly requeue everything it holds
    /// (instead of waiting out the timeout) and bar it from dispatch.
    /// Returns any `Quarantined` messages the requeues produced.
    pub(crate) fn peer_down(&mut self, worker: Rank, obs: &Obs) -> Vec<(u64, Option<Message>)> {
        self.dead.insert(worker);
        self.delinquent.insert(worker);
        self.has_base.remove(&worker);
        self.ready.retain(|&w| w != worker);
        let held: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, f)| f.worker == worker)
            .map(|(&t, _)| t)
            .collect();
        let mut out = Vec::new();
        for task in held {
            if let Some(f) = self.in_flight.remove(&task) {
                self.stats.timeouts += 1;
                let quarantined = self.fail_task(task, f.body, worker, true, obs);
                out.push((task, quarantined));
            }
        }
        out
    }
}

/// Run the foreman loop until the master sends `Shutdown`.
///
/// `worker_timeout` is the fault-tolerance parameter: a worker holding a
/// tree longer than this is marked delinquent, removed from the ready
/// queue, and the tree goes to a different worker; if the delinquent worker
/// answers later it is re-admitted (paper §2.2).
///
/// Pass [`Obs::disabled`] to run unobserved; otherwise every scheduling
/// action emits an [`Event::QueueDepth`] sample, and each accepted result
/// carries its dispatch-to-result latency (`service_us`) to the monitor.
pub fn run_foreman<T: Transport>(
    transport: T,
    worker_timeout: Duration,
    has_monitor: bool,
    obs: Obs,
) -> Result<ForemanStats, ForemanError> {
    let mut s = Sched::default();
    let tick = (worker_timeout / 4)
        .max(Duration::from_millis(1))
        .min(Duration::from_millis(50));

    let monitor = |t: &T, ev: MonitorEvent| {
        if has_monitor {
            let _ = t.send(ranks::MONITOR, &Message::Monitor(ev));
        }
    };

    let mut last_depth: Option<(usize, usize, usize)> = None;
    let mut aborted = false;
    let mut next_ping: HashMap<Rank, Instant> = HashMap::new();

    loop {
        // Dispatch while both queues are non-empty.
        while !s.work_queue.is_empty() && !s.ready.is_empty() {
            let worker = invariant(s.ready.pop_front(), "ready queue emptied mid-dispatch")?;
            if s.delinquent.contains(&worker) {
                continue;
            }
            let (task, body) =
                invariant(s.work_queue.pop_front(), "work queue emptied mid-dispatch")?;
            // Fallback ladder for edits: embed the base text when the task
            // was requeued (self-contained) or this worker missed the
            // broadcast; dispatch the compact form otherwise.
            let embed_base = match &body {
                TaskBody::Edit {
                    base_id,
                    self_contained,
                    ..
                } => s
                    .base
                    .as_ref()
                    .filter(|(id, _)| id == base_id)
                    .filter(|_| *self_contained || !s.has_base.contains(&worker))
                    .map(|(_, text)| text.clone()),
                _ => None,
            };
            match transport.send(worker, &body.to_message(task, embed_base.as_deref())) {
                Ok(()) => {}
                // A dead link is the network analogue of a delinquent
                // worker: re-queue the task immediately instead of waiting
                // for the timeout to notice (paper §2.2's recovery path,
                // triggered eagerly).
                Err(CommError::Disconnected(_)) => {
                    s.delinquent.insert(worker);
                    s.dead.insert(worker);
                    s.has_base.remove(&worker);
                    s.stats.timeouts += 1;
                    monitor(&transport, MonitorEvent::WorkerTimedOut { worker, task });
                    if let Some(q) = s.fail_task(task, body, worker, true, &obs) {
                        transport.send(ranks::MASTER, &q)?;
                    }
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
            if embed_base.is_some() {
                // The embedded base is installed by the worker on receipt,
                // so its later tasks in this round can go compact again.
                s.has_base.insert(worker);
            }
            s.in_flight.insert(
                task,
                InFlight {
                    worker,
                    body,
                    dispatched_at: Instant::now(),
                },
            );
            s.stats.dispatched += 1;
            monitor(&transport, MonitorEvent::Dispatched { task, worker });
        }

        // Fault tolerance: re-queue trees held past the timeout.
        let now = Instant::now();
        let timed_out: Vec<u64> = s
            .in_flight
            .iter()
            .filter(|(_, f)| now.duration_since(f.dispatched_at) > worker_timeout)
            .map(|(&task, _)| task)
            .collect();
        for task in timed_out {
            let f = invariant(s.in_flight.remove(&task), "timed-out task not in flight")?;
            s.delinquent.insert(f.worker);
            s.ready.retain(|&w| w != f.worker);
            s.stats.timeouts += 1;
            monitor(
                &transport,
                MonitorEvent::WorkerTimedOut {
                    worker: f.worker,
                    task,
                },
            );
            if let Some(q) = s.fail_task(task, f.body, f.worker, false, &obs) {
                transport.send(ranks::MASTER, &q)?;
            }
        }

        // Liveness probe: a delinquent worker receives no new work, so a
        // silently dead one would never be rediscovered — and without it
        // the all-dead check below could never trip on the threaded
        // transport. While work is outstanding, ping each delinquent,
        // not-known-dead worker once per timeout period. An idle live
        // worker answers `WorkerReady` and is re-admitted; a dropped
        // thread endpoint fails the send, which is that transport's
        // death certificate (TCP peers get `PeerDown` from the hub).
        if !s.work_queue.is_empty() || !s.in_flight.is_empty() {
            let due: Vec<Rank> = s
                .delinquent
                .iter()
                .copied()
                .filter(|w| !s.dead.contains(w))
                .filter(|w| next_ping.get(w).is_none_or(|&t| now >= t))
                .collect();
            for worker in due {
                next_ping.insert(worker, now + worker_timeout);
                if let Err(CommError::Disconnected(_)) = transport.send(worker, &Message::Ping) {
                    for (task, quarantined) in s.peer_down(worker, &obs) {
                        monitor(&transport, MonitorEvent::WorkerTimedOut { worker, task });
                        if let Some(q) = quarantined {
                            transport.send(ranks::MASTER, &q)?;
                        }
                    }
                }
            }
        }

        // The run cannot heal if every worker's link is dead while work is
        // outstanding: tell the master (which surfaces a typed error and
        // leaves its last checkpoint valid) rather than spinning forever.
        let size = transport.size();
        if !aborted
            && size > ranks::FIRST_WORKER
            && (ranks::FIRST_WORKER..size).all(|r| s.dead.contains(&r))
            && (!s.work_queue.is_empty() || !s.in_flight.is_empty())
        {
            aborted = true;
            let reason = format!(
                "all {} workers are dead with {} tasks outstanding",
                size - ranks::FIRST_WORKER,
                s.work_queue.len() + s.in_flight.len()
            );
            transport.send(ranks::MASTER, &Message::Abort { reason })?;
        }

        // One queue-depth sample per state change (paper §3: "queue-length
        // data from the foreman").
        let depth = (s.work_queue.len(), s.ready.len(), s.in_flight.len());
        if last_depth != Some(depth) {
            last_depth = Some(depth);
            obs.emit(|| Event::QueueDepth {
                work: depth.0,
                ready: depth.1,
                in_flight: depth.2,
            });
        }

        match transport.recv_timeout(tick)? {
            None => continue,
            Some((from, msg)) => match msg {
                Message::TreeTask { task, newick } => {
                    debug_assert_eq!(from, ranks::MASTER);
                    s.work_queue.push_back((task, TaskBody::Tree(newick)));
                }
                Message::JumbleTask { task, seed } => {
                    debug_assert_eq!(from, ranks::MASTER);
                    s.work_queue.push_back((task, TaskBody::Jumble(seed)));
                }
                msg @ Message::JumbleResume { .. } => {
                    debug_assert_eq!(from, ranks::MASTER);
                    if let Some((task, body)) = TaskBody::from_message(&msg) {
                        s.work_queue.push_back((task, body));
                    }
                }
                msg @ Message::WalRound { .. } => {
                    // A worker streaming one committed round of its jumble:
                    // relay to the master, which owns the on-disk log. No
                    // dedup here — the coordinator's append is index-gated.
                    transport.send(ranks::MASTER, &msg)?;
                }
                Message::BaseTopology { base_id, newick } => {
                    // A new round base from the master: remember it for
                    // embedded fallbacks and relay it to every live worker.
                    // Per-link FIFO guarantees the base precedes any edit
                    // of the round on each worker's queue.
                    debug_assert_eq!(from, ranks::MASTER);
                    s.has_base.clear();
                    for rank in ranks::FIRST_WORKER..transport.size() {
                        if s.dead.contains(&rank) {
                            continue;
                        }
                        let relay = Message::BaseTopology {
                            base_id,
                            newick: newick.clone(),
                        };
                        if transport.send(rank, &relay).is_ok() {
                            s.has_base.insert(rank);
                        }
                    }
                    s.base = Some((base_id, newick));
                }
                Message::TreeEditTask {
                    task,
                    base_id,
                    edit,
                    ..
                } => {
                    debug_assert_eq!(from, ranks::MASTER);
                    s.work_queue.push_back((
                        task,
                        TaskBody::Edit {
                            base_id,
                            edit,
                            self_contained: false,
                        },
                    ));
                }
                msg @ (Message::TreeResult { .. } | Message::JumbleResult { .. }) => {
                    let (task, ln_likelihood, work_units) = match &msg {
                        Message::TreeResult {
                            task,
                            ln_likelihood,
                            work_units,
                            ..
                        }
                        | Message::JumbleResult {
                            task,
                            ln_likelihood,
                            work_units,
                            ..
                        } => (*task, *ln_likelihood, *work_units),
                        _ => unreachable!("outer pattern admits only results"),
                    };
                    // A worker that answers is demonstrably alive.
                    s.dead.remove(&from);
                    if s.delinquent.remove(&from) {
                        s.stats.recoveries += 1;
                        monitor(&transport, MonitorEvent::WorkerRecovered { worker: from });
                    }
                    let was_expected = s
                        .in_flight
                        .get(&task)
                        .map(|f| f.worker == from)
                        .unwrap_or(false);
                    let is_new = !s.completed.contains(&task)
                        && (was_expected
                            || s.work_queue.iter().any(|(t, _)| *t == task)
                            || s.in_flight.contains_key(&task));
                    if is_new {
                        s.completed.insert(task);
                        s.failures.remove(&task);
                        let service_us = s
                            .in_flight
                            .remove(&task)
                            .map(|f| f.dispatched_at.elapsed().as_micros() as u64)
                            .unwrap_or(0);
                        s.work_queue.retain(|(t, _)| *t != task);
                        transport.send(ranks::MASTER, &msg)?;
                        s.stats.results_forwarded += 1;
                        monitor(
                            &transport,
                            MonitorEvent::Completed {
                                task,
                                worker: from,
                                ln_likelihood,
                                work_units,
                                service_us,
                            },
                        );
                    } else {
                        s.stats.duplicates_ignored += 1;
                    }
                    s.ready.push_back(from);
                }
                Message::WorkerReady => {
                    s.dead.remove(&from);
                    if s.delinquent.remove(&from) {
                        s.stats.recoveries += 1;
                        monitor(&transport, MonitorEvent::WorkerRecovered { worker: from });
                    }
                    // A worker announcing readiness without the current
                    // base is either fresh or a respawn: send the base now
                    // so its edit dispatches can go compact.
                    if !s.has_base.contains(&from) {
                        if let Some((base_id, newick)) = &s.base {
                            let relay = Message::BaseTopology {
                                base_id: *base_id,
                                newick: newick.clone(),
                            };
                            if transport.send(from, &relay).is_ok() {
                                s.has_base.insert(from);
                            }
                        }
                    }
                    // A respawned worker may re-announce while already
                    // queued; one slot per worker keeps dispatch fair.
                    if !s.ready.contains(&from) {
                        s.ready.push_back(from);
                    }
                }
                Message::PeerDown { rank } => {
                    // Synthesized by the transport (the TCP hub); on the
                    // threaded transport the failed-send path plays this
                    // role. Eagerly requeue whatever the lost rank held.
                    let requeued = s.peer_down(rank, &obs);
                    for (task, quarantined) in requeued {
                        monitor(
                            &transport,
                            MonitorEvent::WorkerTimedOut { worker: rank, task },
                        );
                        if let Some(q) = quarantined {
                            transport.send(ranks::MASTER, &q)?;
                        }
                    }
                }
                Message::PeerUp { rank } => {
                    // The rank rejoined (reconnect or supervisor respawn).
                    // It will announce `WorkerReady` once it has rebuilt
                    // its engine; until then just stop treating it as dead.
                    s.dead.remove(&rank);
                    if s.delinquent.remove(&rank) {
                        s.stats.recoveries += 1;
                        monitor(&transport, MonitorEvent::WorkerRecovered { worker: rank });
                    }
                }
                Message::Shutdown => {
                    debug_assert_eq!(from, ranks::MASTER);
                    for rank in ranks::FIRST_WORKER..transport.size() {
                        let _ = transport.send(rank, &Message::Shutdown);
                    }
                    if has_monitor {
                        let _ = transport.send(ranks::MONITOR, &Message::Shutdown);
                    }
                    return Ok(s.stats);
                }
                other => {
                    debug_assert!(false, "foreman got unexpected {}", other.kind());
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_comm::threads::ThreadUniverse;
    use std::thread;

    /// Stand up a foreman with scripted master and worker behaviour.
    fn universe(n: usize) -> Vec<fdml_comm::threads::ThreadTransport> {
        ThreadUniverse::create(n)
    }

    /// Receive, skipping liveness probes: a scripted worker that stalls
    /// past the timeout accumulates `Ping`s in its queue.
    fn recv_skipping_pings(t: &fdml_comm::threads::ThreadTransport) -> Message {
        loop {
            let (_, msg) = t.recv().unwrap();
            if msg != Message::Ping {
                return msg;
            }
        }
    }

    #[test]
    fn dispatches_to_ready_workers_and_forwards_results() {
        let mut ends = universe(4);
        let worker = ends.remove(3);
        let foreman_end = ends.remove(1);
        let master = ends.remove(0);
        let f = thread::spawn(move || {
            run_foreman(foreman_end, Duration::from_secs(5), false, Obs::disabled()).unwrap()
        });
        // Worker announces readiness, master queues a task.
        worker.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        master
            .send(
                ranks::FOREMAN,
                &Message::TreeTask {
                    task: 1,
                    newick: "(a,b);".into(),
                },
            )
            .unwrap();
        // Worker receives the dispatch.
        let (_, msg) = worker.recv().unwrap();
        let Message::TreeTask { task, .. } = msg else {
            panic!("expected task")
        };
        assert_eq!(task, 1);
        worker
            .send(
                ranks::FOREMAN,
                &Message::TreeResult {
                    task: 1,
                    newick: "(a:1,b:1);".into(),
                    ln_likelihood: -9.0,
                    work_units: 3,
                },
            )
            .unwrap();
        // Master receives the forwarded result.
        let (_, msg) = master.recv().unwrap();
        let Message::TreeResult {
            task,
            ln_likelihood,
            ..
        } = msg
        else {
            panic!()
        };
        assert_eq!(task, 1);
        assert_eq!(ln_likelihood, -9.0);
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        // Worker gets the cascaded shutdown.
        let (_, msg) = worker.recv().unwrap();
        assert_eq!(msg, Message::Shutdown);
        let stats = f.join().unwrap();
        assert_eq!(stats.dispatched, 1);
        assert_eq!(stats.results_forwarded, 1);
        assert_eq!(stats.timeouts, 0);
    }

    #[test]
    fn timeout_requeues_to_other_worker_and_recovers_delinquent() {
        let mut ends = universe(5);
        let w2 = ends.remove(4);
        let w1 = ends.remove(3);
        let foreman_end = ends.remove(1);
        let master = ends.remove(0);
        let f = thread::spawn(move || {
            run_foreman(
                foreman_end,
                Duration::from_millis(60),
                false,
                Obs::disabled(),
            )
            .unwrap()
        });
        w1.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        master
            .send(
                ranks::FOREMAN,
                &Message::TreeTask {
                    task: 7,
                    newick: "(a,b);".into(),
                },
            )
            .unwrap();
        // w1 receives the task but stalls past the timeout.
        let (_, msg) = w1.recv().unwrap();
        assert!(matches!(msg, Message::TreeTask { task: 7, .. }));
        thread::sleep(Duration::from_millis(120));
        // Second worker comes online; the re-queued task goes to it.
        w2.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        let (_, msg) = w2.recv().unwrap();
        assert!(
            matches!(msg, Message::TreeTask { task: 7, .. }),
            "requeued task must reach w2"
        );
        w2.send(
            ranks::FOREMAN,
            &Message::TreeResult {
                task: 7,
                newick: "(a:1,b:1);".into(),
                ln_likelihood: -5.0,
                work_units: 2,
            },
        )
        .unwrap();
        let (_, msg) = master.recv().unwrap();
        assert!(matches!(msg, Message::TreeResult { task: 7, .. }));
        // The delinquent worker answers late: ignored as duplicate, but the
        // worker is recovered and re-admitted to the ready queue.
        w1.send(
            ranks::FOREMAN,
            &Message::TreeResult {
                task: 7,
                newick: "(a:2,b:2);".into(),
                ln_likelihood: -6.0,
                work_units: 2,
            },
        )
        .unwrap();
        // Two more tasks: the ready queue now holds [w2, w1], so task 8
        // goes to w2 and task 9 to the recovered w1. Both reply promptly so
        // no further timeout can fire.
        for t in [8u64, 9] {
            master
                .send(
                    ranks::FOREMAN,
                    &Message::TreeTask {
                        task: t,
                        newick: "(a,b);".into(),
                    },
                )
                .unwrap();
        }
        for w in [&w2, &w1] {
            let msg = recv_skipping_pings(w);
            let Message::TreeTask { task, .. } = msg else {
                panic!("expected task")
            };
            assert!(task == 8 || task == 9);
            w.send(
                ranks::FOREMAN,
                &Message::TreeResult {
                    task,
                    newick: "(a:1,b:1);".into(),
                    ln_likelihood: -4.0,
                    work_units: 1,
                },
            )
            .unwrap();
        }
        // Master sees results for tasks 8 and 9.
        for _ in 0..2 {
            let (_, msg) = master.recv().unwrap();
            assert!(matches!(msg, Message::TreeResult { .. }));
        }
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        let stats = f.join().unwrap();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.duplicates_ignored, 1);
        assert_eq!(stats.results_forwarded, 3);
    }

    #[test]
    fn disconnected_worker_requeues_without_waiting_for_timeout() {
        let mut ends = universe(5);
        let w2 = ends.remove(4);
        let w1 = ends.remove(3);
        let foreman_end = ends.remove(1);
        let master = ends.remove(0);
        // A long timeout: if the eager path didn't fire, the test would hang
        // far past its deadline waiting for the timer.
        let f = thread::spawn(move || {
            run_foreman(foreman_end, Duration::from_secs(60), false, Obs::disabled()).unwrap()
        });
        w1.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        // w1 dies before any task reaches it.
        drop(w1);
        master
            .send(
                ranks::FOREMAN,
                &Message::TreeTask {
                    task: 3,
                    newick: "(a,b);".into(),
                },
            )
            .unwrap();
        // The dispatch to the dead w1 fails; the tree must go to w2 as soon
        // as it announces itself.
        w2.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        let (_, msg) = w2.recv().unwrap();
        assert!(matches!(msg, Message::TreeTask { task: 3, .. }));
        w2.send(
            ranks::FOREMAN,
            &Message::TreeResult {
                task: 3,
                newick: "(a:1,b:1);".into(),
                ln_likelihood: -2.0,
                work_units: 1,
            },
        )
        .unwrap();
        let (_, msg) = master.recv().unwrap();
        assert!(matches!(msg, Message::TreeResult { task: 3, .. }));
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        let stats = f.join().unwrap();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.results_forwarded, 1);
    }

    #[test]
    fn jumble_tasks_use_the_same_scheduling_machinery() {
        let mut ends = universe(4);
        let worker = ends.remove(3);
        let foreman_end = ends.remove(1);
        let master = ends.remove(0);
        let f = thread::spawn(move || {
            run_foreman(foreman_end, Duration::from_secs(5), false, Obs::disabled()).unwrap()
        });
        worker.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        master
            .send(ranks::FOREMAN, &Message::JumbleTask { task: 5, seed: 9 })
            .unwrap();
        let (_, msg) = worker.recv().unwrap();
        assert_eq!(msg, Message::JumbleTask { task: 5, seed: 9 });
        let result = Message::JumbleResult {
            task: 5,
            seed: 9,
            newick: "(a:1,b:1);".into(),
            ln_likelihood: -7.0,
            rounds: 2,
            candidates: 6,
            work_units: 11,
        };
        worker.send(ranks::FOREMAN, &result).unwrap();
        // The whole result (seed, rounds, candidates) reaches the master.
        let (_, msg) = master.recv().unwrap();
        assert_eq!(msg, result);
        // A duplicate is ignored, not forwarded twice.
        worker.send(ranks::FOREMAN, &result).unwrap();
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        let stats = f.join().unwrap();
        assert_eq!(stats.dispatched, 1);
        assert_eq!(stats.results_forwarded, 1);
        assert_eq!(stats.duplicates_ignored, 1);
    }

    #[test]
    fn monitor_receives_events_when_present() {
        let mut ends = universe(4);
        let worker = ends.remove(3);
        let monitor = ends.remove(2);
        let foreman_end = ends.remove(1);
        let master = ends.remove(0);
        let f = thread::spawn(move || {
            run_foreman(foreman_end, Duration::from_secs(5), true, Obs::disabled()).unwrap()
        });
        worker.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        master
            .send(
                ranks::FOREMAN,
                &Message::TreeTask {
                    task: 1,
                    newick: "(a,b);".into(),
                },
            )
            .unwrap();
        let (_, ev) = monitor.recv().unwrap();
        assert!(matches!(
            ev,
            Message::Monitor(MonitorEvent::Dispatched { task: 1, .. })
        ));
        worker.recv().unwrap();
        worker
            .send(
                ranks::FOREMAN,
                &Message::TreeResult {
                    task: 1,
                    newick: "(a,b);".into(),
                    ln_likelihood: -1.0,
                    work_units: 1,
                },
            )
            .unwrap();
        let (_, ev) = monitor.recv().unwrap();
        assert!(matches!(
            ev,
            Message::Monitor(MonitorEvent::Completed { task: 1, .. })
        ));
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        let (_, ev) = monitor.recv().unwrap();
        assert_eq!(ev, Message::Shutdown);
        f.join().unwrap();
    }

    #[test]
    fn poison_task_is_quarantined_after_distinct_worker_failures() {
        use fdml_comm::message::TaskPayload;
        // Three workers; a short timeout so each "failure" is quick.
        let mut ends = universe(6);
        let w3 = ends.remove(5);
        let w2 = ends.remove(4);
        let w1 = ends.remove(3);
        let foreman_end = ends.remove(1);
        let master = ends.remove(0);
        let f = thread::spawn(move || {
            run_foreman(
                foreman_end,
                Duration::from_millis(40),
                false,
                Obs::disabled(),
            )
            .unwrap()
        });
        master
            .send(
                ranks::FOREMAN,
                &Message::TreeTask {
                    task: 13,
                    newick: "(poison);".into(),
                },
            )
            .unwrap();
        // Each worker in turn announces ready, receives the poison task,
        // and goes silent past the timeout — the serial-fleet-killer
        // scenario the quarantine budget exists for.
        for w in [&w1, &w2, &w3] {
            w.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
            let (_, msg) = w.recv().unwrap();
            assert!(matches!(msg, Message::TreeTask { task: 13, .. }));
            // Not answering; the foreman's timeout attributes a failure.
        }
        // After the third distinct failure the master gets the task back.
        let (_, msg) = master.recv().unwrap();
        match msg {
            Message::Quarantined {
                task,
                failures,
                payload,
            } => {
                assert_eq!(task, 13);
                assert_eq!(failures, QUARANTINE_BUDGET);
                assert_eq!(
                    payload,
                    TaskPayload::Tree {
                        newick: "(poison);".into()
                    }
                );
            }
            other => panic!("expected Quarantined, got {other:?}"),
        }
        // A late answer from a failed worker is a plain duplicate.
        w1.send(
            ranks::FOREMAN,
            &Message::TreeResult {
                task: 13,
                newick: "(poison:1);".into(),
                ln_likelihood: -1.0,
                work_units: 1,
            },
        )
        .unwrap();
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        let stats = f.join().unwrap();
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.timeouts, QUARANTINE_BUDGET);
        assert_eq!(stats.duplicates_ignored, 1);
        assert_eq!(stats.results_forwarded, 0);
    }

    #[test]
    fn peer_down_requeues_eagerly_and_peer_up_readmits() {
        let mut ends = universe(5);
        let w2 = ends.remove(4);
        let w1 = ends.remove(3);
        let foreman_end = ends.remove(1);
        let master = ends.remove(0);
        // Long timeout: only the PeerDown path can requeue in time.
        let f = thread::spawn(move || {
            run_foreman(foreman_end, Duration::from_secs(60), false, Obs::disabled()).unwrap()
        });
        w1.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        master
            .send(
                ranks::FOREMAN,
                &Message::TreeTask {
                    task: 4,
                    newick: "(a,b);".into(),
                },
            )
            .unwrap();
        let (_, msg) = w1.recv().unwrap();
        assert!(matches!(msg, Message::TreeTask { task: 4, .. }));
        // The transport reports w1's link lost while it holds task 4.
        master
            .send(ranks::FOREMAN, &Message::PeerDown { rank: 3 })
            .unwrap();
        // The task reaches w2 without waiting out the 60 s timeout.
        w2.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        let (_, msg) = w2.recv().unwrap();
        assert!(matches!(msg, Message::TreeTask { task: 4, .. }));
        w2.send(
            ranks::FOREMAN,
            &Message::TreeResult {
                task: 4,
                newick: "(a:1,b:1);".into(),
                ln_likelihood: -3.0,
                work_units: 1,
            },
        )
        .unwrap();
        let (_, msg) = master.recv().unwrap();
        assert!(matches!(msg, Message::TreeResult { task: 4, .. }));
        // w1 rejoins; after PeerUp + WorkerReady it gets work again.
        master
            .send(ranks::FOREMAN, &Message::PeerUp { rank: 3 })
            .unwrap();
        w1.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        master
            .send(
                ranks::FOREMAN,
                &Message::TreeTask {
                    task: 5,
                    newick: "(a,b);".into(),
                },
            )
            .unwrap();
        // Ready order is [w2, w1]; w2 answers 5, then 6 must reach w1.
        let (_, msg) = w2.recv().unwrap();
        assert!(matches!(msg, Message::TreeTask { task: 5, .. }));
        w2.send(
            ranks::FOREMAN,
            &Message::TreeResult {
                task: 5,
                newick: "(a:1,b:1);".into(),
                ln_likelihood: -3.0,
                work_units: 1,
            },
        )
        .unwrap();
        master
            .send(
                ranks::FOREMAN,
                &Message::TreeTask {
                    task: 6,
                    newick: "(a,b);".into(),
                },
            )
            .unwrap();
        let (_, msg) = w1.recv().unwrap();
        assert!(matches!(msg, Message::TreeTask { task: 6, .. }));
        w1.send(
            ranks::FOREMAN,
            &Message::TreeResult {
                task: 6,
                newick: "(a:1,b:1);".into(),
                ln_likelihood: -3.0,
                work_units: 1,
            },
        )
        .unwrap();
        for _ in 0..2 {
            let (_, msg) = master.recv().unwrap();
            assert!(matches!(msg, Message::TreeResult { .. }));
        }
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        let stats = f.join().unwrap();
        assert_eq!(stats.timeouts, 1, "PeerDown counts as one eager timeout");
        assert_eq!(stats.recoveries, 1, "PeerUp re-admitted w1");
        assert_eq!(stats.results_forwarded, 3);
    }

    #[test]
    fn all_workers_dead_sends_abort_to_master() {
        let mut ends = universe(4);
        let worker = ends.remove(3);
        let foreman_end = ends.remove(1);
        let master = ends.remove(0);
        let f = thread::spawn(move || {
            run_foreman(foreman_end, Duration::from_secs(60), false, Obs::disabled()).unwrap()
        });
        worker.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        // The only worker dies while holding the only task.
        drop(worker);
        master
            .send(
                ranks::FOREMAN,
                &Message::TreeTask {
                    task: 1,
                    newick: "(a,b);".into(),
                },
            )
            .unwrap();
        let (_, msg) = master.recv().unwrap();
        match msg {
            Message::Abort { reason } => {
                assert!(reason.contains("dead"), "reason was: {reason}");
            }
            other => panic!("expected Abort, got {other:?}"),
        }
        // The foreman is still responsive: an orderly shutdown works.
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        f.join().unwrap();
    }
}
