//! The foreman process (paper §2.2): "dispatches trees to worker processes
//! for analysis, receives back trees and their associated likelihood
//! values… The foreman manages this process via a work queue and a ready
//! queue. The work queue includes a record of the tree dispatched to each
//! worker and the time the tree was dispatched (used to implement fault
//! tolerance)."

use crate::worker::ranks;
use fdml_comm::message::{Message, MonitorEvent};
use fdml_comm::transport::{CommError, Rank, Transport};
use fdml_obs::{Event, Obs};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// Foreman statistics returned at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForemanStats {
    /// Tree dispatches to workers (including re-dispatches).
    pub dispatched: u64,
    /// Results accepted and forwarded to the master.
    pub results_forwarded: u64,
    /// Worker timeouts declared.
    pub timeouts: u64,
    /// Delinquent workers re-admitted after answering late.
    pub recoveries: u64,
    /// Late/duplicate results ignored.
    pub duplicates_ignored: u64,
}

/// What a queued task asks a worker to do: evaluate one candidate tree, or
/// run a whole jumble. The foreman's scheduling (ready queue, timeouts,
/// eager requeue, duplicate dedup) is identical for both — only the
/// dispatched message differs.
#[derive(Debug, Clone)]
enum TaskBody {
    /// One candidate tree as Newick text.
    Tree(String),
    /// One whole stepwise-addition search, identified by its jumble seed.
    Jumble(u64),
}

impl TaskBody {
    fn to_message(&self, task: u64) -> Message {
        match self {
            TaskBody::Tree(newick) => Message::TreeTask {
                task,
                newick: newick.clone(),
            },
            TaskBody::Jumble(seed) => Message::JumbleTask { task, seed: *seed },
        }
    }
}

struct InFlight {
    worker: Rank,
    body: TaskBody,
    dispatched_at: Instant,
}

/// Run the foreman loop until the master sends `Shutdown`.
///
/// `worker_timeout` is the fault-tolerance parameter: a worker holding a
/// tree longer than this is marked delinquent, removed from the ready
/// queue, and the tree goes to a different worker; if the delinquent worker
/// answers later it is re-admitted (paper §2.2).
pub fn run_foreman<T: Transport>(
    transport: T,
    worker_timeout: Duration,
    has_monitor: bool,
) -> Result<ForemanStats, CommError> {
    run_foreman_observed(transport, worker_timeout, has_monitor, Obs::disabled())
}

/// [`run_foreman`] with instrumentation: every scheduling action emits an
/// [`Event::QueueDepth`] sample, and each accepted result carries its
/// dispatch-to-result latency (`service_us`) to the monitor.
pub fn run_foreman_observed<T: Transport>(
    transport: T,
    worker_timeout: Duration,
    has_monitor: bool,
    obs: Obs,
) -> Result<ForemanStats, CommError> {
    let mut stats = ForemanStats::default();
    let mut work_queue: VecDeque<(u64, TaskBody)> = VecDeque::new();
    let mut ready: VecDeque<Rank> = VecDeque::new();
    let mut in_flight: HashMap<u64, InFlight> = HashMap::new();
    let mut delinquent: HashSet<Rank> = HashSet::new();
    let mut completed: HashSet<u64> = HashSet::new();
    let tick = (worker_timeout / 4)
        .max(Duration::from_millis(1))
        .min(Duration::from_millis(50));

    let monitor = |t: &T, ev: MonitorEvent| {
        if has_monitor {
            let _ = t.send(ranks::MONITOR, &Message::Monitor(ev));
        }
    };

    let mut last_depth: Option<(usize, usize, usize)> = None;

    loop {
        // Dispatch while both queues are non-empty.
        while !work_queue.is_empty() && !ready.is_empty() {
            let worker = ready.pop_front().expect("checked non-empty");
            if delinquent.contains(&worker) {
                continue;
            }
            let (task, body) = work_queue.pop_front().expect("checked non-empty");
            match transport.send(worker, &body.to_message(task)) {
                Ok(()) => {}
                // A dead link is the network analogue of a delinquent
                // worker: re-queue the task immediately instead of waiting
                // for the timeout to notice (paper §2.2's recovery path,
                // triggered eagerly).
                Err(CommError::Disconnected(_)) => {
                    delinquent.insert(worker);
                    stats.timeouts += 1;
                    monitor(&transport, MonitorEvent::WorkerTimedOut { worker, task });
                    work_queue.push_front((task, body));
                    continue;
                }
                Err(e) => return Err(e),
            }
            in_flight.insert(
                task,
                InFlight {
                    worker,
                    body,
                    dispatched_at: Instant::now(),
                },
            );
            stats.dispatched += 1;
            monitor(&transport, MonitorEvent::Dispatched { task, worker });
        }

        // Fault tolerance: re-queue trees held past the timeout.
        let now = Instant::now();
        let timed_out: Vec<u64> = in_flight
            .iter()
            .filter(|(_, f)| now.duration_since(f.dispatched_at) > worker_timeout)
            .map(|(&task, _)| task)
            .collect();
        for task in timed_out {
            let f = in_flight.remove(&task).expect("key just listed");
            delinquent.insert(f.worker);
            ready.retain(|&w| w != f.worker);
            stats.timeouts += 1;
            monitor(
                &transport,
                MonitorEvent::WorkerTimedOut {
                    worker: f.worker,
                    task,
                },
            );
            work_queue.push_back((task, f.body));
        }

        // One queue-depth sample per state change (paper §3: "queue-length
        // data from the foreman").
        let depth = (work_queue.len(), ready.len(), in_flight.len());
        if last_depth != Some(depth) {
            last_depth = Some(depth);
            obs.emit(|| Event::QueueDepth {
                work: depth.0,
                ready: depth.1,
                in_flight: depth.2,
            });
        }

        match transport.recv_timeout(tick)? {
            None => continue,
            Some((from, msg)) => match msg {
                Message::TreeTask { task, newick } => {
                    debug_assert_eq!(from, ranks::MASTER);
                    work_queue.push_back((task, TaskBody::Tree(newick)));
                }
                Message::JumbleTask { task, seed } => {
                    debug_assert_eq!(from, ranks::MASTER);
                    work_queue.push_back((task, TaskBody::Jumble(seed)));
                }
                msg @ (Message::TreeResult { .. } | Message::JumbleResult { .. }) => {
                    let (task, ln_likelihood, work_units) = match &msg {
                        Message::TreeResult {
                            task,
                            ln_likelihood,
                            work_units,
                            ..
                        }
                        | Message::JumbleResult {
                            task,
                            ln_likelihood,
                            work_units,
                            ..
                        } => (*task, *ln_likelihood, *work_units),
                        _ => unreachable!("outer pattern admits only results"),
                    };
                    if delinquent.remove(&from) {
                        stats.recoveries += 1;
                        monitor(&transport, MonitorEvent::WorkerRecovered { worker: from });
                    }
                    let was_expected = in_flight
                        .get(&task)
                        .map(|f| f.worker == from)
                        .unwrap_or(false);
                    let is_new = !completed.contains(&task)
                        && (was_expected
                            || work_queue.iter().any(|(t, _)| *t == task)
                            || in_flight.contains_key(&task));
                    if is_new {
                        completed.insert(task);
                        let service_us = in_flight
                            .remove(&task)
                            .map(|f| f.dispatched_at.elapsed().as_micros() as u64)
                            .unwrap_or(0);
                        work_queue.retain(|(t, _)| *t != task);
                        transport.send(ranks::MASTER, &msg)?;
                        stats.results_forwarded += 1;
                        monitor(
                            &transport,
                            MonitorEvent::Completed {
                                task,
                                worker: from,
                                ln_likelihood,
                                work_units,
                                service_us,
                            },
                        );
                    } else {
                        stats.duplicates_ignored += 1;
                    }
                    ready.push_back(from);
                }
                Message::WorkerReady => {
                    ready.push_back(from);
                }
                Message::Shutdown => {
                    debug_assert_eq!(from, ranks::MASTER);
                    for rank in ranks::FIRST_WORKER..transport.size() {
                        let _ = transport.send(rank, &Message::Shutdown);
                    }
                    if has_monitor {
                        let _ = transport.send(ranks::MONITOR, &Message::Shutdown);
                    }
                    return Ok(stats);
                }
                other => {
                    debug_assert!(false, "foreman got unexpected {}", other.kind());
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_comm::threads::ThreadUniverse;
    use std::thread;

    /// Stand up a foreman with scripted master and worker behaviour.
    fn universe(n: usize) -> Vec<fdml_comm::threads::ThreadTransport> {
        ThreadUniverse::create(n)
    }

    #[test]
    fn dispatches_to_ready_workers_and_forwards_results() {
        let mut ends = universe(4);
        let worker = ends.remove(3);
        let foreman_end = ends.remove(1);
        let master = ends.remove(0);
        let f =
            thread::spawn(move || run_foreman(foreman_end, Duration::from_secs(5), false).unwrap());
        // Worker announces readiness, master queues a task.
        worker.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        master
            .send(
                ranks::FOREMAN,
                &Message::TreeTask {
                    task: 1,
                    newick: "(a,b);".into(),
                },
            )
            .unwrap();
        // Worker receives the dispatch.
        let (_, msg) = worker.recv().unwrap();
        let Message::TreeTask { task, .. } = msg else {
            panic!("expected task")
        };
        assert_eq!(task, 1);
        worker
            .send(
                ranks::FOREMAN,
                &Message::TreeResult {
                    task: 1,
                    newick: "(a:1,b:1);".into(),
                    ln_likelihood: -9.0,
                    work_units: 3,
                },
            )
            .unwrap();
        // Master receives the forwarded result.
        let (_, msg) = master.recv().unwrap();
        let Message::TreeResult {
            task,
            ln_likelihood,
            ..
        } = msg
        else {
            panic!()
        };
        assert_eq!(task, 1);
        assert_eq!(ln_likelihood, -9.0);
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        // Worker gets the cascaded shutdown.
        let (_, msg) = worker.recv().unwrap();
        assert_eq!(msg, Message::Shutdown);
        let stats = f.join().unwrap();
        assert_eq!(stats.dispatched, 1);
        assert_eq!(stats.results_forwarded, 1);
        assert_eq!(stats.timeouts, 0);
    }

    #[test]
    fn timeout_requeues_to_other_worker_and_recovers_delinquent() {
        let mut ends = universe(5);
        let w2 = ends.remove(4);
        let w1 = ends.remove(3);
        let foreman_end = ends.remove(1);
        let master = ends.remove(0);
        let f = thread::spawn(move || {
            run_foreman(foreman_end, Duration::from_millis(60), false).unwrap()
        });
        w1.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        master
            .send(
                ranks::FOREMAN,
                &Message::TreeTask {
                    task: 7,
                    newick: "(a,b);".into(),
                },
            )
            .unwrap();
        // w1 receives the task but stalls past the timeout.
        let (_, msg) = w1.recv().unwrap();
        assert!(matches!(msg, Message::TreeTask { task: 7, .. }));
        thread::sleep(Duration::from_millis(120));
        // Second worker comes online; the re-queued task goes to it.
        w2.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        let (_, msg) = w2.recv().unwrap();
        assert!(
            matches!(msg, Message::TreeTask { task: 7, .. }),
            "requeued task must reach w2"
        );
        w2.send(
            ranks::FOREMAN,
            &Message::TreeResult {
                task: 7,
                newick: "(a:1,b:1);".into(),
                ln_likelihood: -5.0,
                work_units: 2,
            },
        )
        .unwrap();
        let (_, msg) = master.recv().unwrap();
        assert!(matches!(msg, Message::TreeResult { task: 7, .. }));
        // The delinquent worker answers late: ignored as duplicate, but the
        // worker is recovered and re-admitted to the ready queue.
        w1.send(
            ranks::FOREMAN,
            &Message::TreeResult {
                task: 7,
                newick: "(a:2,b:2);".into(),
                ln_likelihood: -6.0,
                work_units: 2,
            },
        )
        .unwrap();
        // Two more tasks: the ready queue now holds [w2, w1], so task 8
        // goes to w2 and task 9 to the recovered w1. Both reply promptly so
        // no further timeout can fire.
        for t in [8u64, 9] {
            master
                .send(
                    ranks::FOREMAN,
                    &Message::TreeTask {
                        task: t,
                        newick: "(a,b);".into(),
                    },
                )
                .unwrap();
        }
        for w in [&w2, &w1] {
            let (_, msg) = w.recv().unwrap();
            let Message::TreeTask { task, .. } = msg else {
                panic!("expected task")
            };
            assert!(task == 8 || task == 9);
            w.send(
                ranks::FOREMAN,
                &Message::TreeResult {
                    task,
                    newick: "(a:1,b:1);".into(),
                    ln_likelihood: -4.0,
                    work_units: 1,
                },
            )
            .unwrap();
        }
        // Master sees results for tasks 8 and 9.
        for _ in 0..2 {
            let (_, msg) = master.recv().unwrap();
            assert!(matches!(msg, Message::TreeResult { .. }));
        }
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        let stats = f.join().unwrap();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.duplicates_ignored, 1);
        assert_eq!(stats.results_forwarded, 3);
    }

    #[test]
    fn disconnected_worker_requeues_without_waiting_for_timeout() {
        let mut ends = universe(5);
        let w2 = ends.remove(4);
        let w1 = ends.remove(3);
        let foreman_end = ends.remove(1);
        let master = ends.remove(0);
        // A long timeout: if the eager path didn't fire, the test would hang
        // far past its deadline waiting for the timer.
        let f = thread::spawn(move || {
            run_foreman(foreman_end, Duration::from_secs(60), false).unwrap()
        });
        w1.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        // w1 dies before any task reaches it.
        drop(w1);
        master
            .send(
                ranks::FOREMAN,
                &Message::TreeTask {
                    task: 3,
                    newick: "(a,b);".into(),
                },
            )
            .unwrap();
        // The dispatch to the dead w1 fails; the tree must go to w2 as soon
        // as it announces itself.
        w2.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        let (_, msg) = w2.recv().unwrap();
        assert!(matches!(msg, Message::TreeTask { task: 3, .. }));
        w2.send(
            ranks::FOREMAN,
            &Message::TreeResult {
                task: 3,
                newick: "(a:1,b:1);".into(),
                ln_likelihood: -2.0,
                work_units: 1,
            },
        )
        .unwrap();
        let (_, msg) = master.recv().unwrap();
        assert!(matches!(msg, Message::TreeResult { task: 3, .. }));
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        let stats = f.join().unwrap();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.results_forwarded, 1);
    }

    #[test]
    fn jumble_tasks_use_the_same_scheduling_machinery() {
        let mut ends = universe(4);
        let worker = ends.remove(3);
        let foreman_end = ends.remove(1);
        let master = ends.remove(0);
        let f =
            thread::spawn(move || run_foreman(foreman_end, Duration::from_secs(5), false).unwrap());
        worker.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        master
            .send(ranks::FOREMAN, &Message::JumbleTask { task: 5, seed: 9 })
            .unwrap();
        let (_, msg) = worker.recv().unwrap();
        assert_eq!(msg, Message::JumbleTask { task: 5, seed: 9 });
        let result = Message::JumbleResult {
            task: 5,
            seed: 9,
            newick: "(a:1,b:1);".into(),
            ln_likelihood: -7.0,
            rounds: 2,
            candidates: 6,
            work_units: 11,
        };
        worker.send(ranks::FOREMAN, &result).unwrap();
        // The whole result (seed, rounds, candidates) reaches the master.
        let (_, msg) = master.recv().unwrap();
        assert_eq!(msg, result);
        // A duplicate is ignored, not forwarded twice.
        worker.send(ranks::FOREMAN, &result).unwrap();
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        let stats = f.join().unwrap();
        assert_eq!(stats.dispatched, 1);
        assert_eq!(stats.results_forwarded, 1);
        assert_eq!(stats.duplicates_ignored, 1);
    }

    #[test]
    fn monitor_receives_events_when_present() {
        let mut ends = universe(4);
        let worker = ends.remove(3);
        let monitor = ends.remove(2);
        let foreman_end = ends.remove(1);
        let master = ends.remove(0);
        let f =
            thread::spawn(move || run_foreman(foreman_end, Duration::from_secs(5), true).unwrap());
        worker.send(ranks::FOREMAN, &Message::WorkerReady).unwrap();
        master
            .send(
                ranks::FOREMAN,
                &Message::TreeTask {
                    task: 1,
                    newick: "(a,b);".into(),
                },
            )
            .unwrap();
        let (_, ev) = monitor.recv().unwrap();
        assert!(matches!(
            ev,
            Message::Monitor(MonitorEvent::Dispatched { task: 1, .. })
        ));
        worker.recv().unwrap();
        worker
            .send(
                ranks::FOREMAN,
                &Message::TreeResult {
                    task: 1,
                    newick: "(a,b);".into(),
                    ln_likelihood: -1.0,
                    work_units: 1,
                },
            )
            .unwrap();
        let (_, ev) = monitor.recv().unwrap();
        assert!(matches!(
            ev,
            Message::Monitor(MonitorEvent::Completed { task: 1, .. })
        ));
        master.send(ranks::FOREMAN, &Message::Shutdown).unwrap();
        let (_, ev) = monitor.recv().unwrap();
        assert_eq!(ev, Message::Shutdown);
        f.join().unwrap();
    }
}
