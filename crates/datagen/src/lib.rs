//! Synthetic dataset generation.
//!
//! The paper's performance analysis uses three rRNA alignments (50 and 101
//! taxa × 1858 positions, 150 taxa × 1269 positions) from the European
//! Small-Subunit Ribosomal RNA Database. Those alignments are not
//! redistributable here, so this crate generates synthetic equivalents:
//! random birth (Yule) trees and sequences evolved along them under the
//! same F84 process the inference uses, with per-site rate heterogeneity
//! and invariant sites so that pattern compression and rate estimation
//! behave like they do on real rRNA. The performance-relevant properties —
//! taxon count, alignment length, pattern count, signal strength — are
//! controlled exactly.

#![warn(missing_docs)]

pub mod datasets;
pub mod evolve;
pub mod randtree;

pub use datasets::{paper_dataset, PaperDataset};
pub use evolve::{evolve, EvolutionConfig};
pub use randtree::yule_tree;
