//! The paper's three performance datasets, reproduced synthetically.
//!
//! §3 of the paper: "datasets including 50, 101, and 150 taxa … alignments
//! of 1858 positions (50- and 101-sequence datasets) and of 1269 positions
//! (150-sequence dataset)". Fixed seeds make every build byte-identical.

use crate::evolve::{evolve, EvolutionConfig};
use crate::randtree::yule_tree;
use fdml_phylo::alignment::Alignment;
use fdml_phylo::tree::Tree;

/// Which of the paper's datasets to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// 50 taxa × 1858 positions (Microsporidia study, dataset 1).
    Taxa50,
    /// 101 taxa × 1858 positions (dataset 2).
    Taxa101,
    /// 150 taxa × 1269 positions (dataset 3).
    Taxa150,
}

impl PaperDataset {
    /// Number of taxa.
    pub fn num_taxa(self) -> usize {
        match self {
            PaperDataset::Taxa50 => 50,
            PaperDataset::Taxa101 => 101,
            PaperDataset::Taxa150 => 150,
        }
    }

    /// Alignment length in the paper.
    pub fn num_sites(self) -> usize {
        match self {
            PaperDataset::Taxa50 | PaperDataset::Taxa101 => 1858,
            PaperDataset::Taxa150 => 1269,
        }
    }

    /// Stable label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            PaperDataset::Taxa50 => "synthetic-50",
            PaperDataset::Taxa101 => "synthetic-101",
            PaperDataset::Taxa150 => "synthetic-150",
        }
    }

    /// All three datasets in the paper's order.
    pub fn all() -> [PaperDataset; 3] {
        [
            PaperDataset::Taxa50,
            PaperDataset::Taxa101,
            PaperDataset::Taxa150,
        ]
    }

    fn seed(self) -> u64 {
        match self {
            PaperDataset::Taxa50 => 0x5001,
            PaperDataset::Taxa101 => 0x1011,
            PaperDataset::Taxa150 => 0x1501,
        }
    }
}

/// Generate one of the paper's datasets, optionally scaled down in
/// alignment length (`site_scale` in `(0, 1]`; 1.0 = the paper's full
/// length). Scaling the length shortens benchmark runs without changing
/// the round structure of the search, which depends only on the taxon
/// count — the simulator's calibration maps work units to seconds either
/// way (see EXPERIMENTS.md).
///
/// Returns the alignment and the generating tree (for recovery checks).
pub fn paper_dataset(which: PaperDataset, site_scale: f64) -> (Alignment, Tree) {
    assert!(site_scale > 0.0 && site_scale <= 1.0);
    let n = which.num_taxa();
    let sites = ((which.num_sites() as f64 * site_scale).round() as usize).max(8);
    let tree = yule_tree(n, 0.08, which.seed());
    let config = EvolutionConfig::default();
    let alignment = evolve(&tree, sites, &config, which.seed() ^ 0xABCD, "taxon");
    (alignment, tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_phylo::patterns::PatternAlignment;

    #[test]
    fn dimensions_match_the_paper() {
        for d in PaperDataset::all() {
            let (a, t) = paper_dataset(d, 1.0);
            assert_eq!(a.num_taxa(), d.num_taxa());
            assert_eq!(a.num_sites(), d.num_sites());
            assert_eq!(t.num_tips(), d.num_taxa());
        }
    }

    #[test]
    fn scaled_dataset_is_shorter() {
        let (a, _) = paper_dataset(PaperDataset::Taxa50, 0.1);
        assert_eq!(a.num_sites(), 186);
    }

    #[test]
    fn generation_is_reproducible() {
        let (a1, _) = paper_dataset(PaperDataset::Taxa101, 0.05);
        let (a2, _) = paper_dataset(PaperDataset::Taxa101, 0.05);
        assert_eq!(a1, a2);
    }

    #[test]
    fn compression_is_substantial_like_real_rrna() {
        let (a, _) = paper_dataset(PaperDataset::Taxa50, 0.25);
        let p = PatternAlignment::compress(&a);
        assert!(
            p.num_patterns() < a.num_sites(),
            "patterns {} vs sites {}",
            p.num_patterns(),
            a.num_sites()
        );
    }
}
