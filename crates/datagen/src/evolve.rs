//! Sequence evolution along a tree under F84 with rate heterogeneity.

use fdml_likelihood::f84::F84Model;
use fdml_phylo::alignment::Alignment;
use fdml_phylo::dna::{Nucleotide, NUM_STATES};
use fdml_phylo::tree::{NodeId, Tree};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the generating process.
#[derive(Debug, Clone)]
pub struct EvolutionConfig {
    /// Equilibrium base frequencies.
    pub freqs: [f64; NUM_STATES],
    /// Transition/transversion ratio.
    pub tt_ratio: f64,
    /// Log-standard-deviation of the per-site lognormal rate multiplier
    /// (0 = homogeneous). The multiplier is normalized to mean 1.
    ///
    /// The paper's data use DNArates-style per-site rates; a lognormal is
    /// the simplest continuous stand-in with the same effect on pattern
    /// diversity (documented substitution in DESIGN.md).
    pub rate_sigma: f64,
    /// Fraction of sites that never change (rate 0), as in conserved rRNA
    /// cores.
    pub prop_invariant: f64,
    /// Fraction of tip characters replaced by fully ambiguous `N` (missing
    /// data / trimmed regions).
    pub missing_fraction: f64,
}

impl Default for EvolutionConfig {
    fn default() -> EvolutionConfig {
        EvolutionConfig {
            freqs: [0.26, 0.22, 0.31, 0.21], // rRNA-like composition
            tt_ratio: 2.0,
            rate_sigma: 0.8,
            prop_invariant: 0.35,
            missing_fraction: 0.01,
        }
    }
}

fn sample_index(rng: &mut StdRng, weights: &[f64; NUM_STATES]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u: f64 = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    NUM_STATES - 1
}

/// Standard normal sample via Box–Muller.
fn sample_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Evolve an alignment of `num_sites` columns along `tree` and return it
/// with taxa named `name_prefix{NNN}` in taxon-id order.
pub fn evolve(
    tree: &Tree,
    num_sites: usize,
    config: &EvolutionConfig,
    seed: u64,
    name_prefix: &str,
) -> Alignment {
    assert!(num_sites > 0);
    let model = F84Model::new(config.freqs, config.tt_ratio);
    let mut rng = StdRng::seed_from_u64(seed);

    // Per-site rates: invariant with probability prop_invariant, else
    // lognormal normalized to mean one.
    let mean_correction = (-config.rate_sigma * config.rate_sigma / 2.0).exp();
    let rates: Vec<f64> = (0..num_sites)
        .map(|_| {
            if rng.random::<f64>() < config.prop_invariant {
                0.0
            } else {
                (config.rate_sigma * sample_normal(&mut rng)).exp() * mean_correction
            }
        })
        .collect();

    // Root the simulation at the tip with the lowest taxon id.
    let root = tree
        .tips()
        .min_by_key(|&(_, t)| t)
        .expect("tree has tips")
        .0;
    // Preorder: parents before children.
    let mut order = tree.postorder_toward(root);
    order.reverse();

    // Transition matrices per edge are rate-dependent; precompute the raw
    // per-edge lengths and build matrices per site on the fly via the
    // closed-form coefficients (cheap: O(1) per edge per site).
    let num_nodes = tree.node_capacity();
    let mut states: Vec<u8> = vec![0; num_nodes];
    let taxa: Vec<(NodeId, u32)> = tree.tips().collect();
    let mut columns: Vec<Vec<Nucleotide>> = vec![Vec::with_capacity(num_sites); taxa.len()];

    for &rate in &rates {
        // Root state from equilibrium.
        states[root.0 as usize] = sample_index(&mut rng, &config.freqs) as u8;
        if rate == 0.0 {
            // Invariant site: every node inherits the root state.
            let s = states[root.0 as usize];
            for &(child, _, _) in &order {
                states[child.0 as usize] = s;
            }
        } else {
            for &(child, edge, parent) in &order {
                let p = model.transition_matrix(tree.length(edge), rate);
                let row = p[states[parent.0 as usize] as usize];
                states[child.0 as usize] = sample_index(&mut rng, &row) as u8;
            }
        }
        for (i, &(node, _)) in taxa.iter().enumerate() {
            let state = states[node.0 as usize] as usize;
            let n = if rng.random::<f64>() < config.missing_fraction {
                Nucleotide::ANY
            } else {
                Nucleotide::from_mask(1 << state).expect("valid state mask")
            };
            columns[i].push(n);
        }
    }

    // Assemble rows in taxon-id order.
    let mut rows: Vec<(u32, Vec<Nucleotide>)> = taxa
        .iter()
        .enumerate()
        .map(|(i, &(_, taxon))| (taxon, std::mem::take(&mut columns[i])))
        .collect();
    rows.sort_by_key(|&(taxon, _)| taxon);
    Alignment::new(
        rows.into_iter()
            .map(|(taxon, seq)| (format!("{name_prefix}{taxon:03}"), seq))
            .collect(),
    )
    .expect("generated alignment is well formed")
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::randtree::yule_tree;
    use fdml_phylo::patterns::PatternAlignment;

    #[test]
    fn shape_and_names() {
        let tree = yule_tree(8, 0.1, 1);
        let a = evolve(&tree, 120, &EvolutionConfig::default(), 2, "t");
        assert_eq!(a.num_taxa(), 8);
        assert_eq!(a.num_sites(), 120);
        assert_eq!(a.name(0), "t000");
        assert_eq!(a.name(7), "t007");
    }

    #[test]
    fn deterministic_in_seed() {
        let tree = yule_tree(6, 0.1, 1);
        let a = evolve(&tree, 200, &EvolutionConfig::default(), 5, "t");
        let b = evolve(&tree, 200, &EvolutionConfig::default(), 5, "t");
        assert_eq!(a, b);
        let c = evolve(&tree, 200, &EvolutionConfig::default(), 6, "t");
        assert_ne!(a, c);
    }

    #[test]
    fn base_composition_tracks_equilibrium() {
        let tree = yule_tree(20, 0.15, 3);
        let config = EvolutionConfig {
            freqs: [0.4, 0.1, 0.3, 0.2],
            missing_fraction: 0.0,
            ..Default::default()
        };
        let a = evolve(&tree, 3000, &config, 9, "t");
        let f = a.empirical_frequencies();
        for s in 0..4 {
            assert!(
                (f[s] - config.freqs[s]).abs() < 0.03,
                "state {s}: simulated {} vs expected {}",
                f[s],
                config.freqs[s]
            );
        }
    }

    #[test]
    fn invariant_fraction_produces_constant_columns() {
        let tree = yule_tree(10, 0.5, 4); // long branches: variable sites vary
        let config = EvolutionConfig {
            prop_invariant: 0.5,
            missing_fraction: 0.0,
            ..Default::default()
        };
        let a = evolve(&tree, 2000, &config, 11, "t");
        let constant = (0..a.num_sites())
            .filter(|&s| {
                let first = a.sequence(0)[s];
                (0..a.num_taxa() as u32).all(|t| a.sequence(t)[s] == first)
            })
            .count();
        let frac = constant as f64 / a.num_sites() as f64;
        assert!(frac > 0.45 && frac < 0.75, "constant fraction {frac}");
    }

    #[test]
    fn heterogeneity_increases_pattern_diversity() {
        let tree = yule_tree(15, 0.1, 5);
        let homo = EvolutionConfig {
            rate_sigma: 0.0,
            prop_invariant: 0.0,
            missing_fraction: 0.0,
            ..Default::default()
        };
        let hetero = EvolutionConfig {
            rate_sigma: 1.5,
            prop_invariant: 0.5,
            missing_fraction: 0.0,
            ..Default::default()
        };
        let a = evolve(&tree, 1000, &homo, 7, "t");
        let b = evolve(&tree, 1000, &hetero, 7, "t");
        let pa = PatternAlignment::compress(&a).num_patterns();
        let pb = PatternAlignment::compress(&b).num_patterns();
        assert!(
            pb < pa,
            "invariant sites must compress better: homo {pa} vs hetero {pb}"
        );
    }

    #[test]
    fn missing_fraction_injects_ambiguity() {
        let tree = yule_tree(10, 0.1, 6);
        let config = EvolutionConfig {
            missing_fraction: 0.2,
            ..Default::default()
        };
        let a = evolve(&tree, 500, &config, 13, "t");
        let total = a.num_taxa() * a.num_sites();
        let missing: usize = (0..a.num_taxa() as u32)
            .map(|t| a.sequence(t).iter().filter(|n| n.is_any()).count())
            .sum();
        let frac = missing as f64 / total as f64;
        assert!(frac > 0.15 && frac < 0.25, "missing fraction {frac}");
    }
}
