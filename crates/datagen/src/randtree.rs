//! Random tree generation (Yule / pure-birth process).

use fdml_phylo::alignment::TaxonId;
use fdml_phylo::tree::Tree;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generate a random unrooted binary tree on `num_taxa` taxa by the Yule
/// (pure-birth) process: starting from a two-taxon tree, repeatedly split a
/// uniformly chosen existing tip. Branch lengths are i.i.d. exponential
/// with the given mean (expected substitutions per site).
pub fn yule_tree(num_taxa: usize, mean_branch_length: f64, seed: u64) -> Tree {
    assert!(num_taxa >= 2, "a tree needs at least two taxa");
    assert!(mean_branch_length > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = Tree::pair(0, 1);
    for taxon in 2..num_taxa as TaxonId {
        // Split a uniformly chosen existing tip: insert the new taxon into
        // its pendant edge.
        let tips: Vec<_> = tree.tips().map(|(n, _)| n).collect();
        let victim = tips[rng.random_range(0..tips.len())];
        let pendant = tree.incident_edges(victim)[0];
        tree.insert_taxon(taxon, pendant)
            .expect("fresh taxon inserts cleanly");
    }
    for e in tree.edge_ids().collect::<Vec<_>>() {
        let u: f64 = rng.random();
        // Exponential via inversion; clamp away from zero so the generating
        // tree is identifiable.
        let len = (-(1.0 - u).ln() * mean_branch_length).max(1e-4);
        tree.set_length(e, len);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdml_phylo::bipartition::SplitSet;

    #[test]
    fn produces_valid_trees() {
        for n in [2usize, 3, 5, 20, 101] {
            let t = yule_tree(n, 0.1, 7);
            t.check_valid().unwrap();
            assert_eq!(t.num_tips(), n);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = yule_tree(12, 0.1, 3);
        let b = yule_tree(12, 0.1, 3);
        assert_eq!(SplitSet::of_tree(&a, 12), SplitSet::of_tree(&b, 12));
        assert!((a.total_length() - b.total_length()).abs() < 1e-12);
        let c = yule_tree(12, 0.1, 4);
        assert_ne!(SplitSet::of_tree(&a, 12), SplitSet::of_tree(&c, 12));
    }

    #[test]
    fn mean_branch_length_approximately_respected() {
        let t = yule_tree(200, 0.25, 11);
        let mean = t.total_length() / t.num_edges() as f64;
        assert!((mean - 0.25).abs() < 0.05, "observed mean {mean}");
    }

    #[test]
    fn all_lengths_positive() {
        let t = yule_tree(50, 0.05, 1);
        for e in t.edge_ids() {
            assert!(t.length(e) >= 1e-4);
        }
    }
}
