//! A transport wrapper that emits per-message observability events.

use crate::message::Message;
use crate::transport::{CommError, Rank, Transport};
use fdml_obs::{Event, Obs};
use std::time::Duration;

/// Wraps any [`Transport`] and emits an [`Event::MessageSent`] /
/// [`Event::MessageReceived`] for every message that crosses it, tagged with
/// the message's kind name and approximate wire size.
///
/// Because [`Obs::emit`] takes a closure, a `Recording` over a disabled
/// handle costs one branch per call — no event construction, no allocation —
/// so the runtime can wrap its transport unconditionally.
pub struct Recording<T: Transport> {
    inner: T,
    obs: Obs,
}

impl<T: Transport> Recording<T> {
    /// Wraps `inner`, reporting traffic to `obs`.
    pub fn new(inner: T, obs: Obs) -> Recording<T> {
        Recording { inner, obs }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps back into the underlying transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// The observability handle traffic is reported to.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }
}

impl<T: Transport> Transport for Recording<T> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, to: Rank, msg: &Message) -> Result<(), CommError> {
        self.inner.send(to, msg)?;
        self.obs.emit(|| Event::MessageSent {
            from: self.inner.rank(),
            to,
            kind: msg.kind().name().to_string(),
            bytes: msg.wire_bytes() as u64,
        });
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(Rank, Message)>, CommError> {
        let got = self.inner.recv_timeout(timeout)?;
        if let Some((from, msg)) = &got {
            self.obs.emit(|| Event::MessageReceived {
                at: self.inner.rank(),
                from: *from,
                kind: msg.kind().name().to_string(),
                bytes: msg.wire_bytes() as u64,
            });
        }
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threads::ThreadUniverse;
    use fdml_obs::MemorySink;

    #[test]
    fn records_sends_and_receives() {
        let mut endpoints = ThreadUniverse::create(2);
        let b = endpoints.pop().unwrap();
        let a = endpoints.pop().unwrap();
        let mem = MemorySink::new();
        let a = Recording::new(a, Obs::new(Box::new(mem.clone())));
        let b = Recording::new(b, Obs::new(Box::new(mem.clone())));

        a.send(1, &Message::Shutdown).unwrap();
        let (from, msg) = b.recv().unwrap();
        assert_eq!(from, 0);
        assert_eq!(msg, Message::Shutdown);

        let records = mem.snapshot();
        assert_eq!(records.len(), 2);
        match &records[0].event {
            Event::MessageSent {
                from,
                to,
                kind,
                bytes,
            } => {
                assert_eq!((*from, *to), (0, 1));
                assert_eq!(kind, "Shutdown");
                assert!(*bytes > 0);
            }
            other => panic!("expected MessageSent, got {other:?}"),
        }
        match &records[1].event {
            Event::MessageReceived { at, from, kind, .. } => {
                assert_eq!((*at, *from), (1, 0));
                assert_eq!(kind, "Shutdown");
            }
            other => panic!("expected MessageReceived, got {other:?}"),
        }
    }

    #[test]
    fn disabled_obs_is_transparent() {
        let mut endpoints = ThreadUniverse::create(2);
        let b = endpoints.pop().unwrap();
        let a = Recording::new(endpoints.pop().unwrap(), Obs::disabled());
        assert_eq!(a.rank(), 0);
        assert_eq!(a.size(), 2);
        a.send(1, &Message::Shutdown).unwrap();
        assert_eq!(b.recv().unwrap().1, Message::Shutdown);
    }
}
