//! The transport abstraction: fastDNAml's `comm_*.c` boundary.

use crate::message::Message;
use std::fmt;
use std::time::Duration;

/// A process rank, as in MPI. By convention in the runtime:
/// rank 0 = master, rank 1 = foreman, rank 2 = monitor (if present),
/// ranks 3.. = workers — matching the paper's "fully instrumented parallel
/// version … requires a minimum of four processors".
pub type Rank = usize;

/// The rank convention of the parallel runtime (paper §2.2). These are the
/// canonical constants; `fdml-core` re-exports them for compatibility.
pub mod ranks {
    use super::Rank;

    /// Rank 0: the master process driving the search.
    pub const MASTER: Rank = 0;
    /// Rank 1: the foreman scheduling candidate trees onto workers.
    pub const FOREMAN: Rank = 1;
    /// Rank 2: the optional monitor aggregating instrumentation events.
    pub const MONITOR: Rank = 2;
    /// Ranks 3..: likelihood-evaluating workers.
    pub const FIRST_WORKER: Rank = 3;
}

/// Transport-layer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The destination rank does not exist.
    UnknownRank(Rank),
    /// The peer hung up (channel closed).
    Disconnected(Rank),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::UnknownRank(r) => write!(f, "unknown rank {r}"),
            CommError::Disconnected(r) => write!(f, "rank {r} disconnected"),
        }
    }
}

impl std::error::Error for CommError {}

/// Point-to-point message passing between ranks. All the parallel modules
/// of `fdml-core` are written against this trait only.
pub trait Transport: Send {
    /// This endpoint's rank.
    fn rank(&self) -> Rank;

    /// Total number of ranks in the universe.
    fn size(&self) -> usize;

    /// Send a message to a rank (non-blocking, buffered). Takes the message
    /// by reference — the same calling convention as [`Transport::broadcast`]
    /// — so wrappers can observe traffic without taking ownership; transports
    /// clone internally if they need an owned copy.
    fn send(&self, to: Rank, msg: &Message) -> Result<(), CommError>;

    /// Receive the next message addressed to this rank, waiting at most
    /// `timeout`. `Ok(None)` on timeout.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(Rank, Message)>, CommError>;

    /// Receive without waiting. `Ok(None)` when no message is pending.
    fn try_recv(&self) -> Result<Option<(Rank, Message)>, CommError> {
        self.recv_timeout(Duration::ZERO)
    }

    /// Blocking receive (waits indefinitely).
    fn recv(&self) -> Result<(Rank, Message), CommError> {
        loop {
            if let Some(pair) = self.recv_timeout(Duration::from_millis(100))? {
                return Ok(pair);
            }
        }
    }

    /// Send to every rank except this one.
    fn broadcast(&self, msg: &Message) -> Result<(), CommError> {
        for r in 0..self.size() {
            if r != self.rank() {
                self.send(r, msg)?;
            }
        }
        Ok(())
    }
}
