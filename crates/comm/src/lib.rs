//! Message passing for the parallel fastDNAml runtime.
//!
//! The paper makes a point of its communication design: *"Calls to any
//! message passing libraries are sequestered in a single file (one each for
//! serial, PVM, and MPI implementations). … This keeps the code, other than
//! the communications definition files, independent of any particular
//! message passing library."* This crate is that file's Rust analog: the
//! master / foreman / worker / monitor processes in `fdml-core` talk only
//! through the [`transport::Transport`] trait.
//!
//! Back ends:
//!
//! * [`threads`] — ranks are OS threads joined by crossbeam channels, the
//!   shared-memory stand-in for MPI ranks (the `repro_why` note: MPI
//!   bindings are thin, so the dispatch/queue/fault-tolerance code paths
//!   are exercised over channels instead of a wire).
//! * [`fault`] — a wrapper transport that drops or delays messages from
//!   selected ranks, to exercise the foreman's timeout-based fault
//!   tolerance (paper §2.2).
//!
//! The serial build needs no transport at all: as in the paper, "the worker
//! process acts as a subroutine in the serial version of fastDNAml".

#![warn(missing_docs)]

pub mod codec;
pub mod fault;
pub mod job;
pub mod message;
pub mod recording;
pub mod threads;
pub mod transport;

pub use codec::{CodecError, JsonCodec, MessageCodec};
pub use job::{
    JobId, JobResult, JobSpec, JobSpecBuilder, JobSpecError, JobState, JobStatus, JobTree,
    RejectReason,
};
pub use message::{Message, MessageKind, MonitorEvent, TaskPayload, TreeEdit};
pub use recording::Recording;
pub use threads::ThreadUniverse;
pub use transport::{ranks, CommError, Rank, Transport};
