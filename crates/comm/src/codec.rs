//! Pluggable message codecs.
//!
//! The transport crates frame bytes; *what* those bytes say is a codec's
//! job. The JSON codec lives here because every crate that speaks
//! [`Message`] already depends on serde; the compact binary codec lives in
//! `fdml-wire` so the vocabulary crate stays free of wire-layout concerns.
//! A codec encodes one message to one self-describing byte body — framing
//! (length prefix, CRC) stays with the transport.

use crate::message::Message;
use std::fmt;

/// An encode or decode failure, carrying the codec's own diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The message could not be serialized.
    Encode(String),
    /// The byte body could not be parsed back into a message.
    Decode(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Encode(why) => write!(f, "encode failed: {why}"),
            CodecError::Decode(why) => write!(f, "decode failed: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Turns a [`Message`] into a byte body and back.
///
/// Contract: `decode(encode(m)) == m` for every message, and the first
/// byte of the body identifies the codec (JSON bodies start with `b'{'`,
/// binary bodies with the `0xFD` magic), so a reader can sniff the codec
/// per body and mixed-codec fleets interoperate.
pub trait MessageCodec: Send + Sync {
    /// The stable codec name used in handshakes and CLI flags.
    fn name(&self) -> &'static str;
    /// Serialize one message to a self-describing byte body.
    fn encode(&self, msg: &Message) -> Result<Vec<u8>, CodecError>;
    /// Parse a byte body produced by [`MessageCodec::encode`].
    fn decode(&self, bytes: &[u8]) -> Result<Message, CodecError>;
}

/// The human-readable codec: one serde-JSON document per message. This is
/// the seed wire format and remains the negotiation fallback, so a peer
/// that predates the binary codec keeps working unmodified.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonCodec;

impl MessageCodec for JsonCodec {
    fn name(&self) -> &'static str {
        "json"
    }

    fn encode(&self, msg: &Message) -> Result<Vec<u8>, CodecError> {
        serde_json::to_string(msg)
            .map(String::into_bytes)
            .map_err(|e| CodecError::Encode(e.to_string()))
    }

    fn decode(&self, bytes: &[u8]) -> Result<Message, CodecError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| CodecError::Decode(format!("invalid utf-8: {e}")))?;
        serde_json::from_str(text).map_err(|e| CodecError::Decode(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_and_sniffable() {
        let msg = Message::TreeTask {
            task: 9,
            newick: "(a:1,b:2);".into(),
        };
        let body = JsonCodec.encode(&msg).unwrap();
        assert_eq!(body[0], b'{');
        assert_eq!(JsonCodec.decode(&body).unwrap(), msg);
    }

    #[test]
    fn json_decode_rejects_garbage() {
        assert!(JsonCodec.decode(b"not json").is_err());
        assert!(JsonCodec.decode(&[0xFD, 0x01]).is_err());
    }
}
