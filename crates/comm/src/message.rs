//! The message vocabulary of the parallel runtime.
//!
//! Mirrors fastDNAml's protocol: trees travel as ASCII Newick strings, the
//! problem data is broadcast once at startup, and the monitor receives
//! instrumentation events.

use serde::{Deserialize, Serialize};
use std::fmt;

fn default_service_us() -> u64 {
    0
}

/// Instrumentation events consumed by the optional monitor process
/// (paper §2.2: "an optional process that provides instrumentation").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MonitorEvent {
    /// A tree was dispatched to a worker.
    Dispatched {
        /// Task id of the candidate tree.
        task: u64,
        /// Worker rank it went to.
        worker: usize,
    },
    /// A worker returned an evaluated tree.
    Completed {
        /// Task id of the candidate tree.
        task: u64,
        /// Worker rank that evaluated it.
        worker: usize,
        /// Log-likelihood it reported.
        ln_likelihood: f64,
        /// Work units the evaluation took.
        work_units: u64,
        /// Wall-clock dispatch-to-result latency observed by the foreman,
        /// in microseconds. Absent in logs written before this field
        /// existed, hence the default.
        #[serde(default = "default_service_us")]
        service_us: u64,
    },
    /// A worker was marked delinquent after a timeout.
    WorkerTimedOut {
        /// The delinquent worker's rank.
        worker: usize,
        /// The task that was re-dispatched.
        task: u64,
    },
    /// A previously delinquent worker answered and was re-admitted.
    WorkerRecovered {
        /// The recovered worker's rank.
        worker: usize,
    },
    /// A dispatch round finished; the best tree of the round is reported.
    /// The real-time viewer tails these (paper §4: the monitor application
    /// watches "a file representing the best tree from each iteration").
    RoundComplete {
        /// Round ordinal.
        round: u64,
        /// Candidates evaluated in the round.
        candidates: usize,
        /// Best log-likelihood of the round.
        best_ln_likelihood: f64,
        /// Best tree of the round, as Newick text.
        best_newick: String,
    },
}

/// One candidate edit against a broadcast base topology — the compact wire
/// form of a tree move. Node and taxon identifiers are the plain integers
/// of the base tree's arena; they are meaningful because Newick parsing is
/// deterministic, so every rank that parses the same broadcast base text
/// assigns the same ids (the comm crate deliberately does not depend on
/// the phylogeny crate's typed ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeEdit {
    /// Insert taxon `taxon` into the base edge between nodes `a` and `b`.
    Insert {
        /// The taxon to insert (alignment row index).
        taxon: u32,
        /// One endpoint of the insertion edge.
        a: u32,
        /// The other endpoint of the insertion edge.
        b: u32,
    },
    /// Prune the subtree hanging off `root` across the `root`–`attachment`
    /// edge and regraft it into the edge between nodes `a` and `b`.
    Regraft {
        /// The node at the pruned subtree's junction.
        root: u32,
        /// The base-tree node the subtree was attached through.
        attachment: u32,
        /// One endpoint of the regraft target edge.
        a: u32,
        /// The other endpoint of the regraft target edge.
        b: u32,
    },
}

/// The payload of one unit of work, detached from its routing envelope.
/// Carried inside [`Message::Quarantined`] so the master can evaluate a
/// poisoned task locally with the same inputs the workers saw.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskPayload {
    /// A single candidate tree (the payload of a [`Message::TreeTask`]).
    Tree {
        /// The candidate tree as Newick text.
        newick: String,
    },
    /// A whole jumble (the payload of a [`Message::JumbleTask`]).
    Jumble {
        /// The adjusted jumble seed.
        seed: u64,
    },
    /// A candidate edit against a broadcast base topology (the payload of
    /// a [`Message::TreeEditTask`]).
    TreeEdit {
        /// Generation id of the base topology the edit applies to.
        base_id: u64,
        /// The edit itself.
        edit: TreeEdit,
    },
}

/// Messages exchanged between master, foreman, workers, and monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Broadcast once from the foreman to every worker before any tree is
    /// dispatched: the aligned data plus an opaque engine configuration
    /// (JSON; the transport does not interpret it).
    ProblemData {
        /// PHYLIP-formatted alignment text.
        phylip: String,
        /// Engine configuration (model, categories, optimizer options).
        config_json: String,
    },
    /// A worker announces it is ready for work.
    WorkerReady,
    /// Foreman → worker: evaluate this tree (optimize branch lengths,
    /// return the likelihood).
    TreeTask {
        /// Task id, unique within the run.
        task: u64,
        /// The candidate tree as Newick text.
        newick: String,
    },
    /// Worker → foreman: the evaluated tree.
    TreeResult {
        /// Task id echoed back.
        task: u64,
        /// The tree with optimized branch lengths, as Newick text.
        newick: String,
        /// Its log-likelihood.
        ln_likelihood: f64,
        /// Work units expended (for instrumentation and the simulator).
        work_units: u64,
    },
    /// Foreman → worker: run one whole jumble (a complete stepwise-addition
    /// search with this addition-order seed) and return the final tree.
    /// This is the farm's unit of work: an entire random restart, not one
    /// candidate tree.
    JumbleTask {
        /// Task id, unique within the run.
        task: u64,
        /// The jumble seed (already adjusted and deduplicated).
        seed: u64,
    },
    /// Worker → foreman: a finished jumble.
    JumbleResult {
        /// Task id echoed back.
        task: u64,
        /// The jumble seed echoed back.
        seed: u64,
        /// The best tree of the jumble, as Newick text.
        newick: String,
        /// Its log-likelihood.
        ln_likelihood: f64,
        /// Dispatch rounds the search ran.
        rounds: u64,
        /// Candidate trees the search evaluated.
        candidates: u64,
        /// Work units expended over the whole search.
        work_units: u64,
    },
    /// Instrumentation, routed to the monitor rank.
    Monitor(MonitorEvent),
    /// Transport → foreman: a worker rank was lost (connection dropped,
    /// corrupt frame, or process death). The foreman eagerly requeues the
    /// rank's in-flight task instead of waiting out the timeout. Never
    /// routed to workers.
    PeerDown {
        /// The lost worker's rank.
        rank: usize,
    },
    /// Transport → foreman: a previously lost worker rank rejoined (a
    /// reconnect or a supervisor respawn re-admitted through the
    /// Hello/Welcome path). The foreman re-broadcasts the problem data so
    /// the fresh process can rebuild its engine. Never routed to workers.
    PeerUp {
        /// The returning worker's rank.
        rank: usize,
    },
    /// Foreman → master: a task exhausted its failure budget across
    /// distinct workers and was pulled from the queue; the master must
    /// evaluate it locally as a last resort.
    Quarantined {
        /// Task id of the poisoned task.
        task: u64,
        /// Distinct workers that failed it before quarantine.
        failures: u64,
        /// The work itself, so the master can redo it locally.
        payload: TaskPayload,
    },
    /// Foreman → master: the run cannot continue (every worker is dead
    /// with work still outstanding). The master surfaces a typed error and
    /// leaves the last checkpoint on disk.
    Abort {
        /// Human-readable cause.
        reason: String,
    },
    /// Daemon scheduler → worker: the problem data of one job in a
    /// multi-tenant fleet. Unlike [`Message::ProblemData`] (one anonymous
    /// problem per process lifetime) this is tagged with the job id, and a
    /// worker caches one engine per job so tasks from concurrent jobs can
    /// interleave on the same rank.
    JobData {
        /// The job this data belongs to.
        job: crate::job::JobId,
        /// PHYLIP-formatted alignment text.
        phylip: String,
        /// Engine configuration (model, categories, optimizer options).
        config_json: String,
    },
    /// Daemon scheduler → worker: run one whole jumble of one job. The
    /// worker evaluates it with the engine cached for `job` (the scheduler
    /// always sends [`Message::JobData`] first).
    JobTask {
        /// The job the jumble belongs to.
        job: crate::job::JobId,
        /// Task id, unique within the daemon's lifetime.
        task: u64,
        /// The jumble seed (already adjusted and deduplicated).
        seed: u64,
    },
    /// Worker → daemon scheduler: a finished job jumble.
    JobTaskResult {
        /// The job echoed back.
        job: crate::job::JobId,
        /// Task id echoed back.
        task: u64,
        /// The jumble seed echoed back.
        seed: u64,
        /// The best tree of the jumble, as Newick text.
        newick: String,
        /// Its log-likelihood.
        ln_likelihood: f64,
        /// Work units expended over the whole search.
        work_units: u64,
    },
    /// Daemon scheduler → worker: a job is finished or failed; drop its
    /// cached engine. Without retirement a long-lived shared-fleet worker
    /// would keep one alignment + likelihood state per job ever served.
    JobRetire {
        /// The job to evict.
        job: crate::job::JobId,
    },
    /// Master → foreman → workers: the base topology of the upcoming
    /// dispatch round. Workers index its per-edge CLVs once and then score
    /// each [`Message::TreeEditTask`] of the round incrementally. A new
    /// broadcast (higher `base_id`) invalidates any cached predecessor.
    BaseTopology {
        /// Monotonically increasing generation id of this base.
        base_id: u64,
        /// The base tree as Newick text (branch lengths round-trip
        /// exactly: shortest-round-trip float formatting).
        newick: String,
    },
    /// Foreman → worker: score one candidate edit against the round's base
    /// topology. The compact sibling of [`Message::TreeTask`]: instead of
    /// a whole Newick tree it carries a few node ids, and the worker
    /// answers with an ordinary [`Message::TreeResult`].
    TreeEditTask {
        /// Task id, unique within the run.
        task: u64,
        /// Generation id of the base the edit applies to.
        base_id: u64,
        /// The edit to score.
        edit: TreeEdit,
        /// The base tree itself, embedded when the foreman cannot assume
        /// the worker holds the broadcast base (fresh respawn, requeue
        /// after a peer death, or quarantine re-dispatch) — the
        /// self-contained rung of the fallback ladder.
        base_newick: Option<String>,
    },
    /// Foreman → worker: a liveness probe. A delinquent worker gets no new
    /// work, so without a probe a silently dead one would never be
    /// discovered (nothing is ever sent to it again) and an idle-but-alive
    /// one would never be re-admitted. The worker answers with
    /// [`Message::WorkerReady`]; on the threaded transport a dead endpoint
    /// fails the send instead.
    Ping,
    /// Several messages in one envelope, delivered in order. The batching
    /// unit of the hierarchical scheduler: a lease grant is a batch of task
    /// messages flowing down, and a regional foreman streams a batch of
    /// results upward, so a 4096-rank fleet pays one frame per batch
    /// instead of one per task. Receivers unpack and process the inner
    /// messages exactly as if they had arrived individually.
    Batch {
        /// The bundled messages, in delivery order.
        msgs: Vec<Message>,
    },
    /// Regional foreman → root foreman: lease `want` more tasks for this
    /// region. The region is identified by the sender's rank. Doubles as
    /// the liveness answer to a root [`Message::Ping`] probe.
    LeaseRequest {
        /// How many tasks the region wants on top of its current lease.
        want: u32,
    },
    /// Root foreman → regional foreman: return up to `want` queued
    /// (not-yet-dispatched) tasks so a drained sibling region can steal
    /// them. The victim answers with [`Message::StealReturn`].
    StealRequest {
        /// Upper bound on tasks to give back.
        want: u32,
    },
    /// Regional foreman → root foreman: the tasks surrendered to a
    /// [`Message::StealRequest`], coldest first (taken from the back of the
    /// region's queue). May be empty if the queue drained in the meantime.
    StealReturn {
        /// The surrendered task messages, ready for regrant.
        tasks: Vec<Message>,
    },
    /// Root foreman → worker: report to a (new) regional foreman. Sent on
    /// first contact to shard the fleet, and again when a worker's region
    /// dies and it must re-home to a sibling. The worker switches its
    /// upstream rank and announces itself there with
    /// [`Message::WorkerReady`].
    Rehome {
        /// The rank of the regional foreman to report to.
        foreman: usize,
    },
    /// Worker → foreman → master: one committed search round of a
    /// remotely running jumble, as a framed write-ahead-log entry. The
    /// coordinator appends it to the jumble's WAL so a killed-and-resumed
    /// coordinator can hand the worker its own history back (see
    /// [`Message::JumbleResume`]) and replay to a byte-identical tree.
    /// `entry` is the JSON text of one `WalRecord::Round`; the transport
    /// does not interpret it.
    WalRound {
        /// The job the jumble belongs to (0 = the anonymous one-shot farm).
        job: u64,
        /// The jumble seed (already adjusted), identifying the WAL.
        seed: u64,
        /// Zero-based round ordinal within the jumble. The coordinator
        /// dedups re-streamed history from a restarted worker by index.
        index: u64,
        /// One framed round as JSON text.
        entry: String,
    },
    /// Coordinator → worker: run one whole jumble, resuming from the
    /// write-ahead log carried inline. The WAL-aware sibling of
    /// [`Message::JumbleTask`] / [`Message::JobTask`]: an empty `wal`
    /// means a fresh start, a non-empty one replays the committed rounds
    /// before going live, and either way the worker streams every
    /// subsequent committed round back as [`Message::WalRound`].
    JumbleResume {
        /// The job the jumble belongs to (0 = the anonymous one-shot
        /// farm; the worker answers with [`Message::JumbleResult`].
        /// Non-zero = a daemon job; the worker answers with
        /// [`Message::JobTaskResult`]).
        job: u64,
        /// Task id, unique within the run.
        task: u64,
        /// The jumble seed (already adjusted and deduplicated).
        seed: u64,
        /// The committed rounds so far, one `WalRecord::Round` JSON text
        /// per entry, in order. Empty for a fresh start.
        wal: Vec<String>,
    },
    /// Orderly shutdown of a worker or the monitor.
    Shutdown,
}

/// The kind of a [`Message`], without its payload. This is the unit of
/// per-kind traffic accounting shared by the observability layer, fault
/// injection, and the simulator's communication cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MessageKind {
    /// [`Message::ProblemData`].
    ProblemData,
    /// [`Message::WorkerReady`].
    WorkerReady,
    /// [`Message::TreeTask`].
    TreeTask,
    /// [`Message::TreeResult`].
    TreeResult,
    /// [`Message::JumbleTask`].
    JumbleTask,
    /// [`Message::JumbleResult`].
    JumbleResult,
    /// [`Message::Monitor`].
    Monitor,
    /// [`Message::PeerDown`].
    PeerDown,
    /// [`Message::PeerUp`].
    PeerUp,
    /// [`Message::Quarantined`].
    Quarantined,
    /// [`Message::Abort`].
    Abort,
    /// [`Message::JobData`].
    JobData,
    /// [`Message::JobTask`].
    JobTask,
    /// [`Message::JobTaskResult`].
    JobTaskResult,
    /// [`Message::JobRetire`].
    JobRetire,
    /// [`Message::BaseTopology`].
    BaseTopology,
    /// [`Message::TreeEditTask`].
    TreeEditTask,
    /// [`Message::Ping`].
    Ping,
    /// [`Message::Batch`].
    Batch,
    /// [`Message::LeaseRequest`].
    LeaseRequest,
    /// [`Message::StealRequest`].
    StealRequest,
    /// [`Message::StealReturn`].
    StealReturn,
    /// [`Message::Rehome`].
    Rehome,
    /// [`Message::WalRound`].
    WalRound,
    /// [`Message::JumbleResume`].
    JumbleResume,
    /// [`Message::Shutdown`].
    Shutdown,
}

impl MessageKind {
    /// The stable string tag for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::ProblemData => "ProblemData",
            MessageKind::WorkerReady => "WorkerReady",
            MessageKind::TreeTask => "TreeTask",
            MessageKind::TreeResult => "TreeResult",
            MessageKind::JumbleTask => "JumbleTask",
            MessageKind::JumbleResult => "JumbleResult",
            MessageKind::Monitor => "Monitor",
            MessageKind::PeerDown => "PeerDown",
            MessageKind::PeerUp => "PeerUp",
            MessageKind::Quarantined => "Quarantined",
            MessageKind::Abort => "Abort",
            MessageKind::JobData => "JobData",
            MessageKind::JobTask => "JobTask",
            MessageKind::JobTaskResult => "JobTaskResult",
            MessageKind::JobRetire => "JobRetire",
            MessageKind::BaseTopology => "BaseTopology",
            MessageKind::TreeEditTask => "TreeEditTask",
            MessageKind::Ping => "Ping",
            MessageKind::Batch => "Batch",
            MessageKind::LeaseRequest => "LeaseRequest",
            MessageKind::StealRequest => "StealRequest",
            MessageKind::StealReturn => "StealReturn",
            MessageKind::Rehome => "Rehome",
            MessageKind::WalRound => "WalRound",
            MessageKind::JumbleResume => "JumbleResume",
            MessageKind::Shutdown => "Shutdown",
        }
    }
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Message {
    /// The payload-free kind of this message.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::ProblemData { .. } => MessageKind::ProblemData,
            Message::WorkerReady => MessageKind::WorkerReady,
            Message::TreeTask { .. } => MessageKind::TreeTask,
            Message::TreeResult { .. } => MessageKind::TreeResult,
            Message::JumbleTask { .. } => MessageKind::JumbleTask,
            Message::JumbleResult { .. } => MessageKind::JumbleResult,
            Message::Monitor(_) => MessageKind::Monitor,
            Message::PeerDown { .. } => MessageKind::PeerDown,
            Message::PeerUp { .. } => MessageKind::PeerUp,
            Message::Quarantined { .. } => MessageKind::Quarantined,
            Message::Abort { .. } => MessageKind::Abort,
            Message::JobData { .. } => MessageKind::JobData,
            Message::JobTask { .. } => MessageKind::JobTask,
            Message::JobTaskResult { .. } => MessageKind::JobTaskResult,
            Message::JobRetire { .. } => MessageKind::JobRetire,
            Message::BaseTopology { .. } => MessageKind::BaseTopology,
            Message::TreeEditTask { .. } => MessageKind::TreeEditTask,
            Message::Ping => MessageKind::Ping,
            Message::Batch { .. } => MessageKind::Batch,
            Message::LeaseRequest { .. } => MessageKind::LeaseRequest,
            Message::StealRequest { .. } => MessageKind::StealRequest,
            Message::StealReturn { .. } => MessageKind::StealReturn,
            Message::Rehome { .. } => MessageKind::Rehome,
            Message::WalRound { .. } => MessageKind::WalRound,
            Message::JumbleResume { .. } => MessageKind::JumbleResume,
            Message::Shutdown => MessageKind::Shutdown,
        }
    }

    /// Approximate on-the-wire size in bytes (used by the simulator's
    /// communication cost model).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Message::ProblemData {
                phylip,
                config_json,
            } => phylip.len() + config_json.len() + 16,
            Message::WorkerReady => 16,
            Message::TreeTask { newick, .. } => newick.len() + 24,
            Message::TreeResult { newick, .. } => newick.len() + 40,
            Message::JumbleTask { .. } => 32,
            Message::JumbleResult { newick, .. } => newick.len() + 64,
            Message::Monitor(_) => 64,
            Message::PeerDown { .. } | Message::PeerUp { .. } => 24,
            Message::Quarantined { payload, .. } => {
                32 + match payload {
                    TaskPayload::Tree { newick } => newick.len() + 8,
                    TaskPayload::Jumble { .. } => 16,
                    TaskPayload::TreeEdit { .. } => 32,
                }
            }
            Message::Abort { reason } => reason.len() + 16,
            Message::JobData {
                phylip,
                config_json,
                ..
            } => phylip.len() + config_json.len() + 24,
            Message::JobTask { .. } => 40,
            Message::JobTaskResult { newick, .. } => newick.len() + 72,
            Message::JobRetire { .. } => 24,
            Message::BaseTopology { newick, .. } => newick.len() + 24,
            Message::TreeEditTask { base_newick, .. } => {
                48 + base_newick.as_ref().map_or(0, |n| n.len())
            }
            Message::Ping => 16,
            Message::Batch { msgs } => 16 + msgs.iter().map(Message::wire_bytes).sum::<usize>(),
            Message::LeaseRequest { .. } | Message::StealRequest { .. } => 24,
            Message::StealReturn { tasks } => {
                16 + tasks.iter().map(Message::wire_bytes).sum::<usize>()
            }
            Message::Rehome { .. } => 24,
            Message::WalRound { entry, .. } => entry.len() + 40,
            Message::JumbleResume { wal, .. } => {
                40 + wal.iter().map(|e| e.len() + 8).sum::<usize>()
            }
            Message::Shutdown => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrip() {
        let msgs = vec![
            Message::ProblemData {
                phylip: "2 4\na ACGT\nb ACGA\n".into(),
                config_json: "{}".into(),
            },
            Message::WorkerReady,
            Message::TreeTask {
                task: 7,
                newick: "(a:1,b:2);".into(),
            },
            Message::TreeResult {
                task: 7,
                newick: "(a:1.1,b:1.9);".into(),
                ln_likelihood: -123.45,
                work_units: 999,
            },
            Message::JumbleTask { task: 8, seed: 11 },
            Message::JumbleResult {
                task: 8,
                seed: 11,
                newick: "(a:1,b:2);".into(),
                ln_likelihood: -99.5,
                rounds: 4,
                candidates: 17,
                work_units: 1234,
            },
            Message::Monitor(MonitorEvent::RoundComplete {
                round: 3,
                candidates: 11,
                best_ln_likelihood: -100.0,
                best_newick: "(a,b);".into(),
            }),
            Message::PeerDown { rank: 4 },
            Message::PeerUp { rank: 4 },
            Message::Quarantined {
                task: 9,
                failures: 3,
                payload: TaskPayload::Tree {
                    newick: "(a:1,b:2);".into(),
                },
            },
            Message::Quarantined {
                task: 10,
                failures: 3,
                payload: TaskPayload::Jumble { seed: 17 },
            },
            Message::Abort {
                reason: "all workers dead".into(),
            },
            Message::JobData {
                job: 2,
                phylip: "2 4\na ACGT\nb ACGA\n".into(),
                config_json: "{}".into(),
            },
            Message::JobTask {
                job: 2,
                task: 40,
                seed: 11,
            },
            Message::JobTaskResult {
                job: 2,
                task: 40,
                seed: 11,
                newick: "(a:1,b:2);".into(),
                ln_likelihood: -99.5,
                work_units: 1234,
            },
            Message::JobRetire { job: 2 },
            Message::BaseTopology {
                base_id: 5,
                newick: "(a:1,b:2);".into(),
            },
            Message::TreeEditTask {
                task: 41,
                base_id: 5,
                edit: TreeEdit::Insert {
                    taxon: 4,
                    a: 1,
                    b: 2,
                },
                base_newick: None,
            },
            Message::TreeEditTask {
                task: 42,
                base_id: 5,
                edit: TreeEdit::Regraft {
                    root: 6,
                    attachment: 7,
                    a: 1,
                    b: 2,
                },
                base_newick: Some("(a:1,b:2);".into()),
            },
            Message::Quarantined {
                task: 43,
                failures: 3,
                payload: TaskPayload::TreeEdit {
                    base_id: 5,
                    edit: TreeEdit::Insert {
                        taxon: 4,
                        a: 1,
                        b: 2,
                    },
                },
            },
            Message::Ping,
            Message::Batch {
                msgs: vec![
                    Message::TreeTask {
                        task: 50,
                        newick: "(a:1,b:2);".into(),
                    },
                    Message::WorkerReady,
                ],
            },
            Message::LeaseRequest { want: 16 },
            Message::StealRequest { want: 4 },
            Message::StealReturn {
                tasks: vec![Message::JumbleTask { task: 51, seed: 3 }],
            },
            Message::Rehome { foreman: 5 },
            Message::WalRound {
                job: 0,
                seed: 11,
                index: 2,
                entry: r#"{"Round":{"index":2}}"#.into(),
            },
            Message::JumbleResume {
                job: 3,
                task: 60,
                seed: 11,
                wal: vec![r#"{"Round":{"index":0}}"#.into()],
            },
            Message::Shutdown,
        ];
        for m in msgs {
            let json = serde_json::to_string(&m).unwrap();
            let back: Message = serde_json::from_str(&json).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(Message::WorkerReady.kind(), MessageKind::WorkerReady);
        assert_eq!(Message::WorkerReady.kind().name(), "WorkerReady");
        assert_eq!(Message::Shutdown.kind().name(), "Shutdown");
        assert_eq!(MessageKind::TreeResult.to_string(), "TreeResult");
        assert_eq!(Message::PeerDown { rank: 3 }.kind().name(), "PeerDown");
        assert_eq!(Message::PeerUp { rank: 3 }.kind().name(), "PeerUp");
        assert_eq!(MessageKind::Quarantined.name(), "Quarantined");
        assert_eq!(MessageKind::Abort.name(), "Abort");
        assert_eq!(MessageKind::BaseTopology.name(), "BaseTopology");
        assert_eq!(MessageKind::TreeEditTask.name(), "TreeEditTask");
    }

    #[test]
    fn completed_event_defaults_service_us() {
        // Logs written before `service_us` existed still parse.
        let json = r#"{"Completed":{"task":1,"worker":3,"ln_likelihood":-10.5,"work_units":42}}"#;
        let ev: MonitorEvent = serde_json::from_str(json).unwrap();
        assert_eq!(
            ev,
            MonitorEvent::Completed {
                task: 1,
                worker: 3,
                ln_likelihood: -10.5,
                work_units: 42,
                service_us: 0,
            }
        );
    }

    #[test]
    fn wire_bytes_scale_with_payload() {
        let small = Message::TreeTask {
            task: 1,
            newick: "(a,b);".into(),
        };
        let big = Message::TreeTask {
            task: 1,
            newick: "(a,b);".repeat(100),
        };
        assert!(big.wire_bytes() > small.wire_bytes());
    }
}
