//! Threaded transport: MPI ranks as OS threads over crossbeam channels.

use crate::message::Message;
use crate::transport::{CommError, Rank, Transport};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// A set of connected endpoints, one per rank. Created once, then each
/// endpoint is moved into its rank's thread.
pub struct ThreadUniverse;

/// One rank's endpoint in a [`ThreadUniverse`].
pub struct ThreadTransport {
    rank: Rank,
    senders: Vec<Sender<(Rank, Message)>>,
    receiver: Receiver<(Rank, Message)>,
}

impl ThreadUniverse {
    /// Create `n` fully connected endpoints.
    pub fn create(n: usize) -> Vec<ThreadTransport> {
        assert!(n >= 1);
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| ThreadTransport {
                rank,
                senders: senders.clone(),
                receiver,
            })
            .collect()
    }
}

impl Transport for ThreadTransport {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.senders.len()
    }

    fn send(&self, to: Rank, msg: &Message) -> Result<(), CommError> {
        let tx = self.senders.get(to).ok_or(CommError::UnknownRank(to))?;
        tx.send((self.rank, msg.clone()))
            .map_err(|_| CommError::Disconnected(to))
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(Rank, Message)>, CommError> {
        match self.receiver.recv_timeout(timeout) {
            Ok(pair) => Ok(Some(pair)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(CommError::Disconnected(self.rank)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ping_pong_between_threads() {
        let mut ends = ThreadUniverse::create(2);
        let b = ends.pop().unwrap();
        let a = ends.pop().unwrap();
        let echo = thread::spawn(move || {
            let (from, msg) = b.recv().unwrap();
            assert_eq!(from, 0);
            b.send(from, &msg).unwrap();
        });
        a.send(1, &Message::WorkerReady).unwrap();
        let (from, msg) = a.recv().unwrap();
        assert_eq!(from, 1);
        assert_eq!(msg, Message::WorkerReady);
        echo.join().unwrap();
    }

    #[test]
    fn ranks_and_size() {
        let ends = ThreadUniverse::create(5);
        assert_eq!(ends.len(), 5);
        for (i, e) in ends.iter().enumerate() {
            assert_eq!(e.rank(), i);
            assert_eq!(e.size(), 5);
        }
    }

    #[test]
    fn self_send_is_allowed() {
        let ends = ThreadUniverse::create(1);
        let a = &ends[0];
        a.send(0, &Message::Shutdown).unwrap();
        let (from, msg) = a.try_recv().unwrap().unwrap();
        assert_eq!(from, 0);
        assert_eq!(msg, Message::Shutdown);
    }

    #[test]
    fn unknown_rank_rejected() {
        let ends = ThreadUniverse::create(2);
        assert_eq!(
            ends[0].send(9, &Message::Shutdown),
            Err(CommError::UnknownRank(9))
        );
    }

    #[test]
    fn timeout_returns_none() {
        let ends = ThreadUniverse::create(2);
        let got = ends[0].recv_timeout(Duration::from_millis(10)).unwrap();
        assert!(got.is_none());
        assert!(ends[0].try_recv().unwrap().is_none());
    }

    #[test]
    fn messages_preserve_fifo_per_sender() {
        let ends = ThreadUniverse::create(2);
        for i in 0..10u64 {
            ends[1]
                .send(
                    0,
                    &Message::TreeTask {
                        task: i,
                        newick: String::new(),
                    },
                )
                .unwrap();
        }
        for i in 0..10u64 {
            let (_, msg) = ends[0].try_recv().unwrap().unwrap();
            match msg {
                Message::TreeTask { task, .. } => assert_eq!(task, i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn broadcast_reaches_everyone_but_self() {
        let ends = ThreadUniverse::create(4);
        ends[0].broadcast(&Message::Shutdown).unwrap();
        for e in &ends[1..] {
            let (from, msg) = e.try_recv().unwrap().unwrap();
            assert_eq!(from, 0);
            assert_eq!(msg, Message::Shutdown);
        }
        assert!(ends[0].try_recv().unwrap().is_none());
    }
}
