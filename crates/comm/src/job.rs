//! The unified Job API: one request/response surface shared by the CLI
//! one-shot path, the `fdml-serve` daemon, and the `--submit` / `--status`
//! / `--attach` client modes.
//!
//! A [`JobSpec`] is the complete, serializable description of one
//! inference job: the alignment text, the engine/search configuration in
//! its wire form, the jumble plan, and the per-job quota requests. It is
//! what travels in a `Submit` frame, what the daemon persists in its job
//! registry, and what `fdml-core`'s entrypoints are constructed from.
//!
//! [`JobStatus`] is the polling surface (`--status`), [`JobResult`] the
//! final product streamed back to an attached client, and
//! [`RejectReason`] the typed admission-control verdict for submissions
//! the daemon refuses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a job inside one daemon's registry (monotonically
/// assigned at admission, stable across daemon restarts).
pub type JobId = u64;

/// A complete, self-contained description of one inference job.
///
/// Everything a foreman/worker fleet needs travels inside: the alignment
/// (PHYLIP text), the engine configuration (the same wire JSON broadcast
/// in `ProblemData`), the jumble plan, and the quota requests checked at
/// admission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The alignment, as interleaved or sequential PHYLIP text.
    pub phylip: String,
    /// Engine + search-control configuration in wire-JSON form (the
    /// `SearchConfig::engine_config_json` format).
    pub config_json: String,
    /// Number of independent random-addition searches (jumbles) to run.
    pub jumbles: usize,
    /// Base random seed; the farm's seed planner derives one adjusted
    /// seed per jumble from it.
    pub base_seed: u64,
    /// Quota request: the most workers this job may occupy at once.
    /// `0` means "no per-job cap" (the daemon may still impose one).
    pub max_ranks: usize,
    /// Quota request: wall-time budget in milliseconds. `0` means
    /// unlimited (subject to the daemon's own ceiling).
    pub max_wall_ms: u64,
    /// Intra-rank kernel threads per worker (`--intra-threads`). Typed
    /// here (not just inside `config_json`) so the scheduler can account
    /// a rank as `intra_threads` hardware slots without parsing the
    /// engine config. `0` is normalized to 1 (serial) at build time;
    /// absent in old payloads it deserializes to 1.
    #[serde(default = "default_intra_threads")]
    pub intra_threads: usize,
    /// Free-form label shown in status output.
    pub label: String,
}

fn default_intra_threads() -> usize {
    1
}

impl JobSpec {
    /// Start building a spec flag by flag (the CLI path).
    pub fn builder() -> JobSpecBuilder {
        JobSpecBuilder::default()
    }
}

/// Incremental [`JobSpec`] construction with conflict checking.
///
/// Both the one-shot CLI path and the daemon submit path funnel their
/// flags through this builder; [`JobSpecBuilder::build`] rejects
/// incomplete or contradictory combinations with a typed
/// [`JobSpecError`] naming the offending flag instead of silently letting
/// the first-parsed flag win.
#[derive(Debug, Default, Clone)]
pub struct JobSpecBuilder {
    phylip: Option<String>,
    config_json: Option<String>,
    jumbles: Option<usize>,
    base_seed: Option<u64>,
    max_ranks: usize,
    max_wall_ms: u64,
    intra_threads: usize,
    label: String,
    conflicts: Vec<(String, String)>,
}

impl JobSpecBuilder {
    /// Set the PHYLIP alignment text (`--input`).
    pub fn phylip(mut self, text: impl Into<String>) -> Self {
        self.phylip = Some(text.into());
        self
    }

    /// Set the engine configuration wire JSON.
    pub fn config_json(mut self, json: impl Into<String>) -> Self {
        self.config_json = Some(json.into());
        self
    }

    /// Set the jumble count (`--jumbles`).
    pub fn jumbles(mut self, n: usize) -> Self {
        self.jumbles = Some(n);
        self
    }

    /// Set the base jumble seed (`--jumble`).
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = Some(seed);
        self
    }

    /// Request a per-job worker cap (`--max-job-ranks`).
    pub fn max_ranks(mut self, n: usize) -> Self {
        self.max_ranks = n;
        self
    }

    /// Request a wall-time budget in milliseconds (`--max-wall-ms`).
    pub fn max_wall_ms(mut self, ms: u64) -> Self {
        self.max_wall_ms = ms;
        self
    }

    /// Set the intra-rank kernel thread count (`--intra-threads`);
    /// `0` means "unset" and normalizes to 1 (serial).
    pub fn intra_threads(mut self, n: usize) -> Self {
        self.intra_threads = n;
        self
    }

    /// Attach a display label (`--job-label`).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Record that two mutually exclusive flags were both given. The
    /// check is deferred so every conflict is reported from one place
    /// ([`JobSpecBuilder::build`]) with a typed error.
    pub fn conflict(mut self, flag: impl Into<String>, conflicts_with: impl Into<String>) -> Self {
        self.conflicts.push((flag.into(), conflicts_with.into()));
        self
    }

    /// Record a conflict when `both` is true (convenience for flag
    /// tables).
    pub fn conflict_if(
        self,
        both: bool,
        flag: impl Into<String>,
        conflicts_with: impl Into<String>,
    ) -> Self {
        if both {
            self.conflict(flag, conflicts_with)
        } else {
            self
        }
    }

    /// Finish the spec, or report the first missing / conflicting /
    /// invalid flag as a typed error.
    pub fn build(self) -> Result<JobSpec, JobSpecError> {
        if let Some((flag, conflicts_with)) = self.conflicts.into_iter().next() {
            return Err(JobSpecError::Conflict {
                flag,
                conflicts_with,
            });
        }
        let phylip = self.phylip.ok_or(JobSpecError::Missing {
            flag: "--input".into(),
        })?;
        let config_json = self.config_json.ok_or(JobSpecError::Missing {
            flag: "--config".into(),
        })?;
        let jumbles = self.jumbles.unwrap_or(1);
        if jumbles == 0 {
            return Err(JobSpecError::Invalid {
                flag: "--jumbles".into(),
                reason: "must be at least 1".into(),
            });
        }
        let base_seed = self.base_seed.unwrap_or(1);
        if base_seed == 0 {
            return Err(JobSpecError::Invalid {
                flag: "--jumble".into(),
                reason: "seed 0 is reserved (fastDNAml seeds are positive)".into(),
            });
        }
        Ok(JobSpec {
            phylip,
            config_json,
            jumbles,
            base_seed,
            max_ranks: self.max_ranks,
            max_wall_ms: self.max_wall_ms,
            intra_threads: self.intra_threads.max(1),
            label: self.label,
        })
    }
}

/// Typed builder failure: what flag broke the spec, and how.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobSpecError {
    /// Two mutually exclusive flags were both given.
    Conflict {
        /// The later / offending flag.
        flag: String,
        /// The flag it cannot be combined with.
        conflicts_with: String,
    },
    /// A required flag was never given.
    Missing {
        /// The absent flag.
        flag: String,
    },
    /// A flag's value is out of range or unparsable.
    Invalid {
        /// The offending flag.
        flag: String,
        /// Why the value was refused.
        reason: String,
    },
}

impl fmt::Display for JobSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobSpecError::Conflict {
                flag,
                conflicts_with,
            } => write!(f, "flag {flag} conflicts with {conflicts_with}"),
            JobSpecError::Missing { flag } => write!(f, "required flag {flag} is missing"),
            JobSpecError::Invalid { flag, reason } => {
                write!(f, "invalid value for {flag}: {reason}")
            }
        }
    }
}

impl std::error::Error for JobSpecError {}

/// Coarse lifecycle state of a job inside the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Admitted, waiting for the dispatcher to pick it up.
    Queued,
    /// At least one of its jumbles is dispatched or done.
    Running,
    /// Every jumble finished; the result is available.
    Done,
    /// The job was abandoned (quota exhausted, data error, abort).
    Failed,
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// Point-in-time progress of one job (the `--status` answer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// The job being described.
    pub job: JobId,
    /// Lifecycle state.
    pub state: JobState,
    /// Jumbles completed so far.
    pub done: usize,
    /// Total jumbles in the job.
    pub total: usize,
    /// The job's label, echoed back.
    pub label: String,
    /// Failure reason, when `state` is [`JobState::Failed`].
    pub failure: Option<String>,
}

/// One finished jumble inside a [`JobResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTree {
    /// The adjusted jumble seed that produced this tree.
    pub seed: u64,
    /// The tree in Newick form.
    pub newick: String,
    /// Its final log-likelihood.
    pub ln_likelihood: f64,
}

/// The final product of a job, streamed to an attached client and kept in
/// the daemon registry after completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// The job this result belongs to.
    pub job: JobId,
    /// Every jumble's tree, in seed-plan order (byte-identical to a
    /// serial run of the same seeds).
    pub trees: Vec<JobTree>,
    /// Majority-rule consensus over `trees` (absent for a single jumble).
    pub consensus_newick: Option<String>,
    /// Newick of the best-scoring jumble (first in plan order on ties).
    pub best_newick: String,
    /// Log-likelihood of `best_newick`.
    pub best_ln_likelihood: f64,
    /// The job's rendered per-job run report, when observation was on.
    pub report: Option<String>,
}

/// Typed admission-control verdict for a refused submission or an
/// unanswerable query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The spec asked for more than the daemon allows.
    QuotaExceeded {
        /// Which quota was exceeded (`"max_ranks"`, `"max_wall_ms"`,
        /// `"jumbles"`).
        quota: String,
        /// What the spec requested.
        requested: u64,
        /// The daemon's ceiling.
        limit: u64,
    },
    /// The daemon's admission queue is at capacity.
    QueueFull {
        /// The configured queue limit.
        limit: usize,
    },
    /// The spec failed validation (bad PHYLIP, bad config JSON, ...).
    Malformed {
        /// What was wrong.
        reason: String,
    },
    /// The queried/attached job id is not in the registry.
    UnknownJob {
        /// The id that was asked for.
        job: JobId,
    },
    /// An attach to a job that ended without a result.
    JobFailed {
        /// The failed job.
        job: JobId,
        /// Why it failed.
        reason: String,
    },
    /// A rank-slot rejoin presented a job binding that no longer matches
    /// the slot's — the cross-job guard: after the hub declared a peer
    /// dead and re-dedicated its rank to another job, the stale client's
    /// reconnect must be refused, not silently bound to the wrong problem.
    WrongJob {
        /// The rank slot being contested.
        rank: usize,
        /// The job the slot is currently bound to.
        bound: Option<JobId>,
        /// The job the reconnecting client presented.
        presented: Option<JobId>,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QuotaExceeded {
                quota,
                requested,
                limit,
            } => write!(
                f,
                "quota {quota} exceeded: requested {requested}, limit {limit}"
            ),
            RejectReason::QueueFull { limit } => {
                write!(f, "job queue full (limit {limit})")
            }
            RejectReason::Malformed { reason } => write!(f, "malformed job spec: {reason}"),
            RejectReason::UnknownJob { job } => write!(f, "unknown job {job}"),
            RejectReason::JobFailed { job, reason } => {
                write!(f, "job {job} failed: {reason}")
            }
            RejectReason::WrongJob {
                rank,
                bound,
                presented,
            } => write!(
                f,
                "rank {rank} is bound to job {bound:?}, not {presented:?}"
            ),
        }
    }
}

impl std::error::Error for RejectReason {}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> JobSpecBuilder {
        JobSpec::builder()
            .phylip(" 4 4\na ACGT\nb ACGA\nc AGGT\nd ACTT\n")
            .config_json("{}")
    }

    #[test]
    fn builder_produces_defaults() {
        let spec = minimal().build().unwrap();
        assert_eq!(spec.jumbles, 1);
        assert_eq!(spec.base_seed, 1);
        assert_eq!(spec.max_ranks, 0);
        assert_eq!(spec.max_wall_ms, 0);
    }

    #[test]
    fn conflict_is_typed_and_names_the_flag() {
        let err = minimal()
            .conflict("--midpoint", "--outgroup")
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            JobSpecError::Conflict {
                flag: "--midpoint".into(),
                conflicts_with: "--outgroup".into(),
            }
        );
        assert!(err.to_string().contains("--midpoint"));
        assert!(err.to_string().contains("--outgroup"));
    }

    #[test]
    fn conflict_if_only_fires_when_true() {
        assert!(minimal().conflict_if(false, "--a", "--b").build().is_ok());
        assert!(minimal().conflict_if(true, "--a", "--b").build().is_err());
    }

    #[test]
    fn missing_input_is_reported() {
        let err = JobSpec::builder().config_json("{}").build().unwrap_err();
        assert!(matches!(err, JobSpecError::Missing { ref flag } if flag == "--input"));
    }

    #[test]
    fn zero_jumbles_rejected() {
        let err = minimal().jumbles(0).build().unwrap_err();
        assert!(matches!(err, JobSpecError::Invalid { ref flag, .. } if flag == "--jumbles"));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = minimal()
            .jumbles(3)
            .base_seed(7)
            .max_ranks(4)
            .max_wall_ms(60_000)
            .label("demo")
            .build()
            .unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn status_and_result_round_trip() {
        let status = JobStatus {
            job: 2,
            state: JobState::Running,
            done: 1,
            total: 3,
            label: "demo".into(),
            failure: None,
        };
        let json = serde_json::to_string(&status).unwrap();
        assert_eq!(serde_json::from_str::<JobStatus>(&json).unwrap(), status);

        let result = JobResult {
            job: 2,
            trees: vec![JobTree {
                seed: 7,
                newick: "(a,b,(c,d));".into(),
                ln_likelihood: -123.5,
            }],
            consensus_newick: None,
            best_newick: "(a,b,(c,d));".into(),
            best_ln_likelihood: -123.5,
            report: None,
        };
        let json = serde_json::to_string(&result).unwrap();
        assert_eq!(serde_json::from_str::<JobResult>(&json).unwrap(), result);
    }

    #[test]
    fn reject_reasons_round_trip_and_render() {
        let reasons = vec![
            RejectReason::QuotaExceeded {
                quota: "max_ranks".into(),
                requested: 64,
                limit: 8,
            },
            RejectReason::QueueFull { limit: 4 },
            RejectReason::Malformed {
                reason: "bad phylip".into(),
            },
            RejectReason::UnknownJob { job: 9 },
        ];
        for r in reasons {
            let json = serde_json::to_string(&r).unwrap();
            assert_eq!(serde_json::from_str::<RejectReason>(&json).unwrap(), r);
            assert!(!r.to_string().is_empty());
        }
    }
}
