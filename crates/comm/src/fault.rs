//! Fault injection for exercising the foreman's timeout-based fault
//! tolerance (paper §2.2): a worker that "fails to return an evaluated tree
//! within the time specified" is removed from the ready list and its tree
//! re-dispatched; if it answers later it is re-admitted.
//!
//! [`FaultyTransport`] wraps any transport and applies a [`FaultPlan`] to
//! *outgoing* messages, so wrapping a worker's endpoint simulates that
//! worker dying (drop everything), stalling (drop the first `n` replies),
//! or being slow (delay replies).

use crate::message::Message;
use crate::transport::{CommError, Rank, Transport};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// What to do with outgoing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Silently drop matching messages.
    Drop,
    /// Hold matching messages for this long before sending (the
    /// "delinquent worker recovers late" scenario). The delay is applied
    /// by sleeping on the sending side, which is adequate for tests.
    Delay(Duration),
    /// Sever the rank entirely: once triggered, every send *and* receive
    /// fails with [`CommError::Disconnected`] — the in-process stand-in for
    /// a worker process dying or its link dropping mid-round.
    Disconnect,
}

/// A fault plan: apply `kind` to the first `count` outgoing result
/// messages (`TreeResult` or `JumbleResult`), then behave normally. For
/// [`FaultKind::Disconnect`] the `count` is instead how many results are
/// let *through* before the link is severed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The fault to inject.
    pub kind: FaultKind,
    /// How many tree results to affect (`u64::MAX` ≈ forever); for
    /// `Disconnect`, how many to allow before severing.
    pub count: u64,
}

impl FaultPlan {
    /// Drop the first `count` tree results (a worker that computes but
    /// whose replies are lost / a worker that dies mid-round).
    pub fn drop_first(count: u64) -> FaultPlan {
        FaultPlan {
            kind: FaultKind::Drop,
            count,
        }
    }

    /// Delay the first `count` tree results.
    pub fn delay_first(count: u64, by: Duration) -> FaultPlan {
        FaultPlan {
            kind: FaultKind::Delay(by),
            count,
        }
    }

    /// Let `count` tree results through, then sever the link for good.
    pub fn disconnect_after(count: u64) -> FaultPlan {
        FaultPlan {
            kind: FaultKind::Disconnect,
            count,
        }
    }
}

/// A transport wrapper that injects faults into outgoing tree results.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: Mutex<FaultPlan>,
    severed: AtomicBool,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap a transport with a fault plan.
    pub fn new(inner: T, plan: FaultPlan) -> FaultyTransport<T> {
        let severed = plan.kind == FaultKind::Disconnect && plan.count == 0;
        FaultyTransport {
            inner,
            plan: Mutex::new(plan),
            severed: AtomicBool::new(severed),
        }
    }

    /// Remaining faults to inject.
    pub fn remaining(&self) -> u64 {
        self.plan.lock().count
    }

    /// Whether a [`FaultKind::Disconnect`] plan has triggered.
    pub fn is_severed(&self) -> bool {
        self.severed.load(Ordering::SeqCst)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, to: Rank, msg: &Message) -> Result<(), CommError> {
        if self.severed.load(Ordering::SeqCst) {
            return Err(CommError::Disconnected(self.inner.rank()));
        }
        if let Message::TreeResult { .. } | Message::JumbleResult { .. } = msg {
            let mut plan = self.plan.lock();
            match plan.kind {
                FaultKind::Disconnect => {
                    if plan.count == 0 {
                        drop(plan);
                        self.severed.store(true, Ordering::SeqCst);
                        return Err(CommError::Disconnected(self.inner.rank()));
                    }
                    plan.count -= 1;
                }
                FaultKind::Drop if plan.count > 0 => {
                    plan.count -= 1;
                    return Ok(());
                }
                FaultKind::Delay(by) if plan.count > 0 => {
                    plan.count -= 1;
                    drop(plan);
                    std::thread::sleep(by);
                }
                _ => {}
            }
        }
        self.inner.send(to, msg)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(Rank, Message)>, CommError> {
        if self.severed.load(Ordering::SeqCst) {
            return Err(CommError::Disconnected(self.inner.rank()));
        }
        self.inner.recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threads::ThreadUniverse;

    fn result_msg(task: u64) -> Message {
        Message::TreeResult {
            task,
            newick: "(a,b);".into(),
            ln_likelihood: -1.0,
            work_units: 1,
        }
    }

    #[test]
    fn drops_only_the_planned_count() {
        let mut ends = ThreadUniverse::create(2);
        let receiver = ends.remove(0);
        let faulty = FaultyTransport::new(ends.remove(0), FaultPlan::drop_first(2));
        for t in 0..4 {
            faulty.send(0, &result_msg(t)).unwrap();
        }
        // Results 0 and 1 were dropped; 2 and 3 arrive.
        for expected in [2u64, 3] {
            let (_, msg) = receiver.try_recv().unwrap().unwrap();
            match msg {
                Message::TreeResult { task, .. } => assert_eq!(task, expected),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(receiver.try_recv().unwrap().is_none());
        assert_eq!(faulty.remaining(), 0);
    }

    #[test]
    fn non_result_messages_pass_through() {
        let mut ends = ThreadUniverse::create(2);
        let receiver = ends.remove(0);
        let faulty = FaultyTransport::new(ends.remove(0), FaultPlan::drop_first(u64::MAX));
        faulty.send(0, &Message::WorkerReady).unwrap();
        assert!(receiver.try_recv().unwrap().is_some());
    }

    #[test]
    fn delay_eventually_delivers() {
        let mut ends = ThreadUniverse::create(2);
        let receiver = ends.remove(0);
        let faulty = FaultyTransport::new(
            ends.remove(0),
            FaultPlan::delay_first(1, Duration::from_millis(30)),
        );
        let start = std::time::Instant::now();
        faulty.send(0, &result_msg(0)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert!(receiver.try_recv().unwrap().is_some());
    }

    #[test]
    fn disconnect_severs_after_allowed_results() {
        let mut ends = ThreadUniverse::create(2);
        let receiver = ends.remove(0);
        let faulty = FaultyTransport::new(ends.remove(0), FaultPlan::disconnect_after(2));
        // The first two results pass through.
        faulty.send(0, &result_msg(0)).unwrap();
        faulty.send(0, &result_msg(1)).unwrap();
        assert!(!faulty.is_severed());
        // The third triggers severance...
        assert_eq!(
            faulty.send(0, &result_msg(2)),
            Err(CommError::Disconnected(1))
        );
        assert!(faulty.is_severed());
        // ...after which *everything* fails, both directions.
        assert_eq!(
            faulty.send(0, &Message::WorkerReady),
            Err(CommError::Disconnected(1))
        );
        assert_eq!(
            faulty.recv_timeout(Duration::from_millis(1)),
            Err(CommError::Disconnected(1))
        );
        // The other side saw exactly the two allowed results.
        for expected in [0u64, 1] {
            let (_, msg) = receiver.try_recv().unwrap().unwrap();
            match msg {
                Message::TreeResult { task, .. } => assert_eq!(task, expected),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(receiver.try_recv().unwrap().is_none());
    }

    #[test]
    fn disconnect_after_zero_is_severed_from_the_start() {
        let mut ends = ThreadUniverse::create(2);
        let _receiver = ends.remove(0);
        let faulty = FaultyTransport::new(ends.remove(0), FaultPlan::disconnect_after(0));
        assert!(faulty.is_severed());
        assert_eq!(
            faulty.send(0, &Message::WorkerReady),
            Err(CommError::Disconnected(1))
        );
    }

    #[test]
    fn receive_side_unaffected() {
        let mut ends = ThreadUniverse::create(2);
        let plain = ends.remove(0);
        let faulty = FaultyTransport::new(ends.remove(0), FaultPlan::drop_first(u64::MAX));
        plain.send(1, &Message::Shutdown).unwrap();
        let (from, msg) = faulty.try_recv().unwrap().unwrap();
        assert_eq!(from, 0);
        assert_eq!(msg, Message::Shutdown);
    }
}
