//! Multi-process end-to-end tests: the real `fastdnaml` binary running the
//! TCP transport, one OS process per rank, over loopback.

use std::path::{Path, PathBuf};
use std::process::Command;

const PHYLIP: &str = "\
6 40
t0        ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
t1        ACGTACGTACTTACGTACGTACGAACGTACGTACGTACGT
t2        ACGAACGTACGTACGGACGTACGTACCTACGTAGGTACGT
t3        ACGAACGTACGTACGGACGTACTTACCTACGTAGGTACTT
t4        TCGAACGGACGTACGGAAGTACGTACCTACGGAGGTACGA
t5        TCGAACGGACGTACGGAAGTACGTTCCTACGGAGGAACGA
";

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdml_net_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    std::fs::write(dir.join("data.phy"), PHYLIP).expect("write alignment");
    dir
}

fn fastdnaml() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fastdnaml"))
}

/// Run the binary, assert success, return (stdout, stderr).
fn run(dir: &Path, extra: &[&str]) -> (String, String) {
    let mut cmd = fastdnaml();
    cmd.args(["--input"])
        .arg(dir.join("data.phy"))
        .args(["--jumble", "7"]);
    for a in extra {
        cmd.arg(a);
    }
    let out = cmd.output().expect("run fastdnaml");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The `RunFinished` likelihood from an obs event log.
fn final_lnl(log: &Path) -> f64 {
    let text = std::fs::read_to_string(log).expect("event log written");
    let records = fastdnaml::obs::JsonlSink::parse(&text).expect("valid JSONL");
    records
        .iter()
        .find_map(|r| match r.event {
            fastdnaml::obs::Event::RunFinished { ln_likelihood } => Some(ln_likelihood),
            _ => None,
        })
        .expect("RunFinished event present")
}

#[test]
fn spawned_processes_match_threaded_parallel_exactly() {
    let dir = workdir("spawn");
    let net_log = dir.join("net.jsonl");
    let thr_log = dir.join("thr.jsonl");
    // One command, four OS processes: coordinator (master) + foreman +
    // monitor + worker, talking over loopback TCP.
    let (net_tree, _) = run(
        &dir,
        &[
            "--net",
            "spawn",
            "4",
            "--quiet",
            "--obs-out",
            net_log.to_str().unwrap(),
        ],
    );
    let (thr_tree, _) = run(
        &dir,
        &[
            "--parallel",
            "4",
            "--quiet",
            "--obs-out",
            thr_log.to_str().unwrap(),
        ],
    );
    // Same search decisions in both deployments: the emitted Newick is
    // byte-for-byte identical, and the final likelihood matches to well
    // under 1e-9 (the events carry it at full f64 precision).
    assert_eq!(net_tree, thr_tree);
    let (net_lnl, thr_lnl) = (final_lnl(&net_log), final_lnl(&thr_log));
    assert!(
        (net_lnl - thr_lnl).abs() < 1e-9,
        "net {net_lnl} vs threads {thr_lnl}"
    );
    // The hub recorded each peer process joining.
    let text = std::fs::read_to_string(&net_log).unwrap();
    let records = fastdnaml::obs::JsonlSink::parse(&text).unwrap();
    for rank in 1..4usize {
        assert!(
            records.iter().any(|r| matches!(
                r.event,
                fastdnaml::obs::Event::NetPeerConnected { rank: got } if got == rank
            )),
            "rank {rank} never connected"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn killed_worker_process_is_requeued_and_the_result_stands() {
    let dir = workdir("chaos");
    let log = dir.join("events.jsonl");
    let (clean_tree, _) = run(&dir, &["--net", "spawn", "5", "--quiet"]);
    // Worker rank 4 calls process::exit after two results: a genuine
    // process death the foreman must detect (timeout, then the eager
    // disconnect path) and route around.
    let (chaos_tree, stderr) = run(
        &dir,
        &[
            "--net",
            "spawn",
            "5",
            "--die-rank",
            "4",
            "--die-after-tasks",
            "2",
            "--worker-timeout-ms",
            "300",
            "--obs-out",
            log.to_str().unwrap(),
        ],
    );
    assert_eq!(chaos_tree, clean_tree);
    assert!(
        stderr.contains("peer rank 4 exited with Some(3)"),
        "stderr: {stderr}"
    );
    let text = std::fs::read_to_string(&log).unwrap();
    let records = fastdnaml::obs::JsonlSink::parse(&text).unwrap();
    assert!(
        records.iter().any(|r| matches!(
            r.event,
            fastdnaml::obs::Event::NetPeerDisconnected {
                rank: 4,
                graceful: false
            }
        )),
        "hub must record the ungraceful death of rank 4"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn supervised_worker_is_respawned_and_readmitted() {
    let dir = workdir("respawn");
    let log = dir.join("events.jsonl");
    // The 6-taxon toy search finishes in tens of milliseconds — less than
    // the supervisor's respawn backoff — so the respawned worker would
    // have nothing left to rejoin. Synthesize a problem big enough that
    // the run comfortably outlasts death, re-fork, and re-admission.
    let tree = fastdnaml::datagen::randtree::yule_tree(12, 0.1, 42);
    let aln = fastdnaml::datagen::evolve(
        &tree,
        300,
        &fastdnaml::datagen::EvolutionConfig::default(),
        7,
        "t",
    );
    std::fs::write(dir.join("data.phy"), fastdnaml::phylo::phylip::write(&aln))
        .expect("write synthesized alignment");
    let (clean_tree, _) = run(&dir, &["--net", "spawn", "5", "--quiet"]);
    // Worker rank 4 dies after two results, but this time a supervisor is
    // watching: the dead process is re-forked (without the die flags), it
    // dials back in, is re-bound to its old rank, receives the problem
    // data again, and serves the rest of the run.
    let (chaos_tree, _) = run(
        &dir,
        &[
            "--net",
            "spawn",
            "5",
            "--supervise",
            "--die-rank",
            "4",
            "--die-after-tasks",
            "2",
            "--worker-timeout-ms",
            "300",
            "--obs-out",
            log.to_str().unwrap(),
        ],
    );
    assert_eq!(chaos_tree, clean_tree);
    let text = std::fs::read_to_string(&log).unwrap();
    let records = fastdnaml::obs::JsonlSink::parse(&text).unwrap();
    assert!(
        records.iter().any(|r| matches!(
            r.event,
            fastdnaml::obs::Event::WorkerRespawned {
                worker: 4,
                restarts
            } if restarts >= 1
        )),
        "supervisor must record the respawn of rank 4"
    );
    assert!(
        records.iter().any(|r| matches!(
            r.event,
            fastdnaml::obs::Event::NetPeerReconnected { rank: 4, .. }
        )),
        "hub must re-bind the respawned process to rank 4"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn coordinator_checkpoint_resumes_to_the_same_tree() {
    let dir = workdir("netcp");
    let cp = dir.join("cp.json");
    let (full_tree, _) = run(
        &dir,
        &[
            "--net",
            "spawn",
            "4",
            "--quiet",
            "--checkpoint-out",
            cp.to_str().unwrap(),
        ],
    );
    assert!(cp.exists(), "checkpoint file must be written");
    // A fresh universe resumes rank 0's saved state; the peers are
    // stateless between tasks so nothing else needs restoring.
    let (resumed_tree, _) = run(
        &dir,
        &[
            "--net",
            "spawn",
            "4",
            "--quiet",
            "--resume",
            cp.to_str().unwrap(),
        ],
    );
    assert_eq!(resumed_tree, full_tree);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn hierarchical_universe_matches_flat_processes_exactly() {
    let dir = workdir("hier");
    let log = dir.join("events.jsonl");
    let (flat_tree, _) = run(&dir, &["--net", "spawn", "6", "--quiet"]);
    // Nine processes, two regions: master + root foreman + monitor + two
    // regional foremen + four workers sharded round-robin between them.
    // The extra scheduling layer must be invisible in the result.
    let (hier_tree, _) = run(
        &dir,
        &[
            "--net",
            "spawn",
            "9",
            "--regions",
            "2",
            "--quiet",
            "--obs-out",
            log.to_str().unwrap(),
        ],
    );
    assert_eq!(hier_tree, flat_tree);
    // The whole nine-rank universe actually assembled.
    let text = std::fs::read_to_string(&log).unwrap();
    let records = fastdnaml::obs::JsonlSink::parse(&text).unwrap();
    for rank in 1..9usize {
        assert!(
            records.iter().any(|r| matches!(
                r.event,
                fastdnaml::obs::Event::NetPeerConnected { rank: got } if got == rank
            )),
            "rank {rank} never connected"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn json_wire_matches_binary_wire_exactly() {
    let dir = workdir("wirefmt");
    // Same universe, opposite hub codecs. The peers default to binary, so
    // the JSON run is a genuinely mixed fleet (JSON hub ↔ binary workers)
    // relying on per-connection negotiation.
    let (binary_tree, _) = run(
        &dir,
        &["--net", "spawn", "4", "--quiet", "--wire", "binary"],
    );
    let (json_tree, _) = run(&dir, &["--net", "spawn", "4", "--quiet", "--wire", "json"]);
    assert_eq!(json_tree, binary_tree);
    std::fs::remove_dir_all(dir).ok();
}
