//! End-to-end tests of the `fdml-serve` daemon: multi-tenant scheduling
//! over one shared fleet, byte-identical results vs serial runs, durable
//! restart-resume, and typed admission control.

use fastdnaml::comm::job::{JobSpec, JobState, RejectReason};
use fastdnaml::core::farm::run_one_jumble;
use fastdnaml::core::job::ResolvedJob;
use fastdnaml::core::worker::run_worker;
use fastdnaml::net::TcpTransport;
use fastdnaml::obs::Obs;
use fastdnaml::phylo::newick;
use fastdnaml::prelude::SearchConfig;
use fastdnaml::serve::{client, Daemon, ServeOptions};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

fn spec(phylip: &str, jumbles: usize, base_seed: u64, label: &str) -> JobSpec {
    JobSpec::builder()
        .phylip(phylip)
        .config_json(SearchConfig::default().engine_config_json())
        .jumbles(jumbles)
        .base_seed(base_seed)
        .label(label)
        .build()
        .unwrap()
}

const PHYLIP_A: &str = " 5 16\nta0 ACGTACGTACGTACGT\nta1 ACGTACGAACGTACGA\nta2 ACTTACGAACGAACGA\nta3 TCTTACGAACGATCGA\nta4 TCTTACGTACGATCGT\n";
const PHYLIP_B: &str = " 4 16\ntb0 AAGTACGTAGGTACGT\ntb1 ACGTACTAACGTACTA\ntb2 ACTTACGAACGAACGA\ntb3 TCTTAGGAACGATCGA\n";

/// The ground truth the daemon must reproduce byte-for-byte: every
/// planned seed run through the single-jumble code path, serially.
fn serial_reference(spec: &JobSpec) -> Vec<(u64, String, f64)> {
    let resolved = ResolvedJob::from_spec(spec).unwrap();
    let engine = resolved.config.build_engine(&resolved.alignment);
    resolved
        .seeds
        .iter()
        .map(|&seed| {
            let run = run_one_jumble(&engine, &resolved.alignment, &resolved.config, seed).unwrap();
            (
                seed,
                newick::write_tree(&run.tree, resolved.alignment.names()),
                run.ln_likelihood,
            )
        })
        .collect()
}

/// Join `n` in-process workers to the daemon's shared fleet.
fn fleet(addr: SocketAddr, n: usize) -> Vec<JoinHandle<()>> {
    (0..n)
        .map(|_| {
            thread::spawn(move || {
                if let Ok(transport) = TcpTransport::connect(addr) {
                    let _ = run_worker(transport, Obs::disabled());
                }
            })
        })
        .collect()
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdml-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn concurrent_jobs_over_one_fleet_match_serial_runs() {
    let dir = state_dir("concurrent");
    let daemon = Daemon::start(ServeOptions::new("127.0.0.1:0", 5, &dir)).unwrap();
    let addr = daemon.local_addr();
    let workers = fleet(addr, 2);

    let spec_a = spec(PHYLIP_A, 3, 7, "farm-a");
    let spec_b = spec(PHYLIP_B, 2, 11, "farm-b");
    let want_a = serial_reference(&spec_a);
    let want_b = serial_reference(&spec_b);

    let job_a = client::submit(addr, &spec_a).unwrap();
    let job_b = client::submit(addr, &spec_b).unwrap();
    assert_ne!(job_a, job_b);

    // Attach to both from separate threads so the two farms run, and
    // finish, interleaved over the same two workers.
    let attach = |job| {
        thread::spawn(move || {
            let mut events = Vec::new();
            let result = client::attach(addr, job, Duration::from_secs(120), &mut |e| {
                events.push(e.to_string())
            })
            .unwrap();
            (result, events)
        })
    };
    let (result_a, events_a) = attach(job_a).join().unwrap();
    let (result_b, _) = attach(job_b).join().unwrap();

    for (want, result) in [(&want_a, &result_a), (&want_b, &result_b)] {
        assert_eq!(result.trees.len(), want.len());
        for (tree, (seed, newick_text, lnl)) in result.trees.iter().zip(want.iter()) {
            assert_eq!(tree.seed, *seed);
            assert_eq!(&tree.newick, newick_text, "tree for seed {seed} diverged");
            assert!((tree.ln_likelihood - lnl).abs() < 1e-9);
        }
    }
    // Multi-jumble jobs carry a consensus and a per-job report.
    assert!(result_a.consensus_newick.is_some());
    assert!(result_a.report.is_some());
    assert!(!events_a.is_empty());
    // Best tree = strictly-best (first on ties) of the serial reference.
    let best_a = want_a
        .iter()
        .fold(&want_a[0], |b, t| if t.2 > b.2 { t } else { b });
    assert_eq!(result_a.best_newick, best_a.1);

    let status = client::status(addr, job_a).unwrap();
    assert_eq!(status.state, JobState::Done);
    assert_eq!(status.done, status.total);
    assert_eq!(status.label, "farm-a");

    daemon.stop();
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_restart_resumes_both_jobs_from_durable_state() {
    let dir = state_dir("restart");
    let spec_a = spec(PHYLIP_A, 4, 17, "restart-a");
    let spec_b = spec(PHYLIP_B, 3, 23, "restart-b");
    let want_a = serial_reference(&spec_a);
    let want_b = serial_reference(&spec_b);

    // First daemon: submit both jobs, let at least one jumble land, then
    // die without ceremony.
    let (job_a, job_b) = {
        let daemon = Daemon::start(ServeOptions::new("127.0.0.1:0", 4, &dir)).unwrap();
        let addr = daemon.local_addr();
        let workers = fleet(addr, 1);
        let job_a = client::submit(addr, &spec_a).unwrap();
        let job_b = client::submit(addr, &spec_b).unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let done_a = client::status(addr, job_a).unwrap().done;
            let done_b = client::status(addr, job_b).unwrap().done;
            if done_a + done_b >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "no jumble finished in time");
            thread::sleep(Duration::from_millis(20));
        }
        daemon.kill();
        for w in workers {
            let _ = w.join();
        }
        (job_a, job_b)
    };

    // Second daemon, same state directory, fresh port and fleet: both
    // jobs resume and finish with the full serial-identical tree sets.
    let daemon = Daemon::start(ServeOptions::new("127.0.0.1:0", 5, &dir)).unwrap();
    let addr = daemon.local_addr();
    let workers = fleet(addr, 2);
    for (job, want) in [(job_a, &want_a), (job_b, &want_b)] {
        let result = client::attach(addr, job, Duration::from_secs(120), &mut |_| {}).unwrap();
        // No lost jumbles, no duplicates: exactly the planned seeds, in
        // plan order, each with the serial run's bytes.
        let seeds: Vec<u64> = result.trees.iter().map(|t| t.seed).collect();
        let want_seeds: Vec<u64> = want.iter().map(|w| w.0).collect();
        assert_eq!(seeds, want_seeds);
        for (tree, (seed, newick_text, _)) in result.trees.iter().zip(want.iter()) {
            assert_eq!(&tree.newick, newick_text, "resumed seed {seed} diverged");
        }
    }
    daemon.stop();
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quota_exceeded_submission_is_rejected_with_typed_error() {
    let dir = state_dir("quota");
    let mut options = ServeOptions::new("127.0.0.1:0", 4, &dir);
    options.max_job_ranks = 2;
    options.max_wall_ms = 60_000;
    options.max_jobs = 1;
    let daemon = Daemon::start(options).unwrap();
    let addr = daemon.local_addr();

    // Asks for more workers than the daemon's per-job ceiling.
    let mut greedy = spec(PHYLIP_A, 2, 5, "greedy");
    greedy.max_ranks = 8;
    match client::submit(addr, &greedy) {
        Err(client::ClientError::Rejected(RejectReason::QuotaExceeded {
            quota,
            requested,
            limit,
        })) => {
            assert_eq!(quota, "max_ranks");
            assert_eq!((requested, limit), (8, 2));
        }
        other => panic!("expected a max_ranks quota rejection, got {other:?}"),
    }

    // Asks for more wall time than the ceiling.
    let mut patient = spec(PHYLIP_A, 2, 5, "patient");
    patient.max_wall_ms = 3_600_000;
    match client::submit(addr, &patient) {
        Err(client::ClientError::Rejected(RejectReason::QuotaExceeded { quota, .. })) => {
            assert_eq!(quota, "max_wall_ms");
        }
        other => panic!("expected a max_wall_ms quota rejection, got {other:?}"),
    }

    // Unparsable alignment: typed Malformed.
    let mut garbled = spec(PHYLIP_A, 1, 5, "garbled");
    garbled.phylip = "not phylip at all".into();
    assert!(matches!(
        client::submit(addr, &garbled),
        Err(client::ClientError::Rejected(
            RejectReason::Malformed { .. }
        ))
    ));

    // Fill the one-job queue (no workers attached, so it stays active),
    // then the next submission bounces with QueueFull.
    let ok = spec(PHYLIP_B, 1, 5, "fits");
    client::submit(addr, &ok).unwrap();
    match client::submit(addr, &ok) {
        Err(client::ClientError::Rejected(RejectReason::QueueFull { limit })) => {
            assert_eq!(limit, 1)
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }

    // Unknown job ids answer typed, not silently.
    assert!(matches!(
        client::status(addr, 999),
        Err(client::ClientError::Rejected(RejectReason::UnknownJob {
            job: 999
        }))
    ));

    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wall_time_quota_fails_the_job_with_a_typed_attach_error() {
    let dir = state_dir("wall");
    let daemon = Daemon::start(ServeOptions::new("127.0.0.1:0", 4, &dir)).unwrap();
    let addr = daemon.local_addr();

    // One sacrificial worker; the job's wall budget is 1 ms, so the
    // scheduler declares it failed on the first quota sweep after its
    // first dispatch.
    let workers = fleet(addr, 1);
    let mut hurried = spec(PHYLIP_A, 50, 31, "hurried");
    hurried.max_wall_ms = 1;
    let job = client::submit(addr, &hurried).unwrap();
    match client::attach(addr, job, Duration::from_secs(60), &mut |_| {}) {
        Err(client::ClientError::Rejected(RejectReason::JobFailed {
            job: failed,
            reason,
        })) => {
            assert_eq!(failed, job);
            assert!(reason.contains("wall-time"), "unexpected reason: {reason}");
        }
        Ok(_) => {
            // The whole farm beat the sweep — possible only if every
            // jumble finished inside one scheduler tick; with 50 jumbles
            // on one worker that would be a bug elsewhere.
            panic!("50-jumble farm finished inside a 1 ms wall budget");
        }
        other => panic!("expected JobFailed, got {other:?}"),
    }
    let status = client::status(addr, job).unwrap();
    assert_eq!(status.state, JobState::Failed);
    assert!(status.failure.is_some());

    daemon.stop();
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
