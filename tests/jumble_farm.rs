//! The jumble-farm determinism and fault suite.
//!
//! The contract under test: a farm of N jumbles produces the *same* N
//! trees and the same consensus — byte for byte — whether the jumbles run
//! serially, sharded over worker threads, or sharded over worker
//! processes on the TCP transport; at any farm width; through dropped,
//! delayed, and severed results; through a worker process dying mid-farm;
//! and through a kill/resume cycle driven by the farm manifest.

use fastdnaml::comm::fault::FaultPlan;
use fastdnaml::core::checkpoint::{FarmManifest, JumbleStatus};
use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::farm::{plan_seeds, serial_farm, FarmOptions};
use fastdnaml::core::job::ResolvedJob;
use fastdnaml::core::runner::{farm_search, RunOptions};
use fastdnaml::obs::Obs;
use fastdnaml::phylo::phylip;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

const PHYLIP: &str = "\
6 40
t0        ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
t1        ACGTACGTACTTACGTACGTACGAACGTACGTACGTACGT
t2        ACGAACGTACGTACGGACGTACGTACCTACGTAGGTACGT
t3        ACGAACGTACGTACGGACGTACTTACCTACGTAGGTACTT
t4        TCGAACGGACGTACGGAAGTACGTACCTACGGAGGTACGA
t5        TCGAACGGACGTACGGAAGTACGTTCCTACGGAGGAACGA
";

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdml_farm_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    std::fs::write(dir.join("data.phy"), PHYLIP).expect("write alignment");
    dir
}

/// Run the binary as a farm, assert success, and return the per-jumble
/// trees file, the consensus, and stderr.
fn run_farm(dir: &Path, tag: &str, extra: &[&str]) -> (String, String, String) {
    let trees = dir.join(format!("trees_{tag}.txt"));
    let cons = dir.join(format!("cons_{tag}.txt"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fastdnaml"));
    cmd.arg("--input")
        .arg(dir.join("data.phy"))
        .args(["--jumble", "7", "--jumbles", "5"])
        .arg("--jumble-trees")
        .arg(&trees)
        .arg("--output")
        .arg(&cons);
    for a in extra {
        cmd.arg(a);
    }
    let out = cmd.output().expect("run fastdnaml");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        std::fs::read_to_string(&trees).expect("jumble trees written"),
        std::fs::read_to_string(&cons).expect("consensus written"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Tentpole invariant: serial baseline, threaded farm at widths 1/2/4,
/// and the multi-process TCP farm all emit byte-identical per-jumble
/// trees and consensus.
#[test]
fn farm_output_is_identical_across_widths_and_transports() {
    let dir = workdir("determinism");
    let (base_trees, base_cons, _) = run_farm(&dir, "serial", &["--quiet"]);
    assert_eq!(base_trees.lines().count(), 5, "one tree per jumble");
    for width in ["1", "2", "4"] {
        let tag = format!("thr_w{width}");
        let (trees, cons, _) = run_farm(
            &dir,
            &tag,
            &["--parallel", "5", "--farm-width", width, "--quiet"],
        );
        assert_eq!(trees, base_trees, "threads width {width}: per-jumble trees");
        assert_eq!(cons, base_cons, "threads width {width}: consensus");
    }
    let (net_trees, net_cons, _) = run_farm(
        &dir,
        "net",
        &["--net", "spawn", "5", "--farm-width", "2", "--quiet"],
    );
    assert_eq!(net_trees, base_trees, "TCP farm: per-jumble trees");
    assert_eq!(net_cons, base_cons, "TCP farm: consensus");
    std::fs::remove_dir_all(dir).ok();
}

/// The in-process fault matrix: dropped, delayed, and severed jumble
/// results must all be routed around without changing a byte of output.
#[test]
fn farm_survives_the_fault_matrix_with_identical_output() {
    let alignment = phylip::parse(PHYLIP).unwrap();
    let config = SearchConfig {
        jumble_seed: 7,
        worker_timeout: Duration::from_millis(200),
        ..Default::default()
    };
    // More jumbles than workers: after a worker's first result the queue
    // is still non-empty, so every worker is guaranteed a second task —
    // which makes each fault below fire deterministically.
    let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), 8).unwrap();
    let clean = farm_search(&job, 6, FarmOptions::default(), RunOptions::default()).unwrap();
    assert_eq!(clean.runs.len(), 8);
    let cases: Vec<(&str, FaultPlan, bool)> = vec![
        // Worker 3 silently drops its first jumble result: requeued by
        // timeout.
        ("drop", FaultPlan::drop_first(1), true),
        // Worker 3 delays each result past the timeout: the foreman times
        // it out, requeues, then re-admits the stragglers.
        (
            "delay",
            FaultPlan::delay_first(2, Duration::from_millis(350)),
            true,
        ),
        // Worker 3's link is severed after one result: its second jumble
        // is stranded in flight and must be requeued on a survivor.
        ("disconnect", FaultPlan::disconnect_after(1), false),
    ];
    for (name, plan, recovers) in cases {
        let mut faults = HashMap::new();
        faults.insert(3usize, plan);
        let faulty = farm_search(
            &job,
            6,
            FarmOptions::default(),
            RunOptions::with_faults(faults),
        )
        .unwrap();
        assert!(
            faulty.foreman.timeouts >= 1,
            "{name}: foreman must detect the fault"
        );
        if !recovers {
            assert_eq!(faulty.foreman.recoveries, 0, "{name}: dead stays dead");
        }
        assert_eq!(faulty.runs.len(), clean.runs.len(), "{name}: every jumble");
        for (c, f) in clean.runs.iter().zip(&faulty.runs) {
            assert_eq!(c.seed, f.seed, "{name}: seed order");
            assert_eq!(c.newick, f.newick, "{name}: tree for seed {}", c.seed);
            assert_eq!(
                c.ln_likelihood.to_bits(),
                f.ln_likelihood.to_bits(),
                "{name}: lnL for seed {}",
                c.seed
            );
        }
        assert_eq!(
            faulty.consensus.splits, clean.consensus.splits,
            "{name}: consensus splits"
        );
        assert!(faulty.manifest.is_complete(), "{name}: manifest complete");
    }
}

/// A worker process killed mid-farm (`--die-rank`): the farm completes on
/// the surviving workers with identical output.
#[test]
fn killed_worker_process_does_not_change_the_farm_output() {
    let dir = workdir("chaos");
    let (clean_trees, clean_cons, _) = run_farm(
        &dir,
        "clean",
        &["--net", "spawn", "5", "--farm-width", "2", "--quiet"],
    );
    let (chaos_trees, chaos_cons, stderr) = run_farm(
        &dir,
        "chaos",
        &[
            "--net",
            "spawn",
            "5",
            "--farm-width",
            "2",
            "--die-rank",
            "4",
            "--die-after-tasks",
            "1",
            "--worker-timeout-ms",
            "300",
        ],
    );
    assert_eq!(chaos_trees, clean_trees);
    assert_eq!(chaos_cons, clean_cons);
    assert!(
        stderr.contains("peer rank 4 exited with Some(3)"),
        "stderr: {stderr}"
    );
    std::fs::remove_dir_all(dir).ok();
}

/// Resume from a partial manifest (as left behind by a killed farm): only
/// the unfinished jumbles are recomputed, and the final output is
/// byte-identical to an uninterrupted run.
#[test]
fn resume_from_a_partial_manifest_reproduces_the_run() {
    let dir = workdir("resume");
    let manifest_path = dir.join("farm.json");
    let (full_trees, full_cons, _) = run_farm(
        &dir,
        "full",
        &["--quiet", "--checkpoint", manifest_path.to_str().unwrap()],
    );
    let full = FarmManifest::from_json(&std::fs::read_to_string(&manifest_path).unwrap()).unwrap();
    assert!(full.is_complete());
    // Reconstruct the manifest a farm killed after two completions would
    // have left behind: the last three entries back to Pending.
    let mut partial = full.clone();
    for entry in partial.entries.iter_mut().skip(2) {
        entry.status = JumbleStatus::Pending;
        entry.newick = None;
        entry.ln_likelihood = None;
    }
    let partial_path = dir.join("partial.json");
    partial.save(&partial_path).unwrap();
    let (resumed_trees, resumed_cons, stderr) = run_farm(
        &dir,
        "resumed",
        &[
            "--parallel",
            "4",
            "--resume",
            partial_path.to_str().unwrap(),
            "--checkpoint",
            partial_path.to_str().unwrap(),
        ],
    );
    assert_eq!(resumed_trees, full_trees);
    assert_eq!(resumed_cons, full_cons);
    // The two finished jumbles were replayed, not recomputed.
    assert_eq!(stderr.matches("(resumed)").count(), 2, "stderr: {stderr}");
    let after = FarmManifest::from_json(&std::fs::read_to_string(&partial_path).unwrap()).unwrap();
    assert_eq!(after, full, "resumed manifest converges to the full one");
    std::fs::remove_dir_all(dir).ok();
}

/// A resume manifest for a different seed set is refused rather than
/// silently recombined.
#[test]
fn mismatched_manifest_is_rejected() {
    let alignment = phylip::parse(PHYLIP).unwrap();
    let config = SearchConfig::default();
    let options = FarmOptions {
        resume: Some(FarmManifest::new(&[99, 101])),
        ..Default::default()
    };
    let err = serial_farm(&alignment, &config, &[1, 3], &options, &Obs::disabled());
    assert!(err.is_err());
}

/// Golden regression: a fixed 10-seed farm on the committed 6-taxon
/// alignment. The consensus Newick is pinned exactly; per-jumble
/// likelihoods are pinned to 1e-6 (they are deterministic on a given
/// machine; the tolerance absorbs libm differences across platforms).
#[test]
#[allow(clippy::excessive_precision)] // golden values recorded at full f64 precision
fn golden_ten_seed_farm() {
    const GOLDEN_CONSENSUS: &str = "(t0,t1,(t2,t3,(t4,t5)100)100);";
    const GOLDEN_LNL: [(u64, f64); 10] = [
        (7, -133.77892732966168),
        (9, -133.77892732075890),
        (11, -133.77892732075890),
        (13, -133.77892732966168),
        (15, -133.77892732075890),
        (17, -133.77892732075890),
        (19, -133.77892732966168),
        (21, -133.77892732966168),
        (23, -133.77892732075890),
        (25, -133.77892732966168),
    ];
    let alignment = phylip::parse(PHYLIP).unwrap();
    let config = SearchConfig {
        jumble_seed: 7,
        ..Default::default()
    };
    let seeds = plan_seeds(7, 10).unwrap();
    assert_eq!(seeds, GOLDEN_LNL.map(|(s, _)| s).to_vec());
    let parts = serial_farm(
        &alignment,
        &config,
        &seeds,
        &FarmOptions::default(),
        &Obs::disabled(),
    )
    .unwrap();
    assert_eq!(parts.runs.len(), 10);
    for (run, (seed, lnl)) in parts.runs.iter().zip(GOLDEN_LNL) {
        assert_eq!(run.seed, seed);
        assert!(
            (run.ln_likelihood - lnl).abs() < 1e-6,
            "seed {seed}: lnL {} vs golden {lnl}",
            run.ln_likelihood
        );
    }
    let got = fastdnaml::phylo::newick::write(&parts.consensus.tree);
    assert_eq!(got, GOLDEN_CONSENSUS);

    // The same ten-seed farm with four pattern-block threads per engine
    // reproduces every tree byte for byte and every likelihood bit for
    // bit — intra-rank parallelism is invisible in the output.
    let threaded_config = SearchConfig {
        intra_threads: 4,
        ..config
    };
    let threaded = serial_farm(
        &alignment,
        &threaded_config,
        &seeds,
        &FarmOptions::default(),
        &Obs::disabled(),
    )
    .unwrap();
    assert_eq!(threaded.runs.len(), parts.runs.len());
    for (serial, intra) in parts.runs.iter().zip(&threaded.runs) {
        assert_eq!(serial.seed, intra.seed);
        assert_eq!(
            serial.newick, intra.newick,
            "intra-threaded farm tree diverged for seed {}",
            serial.seed
        );
        assert_eq!(
            serial.ln_likelihood.to_bits(),
            intra.ln_likelihood.to_bits(),
            "intra-threaded farm lnL diverged for seed {}",
            serial.seed
        );
    }
    assert_eq!(
        fastdnaml::phylo::newick::write(&threaded.consensus.tree),
        GOLDEN_CONSENSUS
    );
}

/// The CLI flag end of the same contract: `--intra-threads 4` emits
/// byte-identical per-jumble trees and consensus.
#[test]
fn intra_threaded_cli_farm_reproduces_serial_output() {
    let dir = workdir("intra");
    let (base_trees, base_cons, _) = run_farm(&dir, "serial", &["--quiet"]);
    let (intra_trees, intra_cons, _) =
        run_farm(&dir, "intra4", &["--intra-threads", "4", "--quiet"]);
    assert_eq!(
        intra_trees, base_trees,
        "--intra-threads 4: per-jumble trees"
    );
    assert_eq!(intra_cons, base_cons, "--intra-threads 4: consensus");
    std::fs::remove_dir_all(dir).ok();
}
