//! Cross-crate integration: data generation → inference → evaluation of
//! the recovered tree, exercising the whole public API the way a user
//! would.

use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::runner::{fast_serial_search, run_jumbles, serial_search};
use fastdnaml::datagen::{evolve, yule_tree, EvolutionConfig};
use fastdnaml::likelihood::engine::LikelihoodEngine;
use fastdnaml::phylo::bipartition::{robinson_foulds, SplitSet};
use fastdnaml::phylo::{newick, phylip};

#[test]
fn search_recovers_generating_topology_with_strong_signal() {
    // Long alignment + moderate divergence → the ML tree should match the
    // generating tree exactly.
    let truth = yule_tree(10, 0.1, 77);
    let config_gen = EvolutionConfig {
        rate_sigma: 0.0,
        prop_invariant: 0.2,
        missing_fraction: 0.0,
        ..Default::default()
    };
    let alignment = evolve(&truth, 2000, &config_gen, 5, "taxon");
    let config = SearchConfig {
        jumble_seed: 3,
        rearrange_radius: 2,
        final_radius: 2,
        ..SearchConfig::default()
    };
    let result = fast_serial_search(&alignment, &config).expect("search succeeds");
    assert_eq!(
        robinson_foulds(&result.tree, &truth, 10),
        0,
        "expected exact recovery; found {}",
        newick::write_tree(&result.tree, alignment.names())
    );
}

#[test]
fn phylip_roundtrip_preserves_search_result() {
    let truth = yule_tree(8, 0.1, 13);
    let alignment = evolve(&truth, 500, &EvolutionConfig::default(), 2, "taxon");
    let text = phylip::write(&alignment);
    let reparsed = phylip::parse(&text).expect("roundtrip parse");
    let config = SearchConfig {
        jumble_seed: 9,
        ..SearchConfig::default()
    };
    let a = serial_search(&alignment, &config).expect("original");
    let b = serial_search(&reparsed, &config).expect("reparsed");
    assert_eq!(
        a.ln_likelihood, b.ln_likelihood,
        "byte-identical inputs, identical search"
    );
    assert_eq!(SplitSet::of_tree(&a.tree, 8), SplitSet::of_tree(&b.tree, 8));
}

#[test]
fn full_and_fast_modes_agree_on_likelihood_scale() {
    let truth = yule_tree(9, 0.1, 19);
    let alignment = evolve(&truth, 600, &EvolutionConfig::default(), 8, "taxon");
    let config = SearchConfig {
        jumble_seed: 1,
        rearrange_radius: 2,
        final_radius: 2,
        ..SearchConfig::default()
    };
    let full = serial_search(&alignment, &config).expect("full");
    let fast = fast_serial_search(&alignment, &config).expect("fast");
    assert!(
        (full.ln_likelihood - fast.ln_likelihood).abs() < 1.0,
        "full {} vs fast {}",
        full.ln_likelihood,
        fast.ln_likelihood
    );
}

#[test]
fn consensus_of_jumbles_contains_well_supported_truth() {
    let truth = yule_tree(12, 0.12, 29);
    let gen = EvolutionConfig {
        rate_sigma: 0.3,
        prop_invariant: 0.2,
        missing_fraction: 0.0,
        ..Default::default()
    };
    let alignment = evolve(&truth, 1500, &gen, 4, "taxon");
    let config = SearchConfig {
        rearrange_radius: 2,
        final_radius: 2,
        ..SearchConfig::default()
    };
    let (results, consensus) =
        run_jumbles(&alignment, &config, &[1, 5, 9]).expect("jumbles succeed");
    assert_eq!(results.len(), 3);
    // The consensus must be mostly made of true splits.
    let truth_splits = SplitSet::of_tree(&truth, 12);
    let hits = consensus
        .splits
        .iter()
        .filter(|s| truth_splits.splits().contains(&s.split))
        .count();
    assert!(
        hits * 2 >= consensus.splits.len(),
        "{hits} of {} consensus splits are true",
        consensus.splits.len()
    );
}

#[test]
fn final_tree_is_a_local_optimum_under_nni() {
    // The converged tree should not be improvable by any radius-1 move
    // (that is exactly what the rearrangement loop guarantees).
    let truth = yule_tree(8, 0.1, 31);
    let alignment = evolve(&truth, 800, &EvolutionConfig::default(), 3, "taxon");
    let config = SearchConfig {
        jumble_seed: 7,
        ..SearchConfig::default()
    };
    let result = serial_search(&alignment, &config).expect("search");
    let engine = LikelihoodEngine::new(&alignment);
    let moves = fastdnaml::phylo::ops::enumerate_spr_moves(&result.tree, 1);
    for mv in &moves {
        let mut cand = result.tree.clone();
        fastdnaml::phylo::ops::apply_move(&mut cand, mv).expect("apply");
        let lnl = engine
            .optimize(
                &mut cand,
                &fastdnaml::likelihood::engine::OptimizeOptions::default(),
            )
            .ln_likelihood;
        assert!(
            lnl <= result.ln_likelihood + 1e-3,
            "NNI move {mv:?} improves {} → {lnl}",
            result.ln_likelihood
        );
    }
}
