//! Golden log-likelihood regression pin.
//!
//! A fixed simulated dataset evaluated on its true tree must keep producing
//! the same log-likelihood across kernel rewrites. The pinned value was
//! computed with the scalar reference kernels; the default (optimized)
//! engine must reproduce it, which guards both kernel paths against silent
//! numerical drift.

use fdml_datagen::evolve::{evolve, EvolutionConfig};
use fdml_datagen::randtree::yule_tree;
use fdml_likelihood::engine::LikelihoodEngine;
use fdml_likelihood::isa::{self, KernelIsa};
use fdml_likelihood::kernels::KernelMode;

const TAXA: usize = 16;
const SITES: usize = 300;
const GOLDEN_LNL: f64 = -2121.215219389715;

fn fixture() -> (fdml_phylo::tree::Tree, fdml_phylo::alignment::Alignment) {
    let tree = yule_tree(TAXA, 0.08, 42);
    let alignment = evolve(&tree, SITES, &EvolutionConfig::default(), 7, "t");
    (tree, alignment)
}

#[test]
fn golden_lnl_is_stable() {
    let (tree, alignment) = fixture();
    let engine = LikelihoodEngine::new(&alignment);
    let lnl = engine.evaluate(&tree).ln_likelihood;
    assert!(
        (lnl - GOLDEN_LNL).abs() < 1e-6,
        "default engine drifted from golden value: {lnl} vs {GOLDEN_LNL}"
    );
}

#[test]
fn golden_lnl_matches_reference_kernels() {
    let (tree, alignment) = fixture();
    let engine = LikelihoodEngine::new(&alignment).with_kernel_mode(KernelMode::Reference);
    let lnl = engine.evaluate(&tree).ln_likelihood;
    assert!(
        (lnl - GOLDEN_LNL).abs() < 1e-6,
        "reference engine drifted from golden value: {lnl} vs {GOLDEN_LNL}"
    );
}

/// Every ISA lane the host supports reproduces the golden value — and, a
/// stronger pin, the exact bits of the auto-dispatched engine. The SIMD
/// lanes perform the scalar FMA DAG with vertical packed operations only,
/// so the lanes are not merely close: they are the same computation.
#[test]
fn golden_lnl_is_identical_on_every_supported_isa() {
    let (tree, alignment) = fixture();
    let auto_bits = LikelihoodEngine::new(&alignment)
        .evaluate(&tree)
        .ln_likelihood
        .to_bits();
    for lane in [
        KernelIsa::Scalar,
        KernelIsa::Avx2,
        KernelIsa::Avx512,
        KernelIsa::Neon,
    ] {
        if !lane.supported() {
            continue;
        }
        isa::set_isa(Some(lane)).unwrap();
        let lnl = LikelihoodEngine::new(&alignment)
            .evaluate(&tree)
            .ln_likelihood;
        assert_eq!(
            lnl.to_bits(),
            auto_bits,
            "lane {} changed the log-likelihood bits",
            lane.name()
        );
        assert!(
            (lnl - GOLDEN_LNL).abs() < 1e-6,
            "lane {} drifted from golden value: {lnl} vs {GOLDEN_LNL}",
            lane.name()
        );
    }
    isa::set_isa(None).unwrap();
}

/// Intra-rank pattern-block threading reproduces the golden value bit for
/// bit: the blocked reduction's merge order is canonical at every thread
/// count, so four threads compute the serial engine's exact answer.
#[test]
fn golden_lnl_is_identical_with_intra_threads() {
    let (tree, alignment) = fixture();
    let serial = LikelihoodEngine::new(&alignment)
        .evaluate(&tree)
        .ln_likelihood;
    for threads in [2usize, 4] {
        let engine = LikelihoodEngine::new(&alignment).with_intra_threads(threads);
        let lnl = engine.evaluate(&tree).ln_likelihood;
        assert_eq!(
            lnl.to_bits(),
            serial.to_bits(),
            "{threads} intra threads changed the log-likelihood bits"
        );
    }
    assert!(
        (serial - GOLDEN_LNL).abs() < 1e-6,
        "serial engine drifted from golden value: {serial} vs {GOLDEN_LNL}"
    );
}
