//! Golden log-likelihood regression pin.
//!
//! A fixed simulated dataset evaluated on its true tree must keep producing
//! the same log-likelihood across kernel rewrites. The pinned value was
//! computed with the scalar reference kernels; the default (optimized)
//! engine must reproduce it, which guards both kernel paths against silent
//! numerical drift.

use fdml_datagen::evolve::{evolve, EvolutionConfig};
use fdml_datagen::randtree::yule_tree;
use fdml_likelihood::engine::LikelihoodEngine;
use fdml_likelihood::kernels::KernelMode;

const TAXA: usize = 16;
const SITES: usize = 300;
const GOLDEN_LNL: f64 = -2121.215219389715;

fn fixture() -> (fdml_phylo::tree::Tree, fdml_phylo::alignment::Alignment) {
    let tree = yule_tree(TAXA, 0.08, 42);
    let alignment = evolve(&tree, SITES, &EvolutionConfig::default(), 7, "t");
    (tree, alignment)
}

#[test]
fn golden_lnl_is_stable() {
    let (tree, alignment) = fixture();
    let engine = LikelihoodEngine::new(&alignment);
    let lnl = engine.evaluate(&tree).ln_likelihood;
    assert!(
        (lnl - GOLDEN_LNL).abs() < 1e-6,
        "default engine drifted from golden value: {lnl} vs {GOLDEN_LNL}"
    );
}

#[test]
fn golden_lnl_matches_reference_kernels() {
    let (tree, alignment) = fixture();
    let engine = LikelihoodEngine::new(&alignment).with_kernel_mode(KernelMode::Reference);
    let lnl = engine.evaluate(&tree).ln_likelihood;
    assert!(
        (lnl - GOLDEN_LNL).abs() < 1e-6,
        "reference engine drifted from golden value: {lnl} vs {GOLDEN_LNL}"
    );
}
