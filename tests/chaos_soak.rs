//! Chaos soak: seeded fault schedules over the threaded runtime.
//!
//! The property under test is the strong one from the paper's
//! fault-tolerance design: as long as at least one worker survives, the
//! final tree and its log-likelihood are **byte-identical** to the
//! fault-free run — drops are requeued, delays are deduplicated, corrupt
//! frames degrade to loss, and a killed worker's work is redistributed.
//! When no worker survives, the run ends in a clean typed error and the
//! farm manifest on disk remains valid and resumable.

use fastdnaml::chaos::storage::{self, StoragePlan};
use fastdnaml::chaos::ChaosPlan;
use fastdnaml::core::checkpoint::FarmManifest;
use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::farm::FarmOptions;
use fastdnaml::core::job::ResolvedJob;
use fastdnaml::core::runner::{farm_search, parallel_search, RunOptions};
use fastdnaml::obs::{MemorySink, Sink};
use fastdnaml::phylo::alignment::Alignment;
use fastdnaml::phylo::newick;
use std::time::Duration;

fn alignment() -> Alignment {
    Alignment::from_strings(&[
        ("t0", "ACGTACGTACGTACGTACGTACGTACGTACGT"),
        ("t1", "ACGTACGTACTTACGTACGTACGAACGTACGT"),
        ("t2", "ACGAACGTACGTACGGACGTACGTACCTAGGT"),
        ("t3", "ACGAACGTACGTACGGACGTACTTACCTAGTT"),
        ("t4", "TCGAACGGACGTACGGAAGTACGTACCTAGGA"),
        ("t5", "TCGAACGGACGTACGGAAGTACGTTCCTAGGA"),
    ])
    .unwrap()
}

fn one_shot(a: &Alignment, cfg: &SearchConfig) -> ResolvedJob {
    ResolvedJob::from_parts(a.clone(), cfg.clone(), 1).unwrap()
}

/// A farm job over an explicit seed list (the chaos tests pin seeds).
fn farm_job(a: &Alignment, cfg: &SearchConfig, seeds: &[u64]) -> ResolvedJob {
    ResolvedJob {
        alignment: a.clone(),
        config: cfg.clone(),
        seeds: seeds.to_vec(),
    }
}

fn config() -> SearchConfig {
    SearchConfig {
        jumble_seed: 5,
        // Short timeout so dropped results requeue quickly under chaos.
        worker_timeout: Duration::from_millis(200),
        ..Default::default()
    }
}

/// The soak matrix: eight seeded fault mixes (every other one also kills
/// a worker mid-search), plus a pure partition plan. Each must reproduce
/// the fault-free tree and likelihood to the last bit.
#[test]
fn seeded_chaos_matrix_is_byte_identical_to_fault_free() {
    let a = alignment();
    let cfg = config();
    let job = one_shot(&a, &cfg);
    let clean = parallel_search(&job, 6, RunOptions::default()).unwrap();
    let clean_tree = newick::write_tree(&clean.result.tree, a.names());

    let mut plans: Vec<ChaosPlan> = (1..=8)
        .map(|seed| {
            let plan = ChaosPlan::seeded(seed);
            if seed % 2 == 0 {
                // Half the matrix also loses worker 3 for good after two
                // results — two of three workers must carry the rest.
                plan.with_kill(3, 2)
            } else {
                plan
            }
        })
        .collect();
    plans.push(ChaosPlan::quiet(99).with_partition(1, 3));

    for plan in &plans {
        let chaotic = parallel_search(&job, 6, RunOptions::chaotic(plan))
            .unwrap_or_else(|e| panic!("plan seed {}: {e}", plan.seed));
        let chaos_tree = newick::write_tree(&chaotic.result.tree, a.names());
        assert_eq!(
            chaos_tree, clean_tree,
            "plan seed {} changed the tree",
            plan.seed
        );
        assert_eq!(
            chaotic.result.ln_likelihood.to_bits(),
            clean.result.ln_likelihood.to_bits(),
            "plan seed {} changed the likelihood",
            plan.seed
        );
    }
}

/// A worker killed mid-round with incremental dispatch on: its in-flight
/// tree edit is requeued *self-contained* (the foreman embeds the round's
/// base topology, since the replacement worker may have missed the
/// broadcast), survivors keep their CLV caches, and the search converges
/// to the clean incremental run's tree and likelihood.
#[test]
fn incremental_dispatch_survives_kill_mid_round() {
    let a = alignment();
    let cfg = SearchConfig {
        incremental: true,
        ..config()
    };
    let job = one_shot(&a, &cfg);
    let clean = parallel_search(&job, 6, RunOptions::default()).unwrap();
    let clean_tree = newick::write_tree(&clean.result.tree, a.names());
    for seed in [2u64, 6, 10] {
        let plan = ChaosPlan::seeded(seed).with_kill(3, 2);
        let chaotic = parallel_search(&job, 6, RunOptions::chaotic(&plan))
            .unwrap_or_else(|e| panic!("incremental plan seed {seed}: {e}"));
        assert_eq!(
            newick::write_tree(&chaotic.result.tree, a.names()),
            clean_tree,
            "incremental plan seed {seed} changed the tree"
        );
        assert_eq!(
            chaotic.result.ln_likelihood.to_bits(),
            clean.result.ln_likelihood.to_bits(),
            "incremental plan seed {seed} changed the likelihood"
        );
    }
}

/// Corruption is detected-and-dropped, surfaced in the run report, and
/// still converges to the fault-free answer.
#[test]
fn corrupt_heavy_plan_is_counted_and_survived() {
    let a = alignment();
    let cfg = config();
    let job = one_shot(&a, &cfg);
    let clean = parallel_search(&job, 6, RunOptions::default()).unwrap();
    let plan = ChaosPlan {
        corrupt_per_mille: 300,
        ..ChaosPlan::quiet(7)
    };
    let sinks: Vec<Box<dyn Sink>> = vec![Box::new(MemorySink::new())];
    let chaotic = parallel_search(
        &job,
        6,
        RunOptions {
            chaos: Some(plan.clone()),
            sinks,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        chaotic.result.ln_likelihood.to_bits(),
        clean.result.ln_likelihood.to_bits()
    );
    let report = chaotic.report.expect("observed run has a report");
    assert!(
        report.corrupt_frames > 0,
        "a 30% corruption rate must hit at least one frame"
    );
}

/// The same plan twice injects the same fault sequence, so both runs
/// converge to the same tree and likelihood.
#[test]
fn chaos_runs_are_reproducible() {
    let a = alignment();
    let cfg = config();
    let plan = ChaosPlan::seeded(4).with_kill(3, 1);
    let job = one_shot(&a, &cfg);
    let one = parallel_search(&job, 6, RunOptions::chaotic(&plan)).unwrap();
    let two = parallel_search(&job, 6, RunOptions::chaotic(&plan)).unwrap();
    assert_eq!(
        one.result.ln_likelihood.to_bits(),
        two.result.ln_likelihood.to_bits()
    );
    assert_eq!(
        newick::write_tree(&one.result.tree, a.names()),
        newick::write_tree(&two.result.tree, a.names())
    );
}

/// The jumble farm under chaos: same trees, same manifest, regardless of
/// drops, duplicates, and a mid-farm worker kill.
#[test]
fn farm_under_chaos_matches_fault_free() {
    let a = alignment();
    let cfg = SearchConfig {
        rearrange_radius: 1,
        final_radius: 1,
        ..config()
    };
    let seeds = [1, 3, 5, 7];
    let job = farm_job(&a, &cfg, &seeds);
    let clean = farm_search(&job, 6, FarmOptions::default(), RunOptions::default()).unwrap();
    for seed in [2u64, 11] {
        let plan = ChaosPlan::seeded(seed).with_kill(4, 1);
        let chaotic = farm_search(&job, 6, FarmOptions::default(), RunOptions::chaotic(&plan))
            .unwrap_or_else(|e| panic!("farm plan seed {seed}: {e}"));
        assert_eq!(chaotic.runs.len(), clean.runs.len());
        for (c, f) in chaotic.runs.iter().zip(clean.runs.iter()) {
            assert_eq!(c.seed, f.seed);
            assert_eq!(
                c.newick, f.newick,
                "farm plan seed {seed}, jumble {}",
                c.seed
            );
            assert_eq!(c.ln_likelihood.to_bits(), f.ln_likelihood.to_bits());
        }
    }
}

/// Control-plane chaos joins the soak: the coordinator's WAL storage is
/// killed mid-search *while* the data plane runs a seeded fault mix that
/// also kills a worker. Relaunching the same command — data plane still
/// chaotic — replays the round log and lands on the fault-free tree,
/// byte for byte. The strong property now covers both planes at once.
#[test]
fn coordinator_storage_kill_under_worker_chaos_resumes_byte_identical() {
    let a = alignment();
    let cfg = config();
    let job = one_shot(&a, &cfg);
    let clean = parallel_search(&job, 6, RunOptions::default()).unwrap();
    let clean_tree = newick::write_tree(&clean.result.tree, a.names());

    let dir = std::env::temp_dir().join(format!("fdml_chaos_coord_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal_opts = |plan: Option<&ChaosPlan>| RunOptions {
        chaos: plan.cloned(),
        wal_dir: Some(dir.clone()),
        ..RunOptions::default()
    };

    // A quiet instrumented pass learns the storage-op budget.
    storage::install(StoragePlan::quiet(0));
    let probe = parallel_search(&job, 6, wal_opts(None)).unwrap();
    let total_ops = storage::clear().ops;
    assert_eq!(
        newick::write_tree(&probe.result.tree, a.names()),
        clean_tree,
        "the WAL hook itself must not perturb the search"
    );
    assert!(total_ops >= 4, "too few storage ops: {total_ops}");

    let net_plan = ChaosPlan::seeded(6).with_kill(3, 2);
    for op in [1, total_ops / 2, total_ops - 1] {
        storage::install(StoragePlan::quiet(0).crash_at(op));
        let killed = parallel_search(&job, 6, wal_opts(Some(&net_plan)));
        storage::clear();
        assert!(killed.is_err(), "op {op}: coordinator kill did not surface");

        let resumed = parallel_search(&job, 6, wal_opts(Some(&net_plan)))
            .unwrap_or_else(|e| panic!("op {op}: resume failed: {e}"));
        assert_eq!(
            newick::write_tree(&resumed.result.tree, a.names()),
            clean_tree,
            "op {op}: resumed tree diverged"
        );
        assert_eq!(
            resumed.result.ln_likelihood.to_bits(),
            clean.result.ln_likelihood.to_bits(),
            "op {op}: resumed likelihood diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// When the plan kills every worker, the run must end in a clean typed
/// error (the foreman's all-dead abort), and the manifest written before
/// the collapse must remain valid and resumable.
#[test]
fn all_workers_dead_is_a_typed_error_with_a_resumable_manifest() {
    let a = alignment();
    let cfg = SearchConfig {
        rearrange_radius: 1,
        final_radius: 1,
        ..config()
    };
    let seeds = [1, 3, 5, 7, 9, 11];
    let dir = std::env::temp_dir().join(format!("fdml_chaos_soak_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let manifest_path = dir.join("farm.json");
    // Every worker dies after completing one jumble: three land, three
    // never can.
    let plan = ChaosPlan::quiet(0)
        .with_kill(3, 1)
        .with_kill(4, 1)
        .with_kill(5, 1);
    let options = FarmOptions {
        width: 0,
        manifest_path: Some(manifest_path.clone()),
        ..FarmOptions::default()
    };
    let job = farm_job(&a, &cfg, &seeds);
    let err = farm_search(&job, 6, options, RunOptions::chaotic(&plan))
        .expect_err("an all-dead farm must fail");
    let text = err.to_string();
    assert!(text.contains("aborted"), "got: {text}");

    // The manifest survived the collapse and resumes to completion on a
    // healthy universe.
    let manifest =
        FarmManifest::from_json(&std::fs::read_to_string(&manifest_path).unwrap()).unwrap();
    let done = manifest.entries.len() - manifest.unfinished().len();
    assert!(
        done >= 1,
        "at least one jumble completed before the collapse"
    );
    assert!(
        !manifest.unfinished().is_empty(),
        "the collapse must leave work behind for the resume to prove anything"
    );
    let resumed = farm_search(
        &job,
        6,
        FarmOptions {
            width: 0,
            resume: Some(manifest),
            ..FarmOptions::default()
        },
        RunOptions::default(),
    )
    .unwrap();
    let fresh = farm_search(&job, 6, FarmOptions::default(), RunOptions::default()).unwrap();
    for (r, f) in resumed.runs.iter().zip(fresh.runs.iter()) {
        assert_eq!(r.seed, f.seed);
        assert_eq!(r.newick, f.newick, "resumed jumble {} diverged", r.seed);
    }
    std::fs::remove_dir_all(dir).ok();
}
