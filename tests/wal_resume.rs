//! Resume-equivalence matrix for the write-ahead round log.
//!
//! The contract under test: a coordinator killed at any point and
//! relaunched with the same command line produces the byte-identical
//! final tree. The WAL replays an exact executor-call sequence, so a
//! resumed run must consume a log its own deployment wrote — the matrix
//! therefore *manufactures* real interrupted logs instead of synthesizing
//! them: a storage-fault plan on the coordinator thread kills the log at
//! every write boundary (`fdml_chaos::storage` faults are thread-local,
//! and the master runs inline on the calling thread), leaving exactly the
//! file a `kill -9` at that instant would have left. Each leftover log is
//! then resumed through the real deployment paths: the threaded runtime,
//! the multi-process TCP runtime via the CLI, the jumble farm (whose
//! workers resume mid-jumble through the `JumbleResume` task), and both
//! scoring modes.

use fastdnaml::chaos::storage::{self, StoragePlan};
use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::executor::ScorerExecutor;
use fastdnaml::core::farm::{plan_seeds, serial_farm, FarmOptions};
use fastdnaml::core::job::ResolvedJob;
use fastdnaml::core::runner::{farm_search, parallel_search, RunOptions};
use fastdnaml::core::search::StepwiseSearch;
use fastdnaml::core::wal::{self, WalRound, WalWriter};
use fastdnaml::obs::{Event, MemorySink, Obs};
use fastdnaml::phylo::alignment::Alignment;
use fastdnaml::phylo::{newick, phylip};
use std::path::{Path, PathBuf};
use std::process::Command;

const PHYLIP: &str = "\
6 40
t0        ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
t1        ACGTACGTACTTACGTACGTACGAACGTACGTACGTACGT
t2        ACGAACGTACGTACGGACGTACGTACCTACGTAGGTACGT
t3        ACGAACGTACGTACGGACGTACTTACCTACGTAGGTACTT
t4        TCGAACGGACGTACGGAAGTACGTACCTACGGAGGTACGA
t5        TCGAACGGACGTACGGAAGTACGTTCCTACGGAGGAACGA
";

fn dataset() -> Alignment {
    phylip::parse(PHYLIP).expect("fixture parses")
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdml_walres_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Run the threaded search with a WAL in `wal_dir`, optionally observed.
fn run_threads(
    alignment: &Alignment,
    config: &SearchConfig,
    wal_dir: &Path,
    mem: Option<&MemorySink>,
) -> Result<(String, u64), String> {
    let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), 1).unwrap();
    let mut options = match mem {
        Some(m) => RunOptions::observed(vec![Box::new(m.clone())]),
        None => RunOptions::default(),
    };
    options.wal_dir = Some(wal_dir.to_path_buf());
    let outcome = parallel_search(&job, 4, options).map_err(|e| e.to_string())?;
    Ok((
        newick::write_tree(&outcome.result.tree, alignment.names()),
        outcome.result.ln_likelihood.to_bits(),
    ))
}

/// Count WAL events a memory sink observed.
fn wal_event_counts(mem: &MemorySink) -> (u64, u64) {
    let mut appends = 0;
    let mut replayed = 0;
    for record in mem.snapshot() {
        match record.event {
            Event::WalAppend { .. } => appends += 1,
            Event::WalReplay { rounds, .. } => replayed += rounds,
            _ => {}
        }
    }
    (appends, replayed)
}

/// The tentpole matrix: kill the coordinator's log at every storage
/// operation a full threaded run performs — the log-file creation, every
/// record append, every `fdatasync` — then relaunch the identical run.
/// Every resume must reproduce the uninterrupted tree byte for byte and
/// retire the log on success.
#[test]
fn threads_resume_every_crash_point_byte_identical() {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 7,
        ..SearchConfig::default()
    };

    // Fault-free run: the expected answer, and the op budget to sweep.
    let dir = workdir("threads");
    storage::install(StoragePlan::quiet(0));
    let (expected_newick, expected_bits) =
        run_threads(&alignment, &config, &dir.join("clean"), None).expect("clean run");
    let total_ops = storage::clear().ops;
    assert!(total_ops >= 8, "fixture too small: {total_ops} storage ops");

    for op in 0..total_ops {
        let wal_dir = dir.join(format!("op{op}"));
        // The "kill": every storage operation from `op` onward fails, so
        // the run either dies opening the log or finishes its search and
        // surfaces the deferred append error at the end — in both cases
        // the on-disk log is exactly what a SIGKILL at that boundary
        // leaves: a committed prefix, possibly with a torn tail.
        storage::install(StoragePlan::quiet(0).crash_at(op));
        let crashed = run_threads(&alignment, &config, &wal_dir, None);
        storage::clear();
        assert!(
            crashed.is_err(),
            "op {op}: injected crash did not surface as an error"
        );

        // Relaunch the same command: replay the prefix, finish, retire.
        let mem = MemorySink::new();
        let (resumed_newick, resumed_bits) =
            run_threads(&alignment, &config, &wal_dir, Some(&mem)).expect("resume");
        assert_eq!(resumed_newick, expected_newick, "op {op}: tree diverged");
        assert_eq!(resumed_bits, expected_bits, "op {op}: lnl bits diverged");
        let (appends, replayed) = wal_event_counts(&mem);
        assert!(
            appends + replayed > 0,
            "op {op}: resume neither replayed nor logged"
        );
        assert!(
            !wal::wal_path(&wal_dir, 0, config.jumble_seed).exists(),
            "op {op}: wal not retired after successful resume"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A torn append — the log hit by a kill mid-`write` — truncates to the
/// last committed round on resume and still finishes byte-identically.
#[test]
fn torn_tail_resumes_byte_identical() {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 9,
        ..SearchConfig::default()
    };
    let dir = workdir("torn");
    let (expected_newick, expected_bits) =
        run_threads(&alignment, &config, &dir.join("clean"), None).expect("clean run");

    // Interrupt a run late (a mid-run storage kill), then tear the
    // surviving log's tail by hand, as a crash inside `write(2)` would.
    let wal_dir = dir.join("victim");
    storage::install(StoragePlan::quiet(0).crash_at(9));
    run_threads(&alignment, &config, &wal_dir, None).expect_err("injected crash");
    storage::clear();
    let path = wal::wal_path(&wal_dir, 0, config.jumble_seed);
    let mut raw = std::fs::read(&path).expect("interrupted log exists");
    let torn_at = raw.len() - 3;
    raw.truncate(torn_at);
    raw.extend_from_slice(&[0xDE, 0xAD]);
    std::fs::write(&path, &raw).expect("tear tail");

    let mem = MemorySink::new();
    let (resumed_newick, resumed_bits) =
        run_threads(&alignment, &config, &wal_dir, Some(&mem)).expect("resume over torn tail");
    assert_eq!(resumed_newick, expected_newick, "torn tail: tree diverged");
    assert_eq!(resumed_bits, expected_bits, "torn tail: lnl bits diverged");
    assert!(!path.exists(), "torn tail: wal not retired");
    std::fs::remove_dir_all(&dir).ok();
}

/// The incremental (base + edit) scoring mode resumes its own interrupted
/// logs just like whole-tree mode: same sweep, spot-checked across the op
/// range.
#[test]
fn incremental_mode_resumes_its_own_log() {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 5,
        incremental: true,
        ..SearchConfig::default()
    };
    let dir = workdir("incmode");
    storage::install(StoragePlan::quiet(0));
    let (expected_newick, expected_bits) =
        run_threads(&alignment, &config, &dir.join("clean"), None).expect("clean run");
    let total_ops = storage::clear().ops;

    for op in [0, 1, total_ops / 2, total_ops - 1] {
        let wal_dir = dir.join(format!("op{op}"));
        storage::install(StoragePlan::quiet(0).crash_at(op));
        run_threads(&alignment, &config, &wal_dir, None).expect_err("injected crash");
        storage::clear();
        let (resumed_newick, resumed_bits) =
            run_threads(&alignment, &config, &wal_dir, None).expect("resume");
        assert_eq!(
            resumed_newick, expected_newick,
            "incremental op {op}: tree diverged"
        );
        assert_eq!(
            resumed_bits, expected_bits,
            "incremental op {op}: lnl bits diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The multi-process TCP deployment, driven through the real CLI: logs
/// interrupted at assorted boundaries (manufactured in-process — the
/// threaded and TCP coordinators run the identical master search, so
/// their logs are interchangeable) must resume under `--net spawn
/// --wal-dir` to output files byte-identical to the clean run's.
#[test]
fn net_resume_interrupted_logs_via_cli() {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 7,
        ..SearchConfig::default()
    };
    let dir = workdir("netcli");
    std::fs::write(dir.join("data.phy"), PHYLIP).expect("write alignment");
    let run_cli = |tag: &str, wal_dir: Option<&Path>| -> String {
        let out = dir.join(format!("{tag}.nwk"));
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_fastdnaml"));
        cmd.arg("--input")
            .arg(dir.join("data.phy"))
            .args(["--jumble", "7", "--net", "spawn", "4", "--quiet"])
            .arg("--output")
            .arg(&out);
        if let Some(w) = wal_dir {
            cmd.arg("--wal-dir").arg(w);
        }
        let status = cmd.output().expect("run fastdnaml");
        assert!(
            status.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&status.stderr)
        );
        std::fs::read_to_string(&out).expect("tree written")
    };
    let clean = run_cli("clean", None);

    // Learn the op budget, then interrupt at a spread of boundaries.
    // Process spawns are expensive: the exhaustive sweep lives in the
    // threaded matrix above.
    storage::install(StoragePlan::quiet(0));
    run_threads(&alignment, &config, &dir.join("probe"), None).expect("probe run");
    let total_ops = storage::clear().ops;
    for op in [0, 3, total_ops / 2, total_ops - 1] {
        let wal_dir = dir.join(format!("op{op}"));
        storage::install(StoragePlan::quiet(0).crash_at(op));
        run_threads(&alignment, &config, &wal_dir, None).expect_err("injected crash");
        storage::clear();
        let resumed = run_cli(&format!("resume{op}"), Some(&wal_dir));
        assert_eq!(resumed, clean, "net op {op}: output diverged");
        assert!(
            !wal::wal_path(&wal_dir, 0, config.jumble_seed).exists(),
            "net op {op}: wal not retired"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The farm path: a killed farm coordinator leaves one WAL per in-flight
/// jumble. Workers resume those jumbles mid-search through the
/// `JumbleResume` task (replaying the prefix, streaming only new rounds
/// back), the farm's trees stay byte-identical to the un-killed serial
/// farm, and every log is retired as its jumble completes — so the WAL
/// directory is empty at the end no matter how many jumbles ran. Farm
/// jumbles score through the `ScorerExecutor` in every deployment, so a
/// serially recorded per-jumble log is the real artifact here.
#[test]
fn farm_resumes_inflight_jumbles_and_bounds_wal_dir() {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 7,
        ..SearchConfig::default()
    };
    let seeds = plan_seeds(7, 4).expect("seeds");

    // Clean serial baseline, no WAL.
    let baseline = serial_farm(
        &alignment,
        &config,
        &seeds,
        &FarmOptions::default(),
        &Obs::disabled(),
    )
    .expect("serial farm");
    let expected: Vec<&str> = baseline.runs.iter().map(|r| r.newick.as_str()).collect();

    // Record each jumble's full log (the farm's own executor flavor).
    let engine = config.build_engine(&alignment);
    let logs: Vec<Vec<WalRound>> = seeds
        .iter()
        .map(|&seed| {
            let per = SearchConfig {
                jumble_seed: seed,
                ..config.clone()
            };
            let mut log: Vec<WalRound> = Vec::new();
            StepwiseSearch::new(
                &per,
                ScorerExecutor::new(&engine, per.optimize),
                alignment.num_taxa(),
            )
            .with_names(alignment.names().to_vec())
            .on_wal(|round| log.push(round.clone()))
            .run()
            .expect("jumble baseline");
            log
        })
        .collect();

    // Kill profile: jumble 0 was finished-but-unretired (full log),
    // jumble 1 mid-flight (half log), jumble 2 barely started (1 round),
    // jumble 3 untouched. Resume over the threaded farm so in-flight
    // jumbles travel to workers as JumbleResume tasks.
    let dir = workdir("farm");
    let wal_dir = dir.join("wal");
    let plant_ks = [logs[0].len(), logs[1].len() / 2, 1, 0];
    for (i, (&seed, log)) in seeds.iter().zip(&logs).enumerate() {
        if plant_ks[i] == 0 {
            continue;
        }
        let mut writer =
            WalWriter::create(&wal_dir, 0, seed, alignment.num_taxa()).expect("plant wal");
        for round in &log[..plant_ks[i]] {
            writer.append(round).expect("plant append");
        }
    }

    let mem = MemorySink::new();
    let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), seeds.len()).unwrap();
    let farm_options = FarmOptions {
        wal_dir: Some(wal_dir.clone()),
        ..FarmOptions::default()
    };
    let outcome = farm_search(
        &job,
        5,
        farm_options,
        RunOptions::observed(vec![Box::new(mem.clone())]),
    )
    .expect("farm resume");
    let got: Vec<&str> = outcome.runs.iter().map(|r| r.newick.as_str()).collect();
    assert_eq!(got, expected, "farm trees diverged after resume");

    let (_, replayed) = wal_event_counts(&mem);
    let planted: usize = plant_ks.iter().sum();
    assert_eq!(replayed, planted as u64, "farm replay count");

    // Every jumble retired its log: the WAL directory is bounded by the
    // in-flight set during the run and empty after it.
    let leftover: Vec<_> = std::fs::read_dir(&wal_dir)
        .map(|rd| rd.filter_map(|e| e.ok().map(|e| e.file_name())).collect())
        .unwrap_or_default();
    assert!(leftover.is_empty(), "unretired wal files: {leftover:?}");
    std::fs::remove_dir_all(&dir).ok();
}
