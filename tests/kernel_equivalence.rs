//! Cross-path kernel equivalence matrix.
//!
//! The contract this suite pins: the log-likelihood surface is a property
//! of the *data and the model*, not of how the kernels happen to run. On
//! seeded datasets it drives every execution path the dispatcher can take
//! — {scalar, widest host ISA} × {1, 2, 4 intra-rank threads} ×
//! {Reference, Optimized} — through evaluation, branch optimization,
//! Newton derivatives, incremental `score_edit`, and a whole stepwise
//! search, and demands:
//!
//! * within one `KernelMode`, every ISA lane and every thread count is
//!   **bit-identical** (the SIMD lanes execute the exact scalar FMA DAG
//!   vertically, and the blocked fold's merge order is canonical at all
//!   thread counts);
//! * across modes, lnL agrees to the established 1e-9 relative contract
//!   (the optimized path refolds coefficients, so bits may differ);
//! * final search trees are **byte-identical** Newick across the matrix.
//!
//! The ISA override is process-global; because every lane is bit-exact,
//! concurrent tests flipping it cannot change any asserted value.

use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::runner::serial_search;
use fastdnaml::datagen::evolve::{evolve, EvolutionConfig};
use fastdnaml::datagen::randtree::yule_tree;
use fastdnaml::likelihood::categories::RateCategories;
use fastdnaml::likelihood::clv::WTerms;
use fastdnaml::likelihood::engine::{LikelihoodEngine, OptimizeOptions};
use fastdnaml::likelihood::incremental::ClvCache;
use fastdnaml::likelihood::isa::{self, KernelIsa};
use fastdnaml::likelihood::kernels::{self, EdgeDerivCoefficients};
use fastdnaml::likelihood::reference;
use fastdnaml::likelihood::{IntraPar, KernelMode};
use fastdnaml::phylo::alignment::Alignment;
use fastdnaml::phylo::newick;
use fastdnaml::phylo::ops::enumerate_spr_moves;
use fastdnaml::phylo::tree::Tree;

const THREADS: [usize; 3] = [1, 2, 4];

/// The lanes this host can execute: always scalar, plus the widest
/// detected ISA when that is something else.
fn lanes() -> Vec<KernelIsa> {
    let mut lanes = vec![KernelIsa::Scalar];
    let best = isa::detected();
    if best != KernelIsa::Scalar {
        lanes.push(best);
    }
    lanes
}

fn fixture(taxa: usize, sites: usize, seed: u64) -> (Tree, Alignment) {
    let tree = yule_tree(taxa, 0.08, seed);
    let alignment = evolve(&tree, sites, &EvolutionConfig::default(), seed ^ 0x5a, "t");
    (tree, alignment)
}

/// Score a fixed slice of radius-1 SPR edits through a fresh CLV cache.
fn score_edits(engine: &LikelihoodEngine, base: &Tree) -> Vec<f64> {
    let moves = enumerate_spr_moves(base, 1);
    let mut cache = ClvCache::build(engine, base.clone());
    moves
        .iter()
        .take(6)
        .map(|mv| {
            cache
                .score_edit(engine, mv, &OptimizeOptions::default())
                .expect("edit scores")
                .ln_likelihood
        })
        .collect()
}

/// The full matrix on two seeded datasets — the second one compresses to
/// more patterns than one `PAR_BLOCK`, so multi-block folds and the
/// round-robin thread schedule are genuinely exercised.
#[test]
fn matrix_evaluate_optimize_and_score_edit_agree() {
    for (taxa, sites, seed) in [(10usize, 300usize, 11u64), (20, 800, 23)] {
        let (tree, alignment) = fixture(taxa, sites, seed);
        let mut cross_mode: Vec<f64> = Vec::new();
        for mode in [KernelMode::Reference, KernelMode::Optimized] {
            // Baseline: scalar lane, serial fold.
            isa::set_isa(Some(KernelIsa::Scalar)).unwrap();
            let base_engine = LikelihoodEngine::new(&alignment).with_kernel_mode(mode);
            let base_eval = base_engine.evaluate(&tree).ln_likelihood;
            let mut base_tree = tree.clone();
            let base_opt = base_engine
                .optimize(&mut base_tree, &OptimizeOptions::default())
                .ln_likelihood;
            let base_edits = score_edits(&base_engine, &tree);
            cross_mode.push(base_eval);

            for lane in lanes() {
                isa::set_isa(Some(lane)).unwrap();
                for threads in THREADS {
                    let tag = format!(
                        "taxa={taxa} mode={mode:?} lane={} threads={threads}",
                        lane.name()
                    );
                    let engine = LikelihoodEngine::new(&alignment)
                        .with_kernel_mode(mode)
                        .with_intra_threads(threads);
                    assert_eq!(
                        engine.evaluate(&tree).ln_likelihood.to_bits(),
                        base_eval.to_bits(),
                        "evaluate diverged ({tag})"
                    );
                    let mut t = tree.clone();
                    let opt = engine.optimize(&mut t, &OptimizeOptions::default());
                    assert_eq!(
                        opt.ln_likelihood.to_bits(),
                        base_opt.to_bits(),
                        "optimize lnL diverged ({tag})"
                    );
                    assert_eq!(
                        newick::write_tree(&t, alignment.names()),
                        newick::write_tree(&base_tree, alignment.names()),
                        "optimized tree diverged ({tag})"
                    );
                    for e in base_tree.edge_ids() {
                        assert_eq!(
                            t.length(e).to_bits(),
                            base_tree.length(e).to_bits(),
                            "branch length diverged on edge {e:?} ({tag})"
                        );
                    }
                    let edits = score_edits(&engine, &tree);
                    assert_eq!(edits.len(), base_edits.len());
                    for (i, (got, want)) in edits.iter().zip(&base_edits).enumerate() {
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "score_edit[{i}] diverged ({tag})"
                        );
                    }
                }
            }
        }
        // Across modes the optimized path refolds coefficients; 1e-9
        // relative is the established contract.
        let (r, o) = (cross_mode[0], cross_mode[1]);
        assert!(
            (r - o).abs() <= 1e-9 * r.abs(),
            "modes diverged beyond contract: reference {r} vs optimized {o}"
        );
    }
    isa::set_isa(None).unwrap();
}

/// Newton's fused (lnL, d1, d2) fold is bit-identical at every thread
/// count — all three outputs, not just the likelihood, because the
/// derivative sums merge in the same canonical block order.
#[test]
fn d012_fold_is_bit_identical_across_thread_counts() {
    // Deterministic xorshift64* stream; no RNG crate needed here.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    for np in [5usize, 256, 1111] {
        let model = fastdnaml::likelihood::f84::F84Model::new([0.3, 0.2, 0.25, 0.25], 2.0);
        let cats = RateCategories::single(np);
        let runs = kernels::category_runs(&cats);
        let u: Vec<f64> = (0..np * 4).map(|_| 0.01 + next()).collect();
        let d: Vec<f64> = (0..np * 4).map(|_| 0.01 + next()).collect();
        let mut w = vec![WTerms::ZERO; np];
        reference::edge_w_terms(&model, &u, &d, &mut w);
        let weights: Vec<u32> = (0..np).map(|_| 1 + (next() * 5.0) as u32).collect();
        let mut deriv = EdgeDerivCoefficients::default();
        deriv.fill(&model, &cats, 0.37);
        let base = kernels::lnl_d012_folded(&IntraPar::serial(), &deriv, &runs, &w, &weights);
        for threads in [2usize, 4, 7] {
            let got = kernels::lnl_d012_folded(
                &IntraPar::with_threads(threads),
                &deriv,
                &runs,
                &w,
                &weights,
            );
            assert_eq!(got.0.to_bits(), base.0.to_bits(), "lnL np={np} t={threads}");
            assert_eq!(got.1.to_bits(), base.1.to_bits(), "d1 np={np} t={threads}");
            assert_eq!(got.2.to_bits(), base.2.to_bits(), "d2 np={np} t={threads}");
        }
    }
}

/// A whole stepwise search lands on a byte-identical final tree across
/// every lane × thread-count combination.
#[test]
fn full_search_trees_are_byte_identical_across_the_matrix() {
    let (_, alignment) = fixture(8, 200, 5);
    isa::set_isa(Some(KernelIsa::Scalar)).unwrap();
    let base_cfg = SearchConfig {
        jumble_seed: 3,
        ..SearchConfig::default()
    };
    let base = serial_search(&alignment, &base_cfg).unwrap();
    let base_newick = newick::write_tree(&base.tree, alignment.names());
    for lane in lanes() {
        isa::set_isa(Some(lane)).unwrap();
        for threads in THREADS {
            let cfg = SearchConfig {
                intra_threads: threads,
                ..base_cfg.clone()
            };
            let got = serial_search(&alignment, &cfg).unwrap();
            assert_eq!(
                got.ln_likelihood.to_bits(),
                base.ln_likelihood.to_bits(),
                "search lnL diverged (lane={} threads={threads})",
                lane.name()
            );
            assert_eq!(
                newick::write_tree(&got.tree, alignment.names()),
                base_newick,
                "search tree diverged (lane={} threads={threads})",
                lane.name()
            );
        }
    }
    isa::set_isa(None).unwrap();
}
