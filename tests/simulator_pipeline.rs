//! Integration of the search → trace → simulator pipeline: the properties
//! behind Figures 3 and 4 must emerge from a *real* recorded trace, not
//! just from synthetic ones.

use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::runner::traced_search;
use fastdnaml::datagen::{evolve, yule_tree, EvolutionConfig};
use fastdnaml::simsp::{scaling_table, simulate_trace, CostModel, SimConfig};

fn real_trace(taxa: usize, radius: usize) -> fastdnaml::core::trace::SearchTrace {
    let tree = yule_tree(taxa, 0.08, 61);
    let alignment = evolve(&tree, 300, &EvolutionConfig::default(), 7, "taxon");
    let config = SearchConfig {
        jumble_seed: 1,
        rearrange_radius: radius,
        final_radius: radius,
        ..SearchConfig::default()
    };
    let (_, trace) = traced_search(&alignment, &config, "itest", false).expect("traced search");
    trace
}

#[test]
fn figure3_shape_from_a_real_trace() {
    let trace = real_trace(30, 3);
    let cost = CostModel::power3_sp();
    let rows = scaling_table(&[trace], &[1, 4, 8, 16, 32, 64], &cost);
    // Paper §3.2: P=4 slower than serial (one worker plus overhead).
    assert!(
        rows[1].mean_wall_seconds > rows[0].mean_wall_seconds,
        "P=4 ({}) must be slower than serial ({})",
        rows[1].mean_wall_seconds,
        rows[0].mean_wall_seconds
    );
    // Time decreases monotonically from 4 processors on.
    for w in rows[1..].windows(2) {
        assert!(
            w[1].mean_wall_seconds <= w[0].mean_wall_seconds * 1.0001,
            "{} → {} processors increased time",
            w[0].processors,
            w[1].processors
        );
    }
    // Speedups grow substantially from 16 to 64 (the paper's "quite good"
    // relative speedups): with 30 taxa the rounds are modest, so demand at
    // least a 2× relative gain.
    let s16 = rows
        .iter()
        .find(|r| r.processors == 16)
        .unwrap()
        .mean_speedup;
    let s64 = rows
        .iter()
        .find(|r| r.processors == 64)
        .unwrap()
        .mean_speedup;
    assert!(s64 / s16 > 2.0, "16→64 relative speedup {}", s64 / s16);
}

#[test]
fn larger_radius_improves_scalability() {
    // §3.2: radius 1 has less work between synchronizations → worse
    // scaling than radius 3 on the same data.
    let cost = CostModel::power3_sp();
    let t1 = real_trace(24, 1);
    let t3 = real_trace(24, 3);
    let s1 = scaling_table(&[t1], &[64], &cost)[0].mean_speedup;
    let s3 = scaling_table(&[t3], &[64], &cost)[0].mean_speedup;
    assert!(
        s3 > s1,
        "radius 3 speedup at 64 procs ({s3:.2}) must beat radius 1 ({s1:.2})"
    );
}

#[test]
fn falloff_when_workers_exceed_round_sizes() {
    let trace = real_trace(20, 1);
    // Radius-1 rounds on 20 taxa have ≤ ~37 candidates; past ~40 workers,
    // extra processors are idle.
    let cost = CostModel::power3_sp();
    let r64 = simulate_trace(
        &trace,
        &SimConfig {
            processors: 64,
            cost: cost.clone(),
        },
    );
    let r256 = simulate_trace(
        &trace,
        &SimConfig {
            processors: 256,
            cost: cost.clone(),
        },
    );
    let gain = r64.wall_seconds / r256.wall_seconds;
    assert!(
        gain < 1.1,
        "64 → 256 processors should gain almost nothing here, gained {gain:.3}×"
    );
    assert!(r256.utilization < r64.utilization);
}

#[test]
fn trace_work_matches_simulated_busy_time() {
    let trace = real_trace(16, 2);
    let cost = CostModel::power3_sp();
    let serial = simulate_trace(
        &trace,
        &SimConfig {
            processors: 1,
            cost: cost.clone(),
        },
    );
    let p8 = simulate_trace(
        &trace,
        &SimConfig {
            processors: 8,
            cost,
        },
    );
    // Worker busy time is invariant to the processor count (same work).
    assert!(
        (p8.worker_busy_seconds - serial.worker_busy_seconds).abs() / serial.worker_busy_seconds
            < 0.05,
        "busy {} vs serial {}",
        p8.worker_busy_seconds,
        serial.worker_busy_seconds
    );
}
