//! Integration tests of the observability layer (`fdml-obs`) against the
//! threaded parallel runtime: the event stream and the end-of-run report
//! must agree with the foreman's own bookkeeping.

use fastdnaml::comm::fault::FaultPlan;
use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::job::ResolvedJob;
use fastdnaml::core::runner::{parallel_search, RunOptions};
use fastdnaml::datagen::{evolve, yule_tree, EvolutionConfig};
use fastdnaml::obs::{Event, JsonlSink, MemorySink, Record, RunReport, Sink};
use fastdnaml::phylo::alignment::Alignment;
use std::collections::HashMap;
use std::time::Duration;

fn dataset() -> Alignment {
    let tree = yule_tree(9, 0.1, 51);
    evolve(&tree, 400, &EvolutionConfig::default(), 6, "taxon")
}

fn count(records: &[Record], pred: impl Fn(&Event) -> bool) -> u64 {
    records.iter().filter(|r| pred(&r.event)).count() as u64
}

#[test]
fn event_stream_and_report_match_foreman_stats() {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 2,
        ..SearchConfig::default()
    };
    let mem = MemorySink::new();
    let sinks: Vec<Box<dyn Sink>> = vec![Box::new(mem.clone())];
    let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), 1).unwrap();
    let outcome = parallel_search(&job, 5, RunOptions::observed(sinks)).expect("run");
    let records = mem.snapshot();

    // The stream opens with the run header and ends with the final answer.
    assert!(matches!(
        records.first(),
        Some(Record {
            event: Event::RunStarted {
                ranks: 5,
                workers: 2
            },
            ..
        })
    ));
    assert!(matches!(
        records.last(),
        Some(Record {
            event: Event::RunFinished { .. },
            ..
        })
    ));

    // Raw event counts agree with the foreman's own counters.
    let stats = &outcome.foreman;
    assert_eq!(
        count(&records, |e| matches!(e, Event::TaskDispatched { .. })),
        stats.dispatched
    );
    assert_eq!(
        count(&records, |e| matches!(e, Event::TaskCompleted { .. })),
        stats.results_forwarded + stats.duplicates_ignored
    );
    assert_eq!(
        count(&records, |e| matches!(e, Event::TaskTimedOut { .. })),
        stats.timeouts
    );
    assert_eq!(
        count(&records, |e| matches!(e, Event::WorkerRecovered { .. })),
        stats.recoveries
    );
    // Every accepted result was computed by some worker.
    assert_eq!(
        count(&records, |e| matches!(e, Event::WorkerTaskDone { .. })),
        stats.results_forwarded + stats.duplicates_ignored
    );

    // The aggregated report says the same thing.
    let report = outcome
        .report
        .as_ref()
        .expect("report when a live sink is given");
    assert_eq!(report.ranks, Some(5));
    assert_eq!(report.dispatched, stats.dispatched);
    assert_eq!(
        report.completed,
        stats.results_forwarded + stats.duplicates_ignored
    );
    assert_eq!(report.timeouts, stats.timeouts);
    assert_eq!(report.recoveries, stats.recoveries);
    assert_eq!(report.service_us.count, report.completed);

    // Both workers appear, did all the accepted work, and were busy for a
    // plausible share of the observed span.
    assert_eq!(report.workers.len(), 2);
    assert_eq!(
        report.workers.iter().map(|w| w.tasks).sum::<u64>(),
        report.completed
    );
    for w in &report.workers {
        assert!(w.busy_us > 0, "worker {} never worked", w.worker);
        assert!(
            w.utilization > 0.0 && w.utilization <= 1.05,
            "utilization {}",
            w.utilization
        );
    }

    // Queue depth was sampled and the work queue was non-trivial at least
    // once (each round floods the foreman with a batch of candidates).
    assert!(!report.queue_depth.is_empty());
    assert!(report.max_work_depth > 0);

    // Message traffic was recorded per kind on both ends of the transport.
    for kind in ["TreeTask", "TreeResult"] {
        let t = report
            .traffic
            .get(kind)
            .unwrap_or_else(|| panic!("no {kind} traffic"));
        assert!(t.sent_msgs > 0 && t.sent_bytes > 0, "{kind}: {t:?}");
        assert!(t.recv_msgs > 0, "{kind}: {t:?}");
    }

    // The rounds and the final answer line up with the search result.
    assert!(!report.rounds.is_empty());
    assert_eq!(report.lnl_trajectory().len(), report.rounds.len());
    assert_eq!(
        report.final_ln_likelihood,
        Some(outcome.result.ln_likelihood)
    );

    // The same stream survives a JSONL round trip (the `--obs-out` format).
    let jsonl: String = records
        .iter()
        .map(|r| serde_json::to_string(r).unwrap() + "\n")
        .collect();
    let back = JsonlSink::parse(&jsonl).expect("parse JSONL");
    assert_eq!(back, records);
    assert_eq!(
        RunReport::from_events(&back),
        RunReport::from_events(&records)
    );
}

#[test]
fn timeout_and_recovery_show_up_in_the_event_stream() {
    // Same fault scenario as the runtime test: worker 3 sits on its first
    // answer past the timeout, gets declared delinquent, then re-admitted.
    let tree = yule_tree(16, 0.1, 52);
    let alignment = evolve(&tree, 700, &EvolutionConfig::default(), 6, "taxon");
    let config = SearchConfig {
        jumble_seed: 11,
        worker_timeout: Duration::from_millis(40),
        ..SearchConfig::default()
    };
    let mut faults = HashMap::new();
    faults.insert(
        3usize,
        FaultPlan::delay_first(1, Duration::from_millis(150)),
    );
    let mem = MemorySink::new();
    let sinks: Vec<Box<dyn Sink>> = vec![Box::new(mem.clone())];
    let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), 1).unwrap();
    let outcome = parallel_search(
        &job,
        5,
        RunOptions {
            faults,
            sinks,
            ..RunOptions::default()
        },
    )
    .expect("run");
    let records = mem.snapshot();

    let stats = &outcome.foreman;
    assert!(
        stats.timeouts >= 1 && stats.recoveries >= 1,
        "fault did not fire: {stats:?}"
    );
    assert_eq!(
        count(&records, |e| matches!(e, Event::TaskTimedOut { .. })),
        stats.timeouts
    );
    assert_eq!(
        count(&records, |e| matches!(e, Event::WorkerRecovered { .. })),
        stats.recoveries
    );
    // The delinquent worker is named in the events.
    assert!(records
        .iter()
        .any(|r| matches!(r.event, Event::TaskTimedOut { worker: 3, .. })));
    assert!(records
        .iter()
        .any(|r| matches!(r.event, Event::WorkerRecovered { worker: 3 })));

    let report = outcome.report.expect("report");
    assert_eq!(report.timeouts, stats.timeouts);
    assert_eq!(report.recoveries, stats.recoveries);
    // Re-dispatches make dispatched exceed unique completions.
    assert!(report.dispatched >= report.completed);
}

#[test]
fn disabled_observation_yields_no_report() {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 7,
        ..SearchConfig::default()
    };
    let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), 1).unwrap();
    let outcome = parallel_search(&job, 4, RunOptions::default()).expect("run");
    assert!(outcome.report.is_none());
    assert!(outcome.result.ln_likelihood.is_finite());
}
