//! Integration tests of the two command-line programs, driven end-to-end
//! through their real binaries.

use std::path::PathBuf;
use std::process::Command;

const PHYLIP: &str = "\
6 40
t0        ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
t1        ACGTACGTACTTACGTACGTACGAACGTACGTACGTACGT
t2        ACGAACGTACGTACGGACGTACGTACCTACGTAGGTACGT
t3        ACGAACGTACGTACGGACGTACTTACCTACGTAGGTACTT
t4        TCGAACGGACGTACGGAAGTACGTACCTACGGAGGTACGA
t5        TCGAACGGACGTACGGAAGTACGTTCCTACGGAGGAACGA
";

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdml_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    std::fs::write(dir.join("data.phy"), PHYLIP).expect("write alignment");
    dir
}

fn fastdnaml() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fastdnaml"))
}

fn dnarates() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dnarates"))
}

#[test]
fn serial_search_emits_a_tree() {
    let dir = workdir("serial");
    let out = fastdnaml()
        .args(["--input"])
        .arg(dir.join("data.phy"))
        .args(["--jumble", "7", "--radius", "2", "--quiet"])
        .output()
        .expect("run fastdnaml");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let tree = String::from_utf8(out.stdout).expect("utf8");
    let ast = fastdnaml::phylo::newick::parse(tree.trim()).expect("valid Newick on stdout");
    assert_eq!(ast.leaf_names().len(), 6);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn checkpoint_then_resume_gives_same_tree() {
    let dir = workdir("resume");
    let cp = dir.join("cp.json");
    let run = |extra: &[&str]| -> String {
        let mut cmd = fastdnaml();
        cmd.args(["--input"])
            .arg(dir.join("data.phy"))
            .args(["--jumble", "9", "--quiet"]);
        for a in extra {
            cmd.arg(a);
        }
        let out = cmd.output().expect("run");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap().trim().to_string()
    };
    let full = run(&["--checkpoint", cp.to_str().unwrap()]);
    assert!(cp.exists(), "checkpoint file must be written");
    let resumed = run(&["--resume", cp.to_str().unwrap()]);
    // The saved checkpoint is the final one (all taxa placed), so resuming
    // re-optimizes and emits the same topology.
    let names: Vec<String> = (0..6).map(|i| format!("t{i}")).collect();
    let a = fastdnaml::phylo::newick::parse_tree_with_names(&full, &names).unwrap();
    let b = fastdnaml::phylo::newick::parse_tree_with_names(&resumed, &names).unwrap();
    assert_eq!(fastdnaml::phylo::bipartition::robinson_foulds(&a, &b, 6), 0);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn truncated_checkpoint_fails_cleanly_naming_the_file() {
    let dir = workdir("badcp");
    let cp = dir.join("cp.json");
    let out = fastdnaml()
        .args(["--input"])
        .arg(dir.join("data.phy"))
        .args(["--jumble", "9", "--quiet", "--checkpoint"])
        .arg(&cp)
        .output()
        .expect("run");
    assert!(out.status.success());
    // Chop the checkpoint mid-JSON — a crash during write-then-rename
    // cannot produce this, but a copied or tampered file can.
    let text = std::fs::read_to_string(&cp).unwrap();
    std::fs::write(&cp, &text[..text.len() / 2]).unwrap();
    let out = fastdnaml()
        .args(["--input"])
        .arg(dir.join("data.phy"))
        .args(["--jumble", "9", "--quiet", "--resume"])
        .arg(&cp)
        .output()
        .expect("run");
    assert!(!out.status.success(), "truncated checkpoint must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cp.json") && stderr.contains("not a valid checkpoint"),
        "stderr must name the file and the problem: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "no panic output: {stderr}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn wrong_seed_farm_manifest_fails_cleanly_naming_the_file() {
    let dir = workdir("badfarm");
    let manifest = dir.join("farm.json");
    let out = fastdnaml()
        .args(["--input"])
        .arg(dir.join("data.phy"))
        .args(["--jumble", "1", "--jumbles", "3", "--radius", "1"])
        .args(["--quiet", "--checkpoint"])
        .arg(&manifest)
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Resuming under a different base seed plans a different seed set;
    // silently mixing the two farms would corrupt the consensus.
    let out = fastdnaml()
        .args(["--input"])
        .arg(dir.join("data.phy"))
        .args(["--jumble", "11", "--jumbles", "3", "--radius", "1"])
        .args(["--quiet", "--resume"])
        .arg(&manifest)
        .output()
        .expect("run");
    assert!(!out.status.success(), "wrong-seed manifest must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("farm.json") && stderr.contains("do not match"),
        "stderr must name the file and the mismatch: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "no panic output: {stderr}");
    // A garbled manifest is caught at parse time, same contract.
    std::fs::write(&manifest, "{ not json").unwrap();
    let out = fastdnaml()
        .args(["--input"])
        .arg(dir.join("data.phy"))
        .args(["--jumble", "1", "--jumbles", "3", "--radius", "1"])
        .args(["--quiet", "--resume"])
        .arg(&manifest)
        .output()
        .expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("farm.json") && stderr.contains("not a valid farm manifest"),
        "stderr: {stderr}"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn dnarates_report_feeds_fastdnaml() {
    let dir = workdir("rates");
    let rates = dir.join("rates.txt");
    let out = dnarates()
        .args(["--input"])
        .arg(dir.join("data.phy"))
        .args(["--categories", "3", "--output"])
        .arg(&rates)
        .output()
        .expect("run dnarates");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report_text = std::fs::read_to_string(&rates).expect("report written");
    let report = fastdnaml::rates::parse_report(&report_text).expect("parseable report");
    assert_eq!(report.per_site_rate.len(), 40);
    let out = fastdnaml()
        .args(["--input"])
        .arg(dir.join("data.phy"))
        .args(["--rates-file"])
        .arg(&rates)
        .args(["--quiet"])
        .output()
        .expect("run fastdnaml with rates");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn missing_input_fails_cleanly() {
    let out = fastdnaml().output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
    let out = fastdnaml()
        .args(["--input", "/nonexistent.phy"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}

#[test]
fn user_tree_mode_ranks_trees() {
    let dir = workdir("user");
    let trees = dir.join("trees.nwk");
    std::fs::write(
        &trees,
        "(t0:0.1,t1:0.1,(t2:0.1,(t3:0.1,(t4:0.1,t5:0.1):0.1):0.1):0.1);\n\
         (t0:0.1,t4:0.1,(t2:0.1,(t3:0.1,(t1:0.1,t5:0.1):0.1):0.1):0.1);\n",
    )
    .unwrap();
    let out = fastdnaml()
        .args(["--input"])
        .arg(dir.join("data.phy"))
        .args(["--user-trees"])
        .arg(&trees)
        .args(["--quiet"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("tree   1"));
    assert!(stdout.contains("tree   2"));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn outgroup_and_midpoint_rooting() {
    let dir = workdir("rooting");
    let run = |extra: &[&str]| -> String {
        let mut cmd = fastdnaml();
        cmd.args(["--input"])
            .arg(dir.join("data.phy"))
            .args(["--jumble", "7", "--quiet"]);
        for a in extra {
            cmd.arg(a);
        }
        let out = cmd.output().expect("run");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap().trim().to_string()
    };
    // Outgroup rooting: the root has two children, one of which is t5.
    let rooted = run(&["--outgroup", "t5"]);
    let ast = fastdnaml::phylo::newick::parse(&rooted).unwrap();
    assert_eq!(ast.children.len(), 2);
    assert!(ast.children.iter().any(|c| c.leaf_names() == vec!["t5"]));
    // Midpoint rooting also yields a rooted binary tree over all taxa.
    let rooted = run(&["--midpoint"]);
    let ast = fastdnaml::phylo::newick::parse(&rooted).unwrap();
    assert_eq!(ast.children.len(), 2);
    assert_eq!(ast.leaf_names().len(), 6);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn parallel_run_writes_an_event_log_and_a_summary() {
    let dir = workdir("obs");
    let log = dir.join("events.jsonl");
    let out = fastdnaml()
        .args(["--input"])
        .arg(dir.join("data.phy"))
        .args(["--jumble", "3", "--parallel", "4", "--quiet", "--obs-out"])
        .arg(&log)
        .args(["--obs-summary"])
        .output()
        .expect("run fastdnaml");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The summary report and the best tree both land on stdout.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("run report"), "stdout: {stdout}");
    assert!(stdout.contains("dispatched"), "stdout: {stdout}");
    // The event log parses back and tells a consistent story.
    let text = std::fs::read_to_string(&log).expect("event log written");
    let records = fastdnaml::obs::JsonlSink::parse(&text).expect("valid JSONL");
    assert!(matches!(
        records.first().map(|r| &r.event),
        Some(fastdnaml::obs::Event::RunStarted {
            ranks: 4,
            workers: 1
        })
    ));
    assert!(matches!(
        records.last().map(|r| &r.event),
        Some(fastdnaml::obs::Event::RunFinished { .. })
    ));
    let report = fastdnaml::obs::RunReport::from_events(&records);
    assert!(report.dispatched > 0);
    assert_eq!(report.completed, report.dispatched);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn help_flags_print_usage() {
    let out = fastdnaml().args(["--help"]).output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("--jumble") && text.contains("--outgroup"));
    let out = dnarates().args(["--help"]).output().expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("--grid-points"));
}
