//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning crates.

use fastdnaml::datagen::{evolve, yule_tree, EvolutionConfig};
use fastdnaml::likelihood::categories::RateCategories;
use fastdnaml::likelihood::engine::LikelihoodEngine;
use fastdnaml::likelihood::f84::F84Model;
use fastdnaml::phylo::alignment::Alignment;
use fastdnaml::phylo::bipartition::{robinson_foulds, topology_fingerprint, SplitSet};
use fastdnaml::phylo::ops::{apply_move, enumerate_spr_moves};
use fastdnaml::phylo::patterns::PatternAlignment;
use fastdnaml::phylo::{newick, phylip};
use proptest::prelude::*;

fn arb_freqs() -> impl Strategy<Value = [f64; 4]> {
    [0.05f64..1.0, 0.05f64..1.0, 0.05f64..1.0, 0.05f64..1.0].prop_map(|raw| {
        let total: f64 = raw.iter().sum();
        [
            raw[0] / total,
            raw[1] / total,
            raw[2] / total,
            raw[3] / total,
        ]
    })
}

fn arb_alignment(max_taxa: usize, max_sites: usize) -> impl Strategy<Value = Alignment> {
    (4usize..=max_taxa, 16usize..=max_sites, 0u64..10_000).prop_map(|(taxa, sites, seed)| {
        let tree = yule_tree(taxa, 0.15, seed);
        evolve(
            &tree,
            sites,
            &EvolutionConfig {
                missing_fraction: 0.02,
                ..Default::default()
            },
            seed ^ 0x5555,
            "t",
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn f84_matrices_are_stochastic_and_reversible(
        freqs in arb_freqs(),
        tt in 0.6f64..20.0,
        t in 0.0f64..5.0,
        rate in 0.05f64..4.0,
    ) {
        let m = F84Model::new(freqs, tt);
        let p = m.transition_matrix(t, rate);
        for i in 0..4 {
            let row: f64 = p[i].iter().sum();
            prop_assert!((row - 1.0).abs() < 1e-10);
            for j in 0..4 {
                prop_assert!(p[i][j] >= -1e-15);
                // Detailed balance.
                prop_assert!((freqs[i] * p[i][j] - freqs[j] * p[j][i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn newick_roundtrip_preserves_topology_and_lengths(
        taxa in 4usize..40,
        seed in 0u64..1_000,
    ) {
        let tree = yule_tree(taxa, 0.2, seed);
        let names: Vec<String> = (0..taxa).map(|i| format!("t{i}")).collect();
        let text = newick::write_tree(&tree, &names);
        let back = newick::parse_tree_with_names(&text, &names).unwrap();
        prop_assert_eq!(robinson_foulds(&tree, &back, taxa), 0);
        prop_assert!((tree.total_length() - back.total_length()).abs() < 1e-6);
        // Serialization is canonical: a second round-trip is bit-identical.
        prop_assert_eq!(newick::write_tree(&back, &names), text);
    }

    #[test]
    fn phylip_roundtrip_is_identity(alignment in arb_alignment(12, 120)) {
        let text = phylip::write(&alignment);
        let back = phylip::parse(&text).unwrap();
        prop_assert_eq!(alignment, back);
    }

    #[test]
    fn compression_never_changes_the_likelihood(alignment in arb_alignment(8, 80)) {
        let tree = yule_tree(alignment.num_taxa(), 0.15, 1);
        let model = F84Model::from_alignment(&alignment);
        let compressed = LikelihoodEngine::with_parts(
            PatternAlignment::compress(&alignment),
            model.clone(),
            RateCategories::single(PatternAlignment::compress(&alignment).num_patterns()),
        );
        let plain = LikelihoodEngine::with_parts(
            PatternAlignment::uncompressed(&alignment),
            model,
            RateCategories::single(alignment.num_sites()),
        );
        let a = compressed.evaluate(&tree).ln_likelihood;
        let b = plain.evaluate(&tree).ln_likelihood;
        prop_assert!((a - b).abs() < 1e-7, "compressed {} vs plain {}", a, b);
    }

    #[test]
    fn spr_moves_preserve_validity_and_fingerprints_are_distinct(
        taxa in 5usize..16,
        seed in 0u64..500,
        radius in 1usize..4,
    ) {
        let tree = yule_tree(taxa, 0.2, seed);
        let base_fp = topology_fingerprint(&tree);
        let moves = enumerate_spr_moves(&tree, radius);
        let mut fps = std::collections::HashSet::new();
        for mv in &moves {
            let mut cand = tree.clone();
            apply_move(&mut cand, mv).unwrap();
            cand.check_valid().unwrap();
            let fp = topology_fingerprint(&cand);
            prop_assert!(fp != base_fp, "move produced the base topology");
            prop_assert!(fps.insert(fp), "duplicate candidate topology");
        }
    }

    #[test]
    fn rf_distance_is_a_metric_on_random_trees(
        taxa in 4usize..24,
        s1 in 0u64..300,
        s2 in 0u64..300,
        s3 in 0u64..300,
    ) {
        let a = yule_tree(taxa, 0.2, s1);
        let b = yule_tree(taxa, 0.2, s2);
        let c = yule_tree(taxa, 0.2, s3);
        let ab = robinson_foulds(&a, &b, taxa);
        let ba = robinson_foulds(&b, &a, taxa);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(robinson_foulds(&a, &a, taxa), 0);
        // Triangle inequality.
        let ac = robinson_foulds(&a, &c, taxa);
        let cb = robinson_foulds(&c, &b, taxa);
        prop_assert!(ab <= ac + cb);
        // Agreement between split sets and fingerprints.
        prop_assert_eq!(
            ab == 0,
            topology_fingerprint(&a) == topology_fingerprint(&b)
        );
    }

    #[test]
    fn likelihood_invariant_under_serialization(alignment in arb_alignment(10, 60)) {
        let n = alignment.num_taxa();
        let tree = yule_tree(n, 0.2, 9);
        let engine = LikelihoodEngine::new(&alignment);
        let direct = engine.evaluate(&tree).ln_likelihood;
        let text = newick::write_tree(&tree, alignment.names());
        let back = newick::parse_tree(&text, &alignment).unwrap();
        let round = engine.evaluate(&back).ln_likelihood;
        prop_assert!((direct - round).abs() < 1e-5, "direct {} vs roundtrip {}", direct, round);
    }

    #[test]
    fn split_sets_are_pairwise_compatible_for_any_tree(
        taxa in 4usize..40,
        seed in 0u64..500,
    ) {
        let tree = yule_tree(taxa, 0.2, seed);
        let s = SplitSet::of_tree(&tree, taxa);
        prop_assert_eq!(s.len(), taxa - 3);
        for (i, a) in s.splits().iter().enumerate() {
            for b in &s.splits()[i + 1..] {
                prop_assert!(a.compatible_with(b));
            }
        }
    }
}
