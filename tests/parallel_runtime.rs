//! Integration tests of the parallel runtime against the serial program:
//! determinism across worker counts and robustness to injected faults
//! (paper §2.2).

use fastdnaml::comm::fault::FaultPlan;
use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::job::ResolvedJob;
use fastdnaml::core::runner::{parallel_search, serial_search, RunOptions};
use fastdnaml::datagen::{evolve, yule_tree, EvolutionConfig};
use fastdnaml::phylo::alignment::Alignment;
use fastdnaml::phylo::bipartition::SplitSet;
use std::collections::HashMap;
use std::time::Duration;

fn dataset() -> Alignment {
    let tree = yule_tree(9, 0.1, 51);
    evolve(&tree, 400, &EvolutionConfig::default(), 6, "taxon")
}

#[test]
fn worker_count_does_not_change_the_answer() {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 11,
        ..SearchConfig::default()
    };
    let serial = serial_search(&alignment, &config).expect("serial");
    for ranks in [4usize, 5, 7] {
        let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), 1).unwrap();
        let outcome = parallel_search(&job, ranks, RunOptions::default()).expect("parallel");
        assert_eq!(
            SplitSet::of_tree(&serial.tree, 9),
            SplitSet::of_tree(&outcome.result.tree, 9),
            "ranks = {ranks}"
        );
        assert!(
            (serial.ln_likelihood - outcome.result.ln_likelihood).abs() < 1e-5,
            "ranks = {ranks}: serial {} vs parallel {}",
            serial.ln_likelihood,
            outcome.result.ln_likelihood
        );
    }
}

#[test]
fn monitor_sees_every_dispatch() {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 2,
        ..SearchConfig::default()
    };
    let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), 1).unwrap();
    let outcome = parallel_search(&job, 5, RunOptions::default()).expect("parallel");
    let dispatched: u64 = outcome
        .monitor
        .per_worker
        .values()
        .map(|w| w.dispatched)
        .sum();
    let completed: u64 = outcome
        .monitor
        .per_worker
        .values()
        .map(|w| w.completed)
        .sum();
    assert_eq!(dispatched, outcome.foreman.dispatched);
    assert_eq!(
        completed,
        outcome.foreman.results_forwarded + outcome.foreman.duplicates_ignored
    );
    assert!(!outcome.monitor.round_history.is_empty());
    assert!(!outcome.monitor.best_trees.is_empty());
    // The viewer stream parses back as trees.
    for text in &outcome.monitor.best_trees {
        fastdnaml::phylo::newick::parse(text).expect("best-tree stream is valid Newick");
    }
}

#[test]
fn delayed_worker_triggers_timeout_then_recovery() {
    // A longer search (16 taxa) so the run is still going when the
    // delinquent worker's late answer lands.
    let tree = yule_tree(16, 0.1, 52);
    let alignment = evolve(&tree, 700, &EvolutionConfig::default(), 6, "taxon");
    let config = SearchConfig {
        jumble_seed: 11,
        worker_timeout: Duration::from_millis(40),
        ..SearchConfig::default()
    };
    let mut faults = HashMap::new();
    // Worker 3 delays its first result well past the timeout: the foreman
    // must declare it delinquent, reassign, then re-admit it when the late
    // answer arrives. The delay is far shorter than the total run so the
    // late answer always lands while the foreman is still alive.
    faults.insert(
        3usize,
        FaultPlan::delay_first(1, Duration::from_millis(150)),
    );
    let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), 1).unwrap();
    let outcome = parallel_search(&job, 5, RunOptions::with_faults(faults)).expect("run");
    assert!(outcome.foreman.timeouts >= 1, "timeout must fire");
    assert!(
        outcome.foreman.recoveries >= 1,
        "late worker must be re-admitted (stats: {:?})",
        outcome.foreman
    );
    let serial = serial_search(&alignment, &config).expect("serial");
    assert_eq!(
        SplitSet::of_tree(&serial.tree, 16),
        SplitSet::of_tree(&outcome.result.tree, 16)
    );
}

#[test]
fn dead_worker_does_not_stall_the_run() {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 4,
        worker_timeout: Duration::from_millis(150),
        ..SearchConfig::default()
    };
    let mut faults = HashMap::new();
    // Worker 4 never delivers any result at all.
    faults.insert(4usize, FaultPlan::drop_first(u64::MAX));
    let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), 1).unwrap();
    let outcome = parallel_search(&job, 5, RunOptions::with_faults(faults)).expect("run");
    assert!(outcome.result.ln_likelihood.is_finite());
    assert!(outcome.foreman.timeouts >= 1);
    let serial = serial_search(&alignment, &config).expect("serial");
    assert!((serial.ln_likelihood - outcome.result.ln_likelihood).abs() < 1e-5);
}
