//! Control-plane storage chaos: every coordinator-side persistence path
//! under injected filesystem faults.
//!
//! The crash-consistent storage layer (`fdml_core::durable`) promises
//! old-or-new semantics for atomic snapshots (checkpoints, farm
//! manifests) and prefix recovery for logs (the WAL). This suite drives
//! the *real* coordinator paths — not the primitives — through every
//! storage crash-point and through seeded transient-fault storms, and
//! asserts a relaunched coordinator always converges to the byte-
//! identical answer.

use fastdnaml::chaos::storage::{self, StoragePlan};
use fastdnaml::core::checkpoint::FarmManifest;
use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::farm::{plan_seeds, serial_farm, FarmOptions};
use fastdnaml::obs::Obs;
use fastdnaml::phylo::alignment::Alignment;
use fastdnaml::phylo::phylip;
use std::path::{Path, PathBuf};

const PHYLIP: &str = "\
6 40
t0        ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
t1        ACGTACGTACTTACGTACGTACGAACGTACGTACGTACGT
t2        ACGAACGTACGTACGGACGTACGTACCTACGTAGGTACGT
t3        ACGAACGTACGTACGGACGTACTTACCTACGTAGGTACTT
t4        TCGAACGGACGTACGGAAGTACGTACCTACGGAGGTACGA
t5        TCGAACGGACGTACGGAAGTACGTTCCTACGGAGGAACGA
";

fn dataset() -> Alignment {
    phylip::parse(PHYLIP).expect("fixture parses")
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdml_stfault_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// One full farm pass with manifest + WAL in `dir`, resuming from
/// whatever a previous (possibly killed) pass left there — exactly what
/// re-running the CLI command does.
fn run_farm_pass(
    alignment: &Alignment,
    config: &SearchConfig,
    seeds: &[u64],
    dir: &Path,
) -> Result<Vec<String>, String> {
    let manifest_path = dir.join("manifest.json");
    let resume = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => Some(FarmManifest::from_json(&text).map_err(|e| e.to_string())?),
        Err(_) => None,
    };
    let options = FarmOptions {
        manifest_path: Some(manifest_path),
        resume,
        wal_dir: Some(dir.join("wal")),
        ..FarmOptions::default()
    };
    let parts = serial_farm(alignment, config, seeds, &options, &Obs::disabled())
        .map_err(|e| e.to_string())?;
    Ok(parts.runs.into_iter().map(|r| r.newick).collect())
}

/// The full coordinator crash matrix: a farm persists through two
/// interleaved durable paths (the per-jumble WAL and the atomic manifest
/// snapshot after each jumble). Kill the coordinator at *every* storage
/// operation of the whole farm, relaunch, and require the byte-identical
/// per-jumble trees, a complete manifest, and an empty WAL directory.
#[test]
fn farm_crash_at_every_storage_op_recovers_byte_identical() {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 7,
        ..SearchConfig::default()
    };
    let seeds = plan_seeds(7, 3).expect("seeds");

    let clean_dir = workdir("clean");
    storage::install(StoragePlan::quiet(0));
    let expected = run_farm_pass(&alignment, &config, &seeds, &clean_dir).expect("clean farm");
    let total_ops = storage::clear().ops;
    assert!(
        total_ops >= 12,
        "fixture too small: {total_ops} storage ops"
    );

    let dir = workdir("matrix");
    for op in 0..total_ops {
        let pass_dir = dir.join(format!("op{op}"));
        std::fs::create_dir_all(&pass_dir).unwrap();
        storage::install(StoragePlan::quiet(0).crash_at(op));
        let killed = run_farm_pass(&alignment, &config, &seeds, &pass_dir);
        storage::clear();
        assert!(killed.is_err(), "op {op}: injected crash did not surface");

        // Relaunch: manifest replays finished jumbles, WALs resume the
        // in-flight one, the rest run fresh.
        let recovered =
            run_farm_pass(&alignment, &config, &seeds, &pass_dir).expect("recovery pass");
        assert_eq!(recovered, expected, "op {op}: trees diverged");

        let manifest = FarmManifest::from_json(
            &std::fs::read_to_string(pass_dir.join("manifest.json")).expect("manifest written"),
        )
        .expect("manifest parses");
        assert!(manifest.is_complete(), "op {op}: manifest incomplete");
        let leftover = std::fs::read_dir(pass_dir.join("wal"))
            .map(|rd| rd.count())
            .unwrap_or(0);
        assert_eq!(leftover, 0, "op {op}: unretired wal files");
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&clean_dir).ok();
}

/// A crash mid-manifest-write must never leave a hybrid: the relaunched
/// coordinator sees either the old snapshot (and redoes one jumble) or
/// the new one — the manifest always parses.
#[test]
fn manifest_is_old_or_new_never_torn() {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 11,
        ..SearchConfig::default()
    };
    let seeds = plan_seeds(11, 3).expect("seeds");
    let dir = workdir("manifest");

    // Ops 0..4 of an atomic write are temp-write / sync / rename /
    // sync-dir. Sweep a window that lands inside the *second* manifest
    // save (after the first jumble completes) by probing every op and
    // checking the invariant wherever a manifest file exists.
    storage::install(StoragePlan::quiet(0));
    let _ = run_farm_pass(&alignment, &config, &seeds, &dir.join("probe"));
    let total_ops = storage::clear().ops;
    for op in 0..total_ops {
        let pass_dir = dir.join(format!("op{op}"));
        std::fs::create_dir_all(&pass_dir).unwrap();
        storage::install(StoragePlan::quiet(0).crash_at(op));
        let _ = run_farm_pass(&alignment, &config, &seeds, &pass_dir);
        storage::clear();
        let manifest_path = pass_dir.join("manifest.json");
        if let Ok(text) = std::fs::read_to_string(&manifest_path) {
            let manifest = FarmManifest::from_json(&text)
                .unwrap_or_else(|e| panic!("op {op}: torn manifest on disk: {e}"));
            assert_eq!(manifest.seeds(), seeds, "op {op}: manifest seed drift");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Transient fault storms (EIO / ENOSPC / short writes, no kills): runs
/// may fail, but relaunching with the same directory always converges to
/// the clean answer — transient errors never poison the durable state.
#[test]
fn transient_fault_storms_converge() {
    let alignment = dataset();
    let config = SearchConfig {
        jumble_seed: 7,
        ..SearchConfig::default()
    };
    let seeds = plan_seeds(7, 3).expect("seeds");
    let clean_dir = workdir("storm_clean");
    let expected = run_farm_pass(&alignment, &config, &seeds, &clean_dir).expect("clean farm");

    for chaos_seed in [1u64, 2, 3, 4, 5] {
        let pass_dir = workdir(&format!("storm{chaos_seed}"));
        // Under the storm the pass may or may not survive; either way the
        // state on disk must stay usable.
        storage::install(StoragePlan::seeded(chaos_seed));
        let stormy = run_farm_pass(&alignment, &config, &seeds, &pass_dir);
        let stats = storage::clear();
        if let Ok(trees) = &stormy {
            assert_eq!(
                trees, &expected,
                "storm {chaos_seed}: survived but diverged"
            );
        }
        // Calm weather: one relaunch finishes the job.
        let recovered =
            run_farm_pass(&alignment, &config, &seeds, &pass_dir).expect("calm relaunch");
        assert_eq!(
            recovered, expected,
            "storm {chaos_seed} (errors={}, short={}): diverged after relaunch",
            stats.errors, stats.short
        );
        std::fs::remove_dir_all(&pass_dir).ok();
    }
    std::fs::remove_dir_all(&clean_dir).ok();
}

/// A serve-style WAL directory shared by several jobs: killing one job's
/// log never perturbs another's, because logs are namespaced per
/// (job, seed) file.
#[test]
fn job_namespaced_logs_are_isolated() {
    let alignment = dataset();
    let dir = workdir("jobs");
    let wal_dir = dir.join("wal");

    // Job 1 writes a log and is "killed" (log left behind).
    let mut w1 =
        fastdnaml::core::wal::WalWriter::create(&wal_dir, 1, 7, alignment.num_taxa()).unwrap();
    // Job 2's log is corrupted on disk.
    let w2 = fastdnaml::core::wal::WalWriter::create(&wal_dir, 2, 7, alignment.num_taxa()).unwrap();
    drop(w2);
    std::fs::write(fastdnaml::core::wal::wal_path(&wal_dir, 2, 7), b"garbage").unwrap();

    // Job 1 keeps appending happily.
    let round = fastdnaml::core::wal::WalRound {
        index: 0,
        phase: fastdnaml::core::wal::WalPhase::Addition,
        tried: Vec::new(),
        accepted: true,
        lnl_bits: (-1.0f64).to_bits(),
    };
    w1.append(&round).expect("job 1 unaffected");
    drop(w1);

    let state1 = fastdnaml::core::wal::load(&wal_dir, 1, 7)
        .expect("job 1 loads")
        .expect("job 1 present");
    assert_eq!(state1.rounds.len(), 1);
    // Job 2's corrupt log reads as a fresh start, not an error.
    let state2 = fastdnaml::core::wal::load(&wal_dir, 2, 7).expect("job 2 tolerated");
    assert!(state2.is_none() || state2.unwrap().rounds.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
