#!/bin/sh
# The full local CI gate: build, tests, formatting, lints.
set -eux

cargo build --release
cargo test -q
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Benches must keep compiling, and the kernel perf reporter must produce
# valid JSON end to end (quick datasets; the checked-in BENCH_kernels.json
# comes from a full run).
cargo bench --no-run
cargo run --release -p fdml-bench --bin kernel_report -- --quick --out target/bench_kernels_smoke.json
