#!/bin/sh
# The full local CI gate: build, tests, formatting, lints.
set -eux

cargo build --release
cargo test -q
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Benches must keep compiling, and the kernel perf reporter must produce
# valid JSON end to end (quick datasets; the checked-in BENCH_kernels.json
# comes from a full run).
cargo bench --no-run
cargo run --release -p fdml-bench --bin kernel_report -- --quick --out target/bench_kernels_smoke.json

# Multi-process smoke: a 4-rank TCP deployment (one OS process per rank,
# loopback) must emit the identical tree, byte for byte, to the threaded
# in-process run of the same search.
SMOKE=target/net_smoke
mkdir -p "$SMOKE"
printf '%s\n' \
  '6 40' \
  't0        ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT' \
  't1        ACGTACGTACTTACGTACGTACGAACGTACGTACGTACGT' \
  't2        ACGAACGTACGTACGGACGTACGTACCTACGTAGGTACGT' \
  't3        ACGAACGTACGTACGGACGTACTTACCTACGTAGGTACTT' \
  't4        TCGAACGGACGTACGGAAGTACGTACCTACGGAGGTACGA' \
  't5        TCGAACGGACGTACGGAAGTACGTTCCTACGGAGGAACGA' \
  > "$SMOKE/data.phy"
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --net spawn 4 --quiet --output "$SMOKE/net.nwk"
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --parallel 4 --quiet --output "$SMOKE/threads.nwk"
cmp "$SMOKE/net.nwk" "$SMOKE/threads.nwk"

# Jumble-farm smoke: 3 jumbles at width 2, sharded over worker processes
# (TCP) and worker threads — the per-jumble trees and the consensus must
# both be byte-identical across the two transports.
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --jumbles 3 --farm-width 2 --net spawn 4 --quiet \
  --jumble-trees "$SMOKE/farm_net_trees.txt" --output "$SMOKE/farm_net.nwk"
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --jumbles 3 --farm-width 2 --parallel 4 --quiet \
  --jumble-trees "$SMOKE/farm_thr_trees.txt" --output "$SMOKE/farm_thr.nwk"
cmp "$SMOKE/farm_net_trees.txt" "$SMOKE/farm_thr_trees.txt"
cmp "$SMOKE/farm_net.nwk" "$SMOKE/farm_thr.nwk"
