#!/bin/sh
# The full local CI gate: build, tests, formatting, lints.
set -eux

cargo build --release
cargo test -q
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
