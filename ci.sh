#!/bin/sh
# The full local CI gate: build, tests, formatting, lints.
#
#   ./ci.sh         the whole gate (includes the chaos smoke)
#   ./ci.sh chaos   just the fault-injection smoke: the seeded soak matrix
#                   plus a killed-and-supervised TCP worker, with the final
#                   tree compared byte-for-byte against the fault-free run
set -eux

SMOKE=target/net_smoke

write_smoke_data() {
  mkdir -p "$SMOKE"
  printf '%s\n' \
    '6 40' \
    't0        ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT' \
    't1        ACGTACGTACTTACGTACGTACGAACGTACGTACGTACGT' \
    't2        ACGAACGTACGTACGGACGTACGTACCTACGTAGGTACGT' \
    't3        ACGAACGTACGTACGGACGTACTTACCTACGTAGGTACTT' \
    't4        TCGAACGGACGTACGGAAGTACGTACCTACGGAGGTACGA' \
    't5        TCGAACGGACGTACGGAAGTACGTTCCTACGGAGGAACGA' \
    > "$SMOKE/data.phy"
}

chaos_smoke() {
  # The in-process soak: seeded drop/delay/duplicate/corrupt/kill schedules
  # must reproduce the fault-free tree and likelihood bit for bit.
  cargo test -q --test chaos_soak
  # Process-level chaos over TCP: worker rank 4 calls process::exit
  # mid-search and the supervisor re-forks it; the self-healing run must
  # emit the identical tree to the undisturbed one.
  cargo build --release
  write_smoke_data
  ./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --net spawn 5 --quiet \
    --output "$SMOKE/chaos_clean.nwk"
  ./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --net spawn 5 --quiet \
    --supervise --die-rank 4 --die-after-tasks 2 --worker-timeout-ms 300 \
    --output "$SMOKE/chaos_faulty.nwk"
  cmp "$SMOKE/chaos_clean.nwk" "$SMOKE/chaos_faulty.nwk"
}

if [ "${1:-all}" = "chaos" ]; then
  chaos_smoke
  exit 0
fi

cargo build --release
cargo test -q
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Benches must keep compiling, and the kernel perf reporter must produce
# valid JSON end to end (quick datasets; the checked-in BENCH_kernels.json
# comes from a full run).
cargo bench --no-run
cargo run --release -p fdml-bench --bin kernel_report -- --quick --out target/bench_kernels_smoke.json

# Multi-process smoke: a 4-rank TCP deployment (one OS process per rank,
# loopback) must emit the identical tree, byte for byte, to the threaded
# in-process run of the same search.
write_smoke_data
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --net spawn 4 --quiet --output "$SMOKE/net.nwk"
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --parallel 4 --quiet --output "$SMOKE/threads.nwk"
cmp "$SMOKE/net.nwk" "$SMOKE/threads.nwk"

# Jumble-farm smoke: 3 jumbles at width 2, sharded over worker processes
# (TCP) and worker threads — the per-jumble trees and the consensus must
# both be byte-identical across the two transports.
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --jumbles 3 --farm-width 2 --net spawn 4 --quiet \
  --jumble-trees "$SMOKE/farm_net_trees.txt" --output "$SMOKE/farm_net.nwk"
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --jumbles 3 --farm-width 2 --parallel 4 --quiet \
  --jumble-trees "$SMOKE/farm_thr_trees.txt" --output "$SMOKE/farm_thr.nwk"
cmp "$SMOKE/farm_net_trees.txt" "$SMOKE/farm_thr_trees.txt"
cmp "$SMOKE/farm_net.nwk" "$SMOKE/farm_thr.nwk"

# Fault-injection smoke rides the default gate too.
chaos_smoke
