#!/bin/sh
# The full local CI gate: build, tests, formatting, lints.
#
#   ./ci.sh         the whole gate (includes the chaos smoke)
#   ./ci.sh chaos   just the fault-injection smoke: the seeded soak matrix
#                   plus a killed-and-supervised TCP worker, with the final
#                   tree compared byte-for-byte against the fault-free run
set -eux

SMOKE=target/net_smoke

write_smoke_data() {
  mkdir -p "$SMOKE"
  printf '%s\n' \
    '6 40' \
    't0        ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT' \
    't1        ACGTACGTACTTACGTACGTACGAACGTACGTACGTACGT' \
    't2        ACGAACGTACGTACGGACGTACGTACCTACGTAGGTACGT' \
    't3        ACGAACGTACGTACGGACGTACTTACCTACGTAGGTACTT' \
    't4        TCGAACGGACGTACGGAAGTACGTACCTACGGAGGTACGA' \
    't5        TCGAACGGACGTACGGAAGTACGTTCCTACGGAGGAACGA' \
    > "$SMOKE/data.phy"
}

chaos_smoke() {
  # The in-process soak: seeded drop/delay/duplicate/corrupt/kill schedules
  # must reproduce the fault-free tree and likelihood bit for bit.
  cargo test -q --test chaos_soak
  # Process-level chaos over TCP: worker rank 4 calls process::exit
  # mid-search and the supervisor re-forks it; the self-healing run must
  # emit the identical tree to the undisturbed one.
  cargo build --release
  write_smoke_data
  ./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --net spawn 5 --quiet \
    --output "$SMOKE/chaos_clean.nwk"
  ./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --net spawn 5 --quiet \
    --supervise --die-rank 4 --die-after-tasks 2 --worker-timeout-ms 300 \
    --output "$SMOKE/chaos_faulty.nwk"
  cmp "$SMOKE/chaos_clean.nwk" "$SMOKE/chaos_faulty.nwk"
}

if [ "${1:-all}" = "chaos" ]; then
  chaos_smoke
  exit 0
fi

cargo build --release
cargo test -q
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Benches must keep compiling, and the kernel perf reporter must produce
# valid JSON end to end (quick datasets; the checked-in BENCH_kernels.json
# comes from a full run). The reporter itself enforces the >=3x incremental
# candidate-round gate and the bit-identity of the intra-threaded engine,
# so the --quick run doubles as both smokes.
cargo bench --no-run
cargo run --release -p fdml-bench --bin kernel_report -- --quick --intra-threads 2 \
  --out target/bench_kernels_smoke.json

# Incremental-evaluation equivalence suite: seeded randomized edits must
# score identically (<=1e-12) to from-scratch evaluation under both kernel
# modes, bit-identical to the TreeScorer, in any scoring order.
cargo test -q -p fdml-likelihood incremental

# Cross-path kernel equivalence matrix: {scalar, widest host ISA} ×
# {1, 2, 4 intra-rank threads} × {Reference, Optimized} must agree bit for
# bit on evaluation, optimization, Newton derivatives, score_edit, and
# whole searches.
cargo test -q --test kernel_equivalence

# Multi-process smoke: a 4-rank TCP deployment (one OS process per rank,
# loopback) must emit the identical tree, byte for byte, to the threaded
# in-process run of the same search.
write_smoke_data
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --net spawn 4 --quiet --output "$SMOKE/net.nwk"
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --parallel 4 --quiet --output "$SMOKE/threads.nwk"
cmp "$SMOKE/net.nwk" "$SMOKE/threads.nwk"

# ISA / intra-thread smoke: pinning the scalar lane, and running four
# pattern-block threads per rank, must both emit the byte-identical tree —
# the SIMD lanes and the blocked fold are the same computation.
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --parallel 4 --isa scalar --quiet \
  --output "$SMOKE/isa_scalar.nwk"
cmp "$SMOKE/isa_scalar.nwk" "$SMOKE/threads.nwk"
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --parallel 4 --intra-threads 4 --quiet \
  --output "$SMOKE/intra4.nwk"
cmp "$SMOKE/intra4.nwk" "$SMOKE/threads.nwk"

# Incremental round smoke (golden seed 5): base + edit dispatch must emit
# the identical tree, byte for byte, to whole-tree dispatch of the same
# search, over both the threaded and the TCP transports.
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 5 --parallel 4 --quiet \
  --output "$SMOKE/full_threads.nwk"
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 5 --parallel 4 --incremental --quiet \
  --output "$SMOKE/inc_threads.nwk"
cmp "$SMOKE/inc_threads.nwk" "$SMOKE/full_threads.nwk"
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 5 --net spawn 4 --incremental --quiet \
  --output "$SMOKE/inc_net.nwk"
cmp "$SMOKE/inc_net.nwk" "$SMOKE/full_threads.nwk"

# Wire-codec smoke: every fdml-wire frame round-trips (proptest + golden
# bytes), JSON and binary peers interoperate frame-by-frame on one hub
# (the mixed-codec conformance tests), and both codecs plus the
# hierarchical topology emit byte-identical trees end to end as real
# OS processes.
cargo test -q -p fdml-wire
cargo test -q -p fdml-net --test conformance
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --net spawn 4 --wire json --quiet \
  --output "$SMOKE/wire_json.nwk"
cmp "$SMOKE/wire_json.nwk" "$SMOKE/threads.nwk"
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --net spawn 9 --regions 2 --quiet \
  --output "$SMOKE/hier.nwk"
cmp "$SMOKE/hier.nwk" "$SMOKE/threads.nwk"

# Scale smoke: the simulated 1024-rank hierarchical replay must complete
# the identical task set with identical total compute to the flat replay,
# hold per-rank efficiency within 20% of its 64-rank figure, and beat
# the flat JSON design at 4096 ranks (the scaling_report asserts all
# three); the wire_report asserts the >=5x bytes-per-task reduction.
cargo run --release -p fdml-bench --bin scaling_report -- --quick --out target/bench_scaling_smoke.json
cargo run --release -p fdml-bench --bin wire_report -- --quick --out target/bench_wire_smoke.json

# Jumble-farm smoke: 3 jumbles at width 2, sharded over worker processes
# (TCP) and worker threads — the per-jumble trees and the consensus must
# both be byte-identical across the two transports.
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --jumbles 3 --farm-width 2 --net spawn 4 --quiet \
  --jumble-trees "$SMOKE/farm_net_trees.txt" --output "$SMOKE/farm_net.nwk"
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --jumbles 3 --farm-width 2 --parallel 4 --quiet \
  --jumble-trees "$SMOKE/farm_thr_trees.txt" --output "$SMOKE/farm_thr.nwk"
cmp "$SMOKE/farm_net_trees.txt" "$SMOKE/farm_thr_trees.txt"
cmp "$SMOKE/farm_net.nwk" "$SMOKE/farm_thr.nwk"

# Coordinator crash-recovery smoke, two kill styles:
#
# (1) Deterministic: --chaos-storage-crash aborts the coordinator at an
# exact WAL storage operation, leaving the file a SIGKILL there would
# leave. Re-running the same command must resume from the round log and
# emit the byte-identical tree, then retire the log.
WALD="$SMOKE/wal_crash"
rm -rf "$WALD"; mkdir -p "$WALD"
rm -f "$SMOKE/wal_crash.nwk"   # stale output from a prior gate run
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --parallel 4 --quiet \
  --wal-dir "$WALD" --chaos-storage-crash 6 --output "$SMOKE/wal_crash.nwk" 2>/dev/null \
  && { echo "crash injection did not kill the coordinator"; exit 1; }
test ! -f "$SMOKE/wal_crash.nwk"
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --parallel 4 --quiet \
  --wal-dir "$WALD" --output "$SMOKE/wal_crash.nwk"
cmp "$SMOKE/wal_crash.nwk" "$SMOKE/threads.nwk"
test -z "$(ls -A "$WALD")"   # log retired: the directory stays bounded
#
# (2) A real kill -9 mid-farm: 24 jumbles give the coordinator enough
# wall time to be caught with its manifest and WAL half-written. The
# relaunched command must finish the farm with per-jumble trees
# byte-identical to an uninterrupted baseline.
rm -rf "$WALD"; mkdir -p "$WALD"
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --jumbles 24 --parallel 4 --quiet \
  --jumble-trees "$SMOKE/farm_base_trees.txt" --output /dev/null
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --jumbles 24 --parallel 4 --quiet \
  --wal-dir "$WALD" --checkpoint "$SMOKE/farm_kill.json" \
  --jumble-trees "$SMOKE/farm_kill_trees.txt" --output /dev/null &
FARM_PID=$!
until [ -s "$SMOKE/farm_kill.json" ]; do sleep 0.02; done
kill -9 "$FARM_PID" 2>/dev/null || true
wait "$FARM_PID" 2>/dev/null || true
./target/release/fastdnaml --input "$SMOKE/data.phy" --jumble 7 --jumbles 24 --parallel 4 --quiet \
  --wal-dir "$WALD" --checkpoint "$SMOKE/farm_kill.json" --resume "$SMOKE/farm_kill.json" \
  --jumble-trees "$SMOKE/farm_kill_trees.txt" --output /dev/null
cmp "$SMOKE/farm_kill_trees.txt" "$SMOKE/farm_base_trees.txt"
test -z "$(ls -A "$WALD")"

# The full crash-point matrices behind the smoke (every WAL boundary,
# every storage op of a farm, torn tails, fault storms) run as part of
# `cargo test` above: tests/wal_resume.rs and tests/storage_faults.rs.

# Service smoke: start the job daemon with no workers, submit two farms
# (they stay queued — no fleet yet), kill the daemon without ceremony,
# then restart it on a fresh port with a spawned fleet and the same state
# directory. Both jobs must resume from durable state and finish with
# results byte-identical to local serial runs of the same seeds.
SERVE=target/serve_smoke
rm -rf "$SERVE"
mkdir -p "$SERVE"
cp "$SMOKE/data.phy" "$SERVE/data.phy"
./target/release/fastdnaml --serve --state-dir "$SERVE/state" --listen 127.0.0.1:0 \
  --addr-file "$SERVE/addr" --ranks 4 --quiet &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SERVE/addr" ] && break; sleep 0.1; done
ADDR=$(cat "$SERVE/addr")
JOB_A=$(./target/release/fastdnaml --submit --connect "$ADDR" --input "$SERVE/data.phy" \
  --jumble 7 --jumbles 3 --job-label smoke-a --quiet)
JOB_B=$(./target/release/fastdnaml --submit --connect "$ADDR" --input "$SERVE/data.phy" \
  --jumble 11 --jumbles 2 --job-label smoke-b --quiet)
./target/release/fastdnaml --status "$JOB_A" --connect "$ADDR" | grep -q queued
kill -9 "$SERVE_PID"
wait "$SERVE_PID" || true
rm -f "$SERVE/addr"
./target/release/fastdnaml --serve --state-dir "$SERVE/state" --listen 127.0.0.1:0 \
  --addr-file "$SERVE/addr" --ranks 5 --spawn-workers --quiet &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SERVE/addr" ] && break; sleep 0.1; done
ADDR=$(cat "$SERVE/addr")
./target/release/fastdnaml --attach "$JOB_A" --connect "$ADDR" --quiet --output "$SERVE/job_a.nwk"
./target/release/fastdnaml --attach "$JOB_B" --connect "$ADDR" --quiet --output "$SERVE/job_b.nwk"
./target/release/fastdnaml --status "$JOB_A" --connect "$ADDR" | grep -q done
kill -9 "$SERVE_PID"
wait "$SERVE_PID" || true
./target/release/fastdnaml --input "$SERVE/data.phy" --jumble 7 --jumbles 3 --quiet \
  --output "$SERVE/serial_a.nwk"
./target/release/fastdnaml --input "$SERVE/data.phy" --jumble 11 --jumbles 2 --quiet \
  --output "$SERVE/serial_b.nwk"
cmp "$SERVE/job_a.nwk" "$SERVE/serial_a.nwk"
cmp "$SERVE/job_b.nwk" "$SERVE/serial_b.nwk"

# Fault-injection smoke rides the default gate too.
chaos_smoke
