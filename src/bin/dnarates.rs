//! The DNArates companion program: estimate per-site evolutionary rates on
//! a fixed tree and emit rate categories for fastdnaml.
//!
//! ```text
//! dnarates --input data.phy --tree tree.nwk [options]
//!
//!   --input FILE       PHYLIP alignment                       [required]
//!   --tree FILE        reference tree (Newick)                [optional: inferred]
//!   --categories K     number of rate categories              [8]
//!   --grid-min R       smallest rate considered               [0.05]
//!   --grid-max R       largest rate considered                [20.0]
//!   --grid-points N    rate grid resolution                   [25]
//!   --output FILE      write the rate report ("-" = stdout)
//! ```
//!
//! Output format: one header line, one `category rates:` line, then one
//! line per site: `site  rate  category`.

use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::runner::fast_serial_search;
use fastdnaml::likelihood::engine::LikelihoodEngine;
use fastdnaml::phylo::{newick, phylip};
use fastdnaml::rates::{categorize, estimate_rates, RateGrid};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
dnarates --input data.phy [--tree tree.nwk] [options]

  --input FILE       PHYLIP alignment                       [required]
  --tree FILE        reference tree (Newick)                [default: inferred]
  --categories K     number of rate categories              [8]
  --grid-min R       smallest rate considered               [0.05]
  --grid-max R       largest rate considered                [20.0]
  --grid-points N    rate grid resolution                   [25]
  --output FILE      write the rate report (\"-\" = stdout)
  --help             show this message
";

fn main() -> ExitCode {
    let mut args: HashMap<String, String> = HashMap::new();
    let mut iter = std::env::args().skip(1).peekable();
    while let Some(item) = iter.next() {
        if let Some(key) = item.strip_prefix("--") {
            if let Some(v) = iter.peek() {
                if !v.starts_with("--") {
                    args.insert(key.to_string(), iter.next().expect("peeked"));
                    continue;
                }
            }
            args.insert(key.to_string(), String::new());
        }
    }
    if args.contains_key("help") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some(input) = args.get("input") else {
        eprintln!("dnarates: --input FILE is required\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let alignment = match std::fs::read_to_string(input)
        .map_err(|e| e.to_string())
        .and_then(|t| phylip::parse(&t).map_err(|e| e.to_string()))
    {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dnarates: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = SearchConfig::default();
    let tree = match args.get("tree") {
        Some(path) => {
            let text = std::fs::read_to_string(path).expect("read tree file");
            newick::parse_tree(text.trim(), &alignment).expect("parse reference tree")
        }
        None => {
            eprintln!("dnarates: no --tree given; inferring a reference tree first…");
            fast_serial_search(&alignment, &config)
                .expect("reference search")
                .tree
        }
    };
    let grid = RateGrid {
        min: args
            .get("grid-min")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.05),
        max: args
            .get("grid-max")
            .and_then(|v| v.parse().ok())
            .unwrap_or(20.0),
        points: args
            .get("grid-points")
            .and_then(|v| v.parse().ok())
            .unwrap_or(25),
    };
    let k: usize = args
        .get("categories")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);

    let engine = LikelihoodEngine::new(&alignment);
    let estimate = estimate_rates(&engine, &tree, &grid);
    let cats = categorize(&estimate.per_pattern, engine.patterns().weights(), k);

    let per_site_cat: Vec<u32> = engine.patterns().expand_to_sites(
        &(0..engine.patterns().num_patterns())
            .map(|p| cats.category_of(p) as u32)
            .collect::<Vec<_>>(),
    );
    let out = fastdnaml::rates::write_report(
        cats.rates(),
        &estimate.per_site,
        &per_site_cat,
        &format!(
            "{} taxa, {} sites, {} patterns, {} categories",
            alignment.num_taxa(),
            alignment.num_sites(),
            engine.patterns().num_patterns(),
            cats.num_categories()
        ),
    );
    match args.get("output").map(String::as_str) {
        Some("-") | None => print!("{out}"),
        Some(path) => std::fs::write(path, out).expect("write output"),
    }
    ExitCode::SUCCESS
}
