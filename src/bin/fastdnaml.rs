//! The fastDNAml command-line program.
//!
//! ```text
//! fastdnaml --input data.phy [options]
//!
//!   --input FILE         PHYLIP (or FASTA with --fasta) alignment   [required]
//!   --jumble SEED        random addition-order seed                 [1]
//!   --jumbles N          number of random orderings to analyze      [1]
//!   --farm-width W       max jumbles in flight at once (0 = all)    [0]
//!   --jumble-trees FILE  write every jumble's tree, one per line
//!   --radius K           vertices crossed in local rearrangements   [1]
//!   --final-radius K     vertices crossed in the final pass         [= radius]
//!   --tt-ratio R         transition/transversion ratio              [2.0]
//!   --categories K       estimate K rate categories (DNArates) first
//!   --rates-file FILE    use a dnarates report for the category model
//!   --parallel RANKS     run the threaded parallel program (≥ 4 ranks:
//!                        master, foreman, monitor, workers)
//!   --net coordinator    host the TCP hub and run rank 0 (master); use
//!                        with --listen ADDR and --ranks N
//!   --net worker         join a coordinator (or daemon) as a peer process;
//!                        use with --connect ADDR (rank assigned by the hub)
//!   --net spawn N        coordinator that also forks N-1 local worker
//!                        processes — single-command multi-process run
//!   --listen ADDR        coordinator / daemon bind address  [127.0.0.1:0]
//!   --connect ADDR       address for --net worker and the job-API client
//!                        modes (--submit / --status / --attach)
//!   --ranks N            universe size for --net coordinator / --serve [4]
//!   --supervise          (--net spawn) respawn worker processes that die,
//!                        with capped exponential backoff
//!   --max-restarts N     respawn ceiling per worker slot with --supervise [3]
//!   --regions R          interpose R regional foremen between the foreman
//!                        and the workers (--parallel / --net) [0 = flat]
//!   --wire FORMAT        hub data-plane codec, json | binary (--net) [binary]
//!   --worker-timeout-ms T  foreman timeout before a task is requeued
//!   --intra-threads N    pattern-block threads per worker engine; the
//!                        log-likelihood is bit-identical at any N     [1]
//!   --isa LANE           kernel instruction set: scalar | avx2 | avx512 |
//!                        neon (must be host-supported)         [auto-detect]
//!   --incremental        score candidate rounds as base + edit through a
//!                        per-worker CLV cache (parallel / --net modes)
//!   --no-incremental     force whole-tree candidate scoring (the default)
//!   --obs-out FILE       write runtime events as JSON lines (parallel only)
//!   --obs-summary        print the end-of-run report (parallel only)
//!   --bootstrap N        bootstrap with N replicates instead of jumbles
//!   --user-trees FILE    evaluate the Newick trees in FILE, no search
//!   --checkpoint FILE    write a resumable checkpoint after every step
//!                        (--checkpoint-out is an alias; also honoured by
//!                        the --net coordinator/spawn modes; with
//!                        --jumbles > 1 it is the farm manifest)
//!   --resume FILE        resume a single-jumble run from a checkpoint,
//!                        or a farm from its manifest (--jumbles > 1)
//!   --wal-dir DIR        write-ahead log of committed search rounds
//!                        (serial, --parallel, --net, and farm modes): a
//!                        killed run re-launched with the same command
//!                        resumes bit-identically from its last committed
//!                        round — finer-grained than a checkpoint, which
//!                        only captures taxon-addition boundaries
//!   --outgroup T1,T2     root the output tree on this outgroup clade
//!   --midpoint           midpoint-root the output tree
//!   --output FILE        write the best tree / consensus ("-" = stdout)
//!   --fasta              input is FASTA instead of PHYLIP
//!   --quiet              suppress progress output
//!
//! Service mode — the always-on multi-tenant daemon and its clients:
//!
//!   --serve              run the job daemon: the hub stays up across jobs
//!                        and a shared worker fleet serves every submitted
//!                        farm (--listen, --ranks, --state-dir)
//!   --state-dir DIR      durable job state (jobs.json + manifests); a
//!                        restarted daemon resumes unfinished jobs [required]
//!   --addr-file FILE     (--serve) write the bound address, for scripts
//!                        that start the daemon on an ephemeral port
//!   --spawn-workers      (--serve) fork this binary as the worker fleet
//!   --max-jobs N         (--serve) admission queue limit            [8]
//!   --max-job-ranks N    ceiling on a job's worker quota (--serve);
//!                        the quota request itself with --submit     [0]
//!   --max-wall-ms T      ceiling on a job's wall budget (--serve);
//!                        the budget request itself with --submit    [0]
//!   --submit             submit --input as a job to the daemon at
//!                        --connect; prints the admitted job id
//!   --job-label NAME     (--submit) display label for the job
//!   --status JOB         print a submitted job's state and progress
//!   --attach JOB         stream a job's progress and write its result
//!   --attach-timeout-ms T  give up attaching after this long   [600000]
//! ```

use fastdnaml::comm::job::JobSpec;
use fastdnaml::core::checkpoint::{Checkpoint, FarmManifest};
use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::executor::ScorerExecutor;
use fastdnaml::core::farm::{serial_farm, FarmOptions, JumbleRun};
use fastdnaml::core::job::ResolvedJob;
use fastdnaml::core::netrun::{
    net_coordinator_search, net_farm_search, run_net_peer, NetOptions, NetSpawn,
};
use fastdnaml::core::runner::{
    bootstrap_analysis, evaluate_user_trees, farm_search, parallel_search, serial_search,
    RunOptions,
};
use fastdnaml::core::search::StepwiseSearch;
use fastdnaml::core::wal::WalSession;
use fastdnaml::net::WireFormat;
use fastdnaml::obs::{JsonlSink, MemorySink, Obs, RunReport, Sink};
use fastdnaml::phylo::consensus::Consensus;
use fastdnaml::phylo::{fasta, newick, phylip};
use fastdnaml::rates::{categorize, estimate_rates, RateGrid};
use fastdnaml::serve::{client, Daemon, ServeOptions};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

fn get<T: std::str::FromStr>(args: &HashMap<String, String>, key: &str, default: T) -> T {
    args.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Apply the shared topology flags — `--regions R` (hierarchical foreman
/// tree) and `--wire json|binary` (hub data-plane codec) — to a
/// [`NetOptions`] bundle.
fn net_topology(
    mut options: NetOptions,
    args: &HashMap<String, String>,
) -> Result<NetOptions, String> {
    options = options.hierarchical(get(args, "regions", 0));
    if let Some(w) = args.get("wire") {
        match WireFormat::parse(w) {
            Some(wire) => options = options.with_wire(wire),
            None => return Err(format!("--wire {w}: expected json or binary")),
        }
    }
    Ok(options)
}

/// Load a `--resume` farm manifest, naming the file in every failure: a
/// missing, truncated, or non-manifest file is a clean error, not a panic.
fn load_farm_manifest(path: &str) -> Result<FarmManifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--resume {path}: {e}"))?;
    FarmManifest::from_json(&text)
        .map_err(|e| format!("--resume {path}: not a valid farm manifest: {e}"))
}

/// Load a `--resume` search checkpoint, naming the file in every failure.
fn load_checkpoint(path: &str) -> Result<Checkpoint, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--resume {path}: {e}"))?;
    Checkpoint::from_json(&text)
        .map_err(|e| format!("--resume {path}: not a valid checkpoint: {e}"))
}

fn parse_args() -> (HashMap<String, String>, Vec<String>) {
    let mut values = HashMap::new();
    let mut flags = Vec::new();
    let mut iter = std::env::args().skip(1).peekable();
    while let Some(item) = iter.next() {
        if let Some(key) = item.strip_prefix("--") {
            match iter.peek() {
                Some(v) if !v.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    // `--net spawn N` carries a second operand: the rank
                    // count rides in as if `--ranks N` had been given.
                    if key == "net" && value == "spawn" {
                        if let Some(n) = iter.peek().and_then(|v| v.parse::<usize>().ok()) {
                            values.insert("ranks".to_string(), n.to_string());
                            iter.next();
                        }
                    }
                    values.insert(key.to_string(), value);
                }
                _ => flags.push(key.to_string()),
            }
        }
    }
    (values, flags)
}

const USAGE: &str = "\
fastdnaml --input data.phy [options]

  --input FILE         PHYLIP (or FASTA with --fasta) alignment   [required]
  --jumble SEED        random addition-order seed                 [1]
  --jumbles N          number of random orderings to analyze      [1]
  --farm-width W       max jumbles in flight at once (0 = all)    [0]
  --jumble-trees FILE  write every jumble's tree, one per line
  --radius K           vertices crossed in local rearrangements   [1]
  --final-radius K     vertices crossed in the final pass         [= radius]
  --tt-ratio R         transition/transversion ratio              [2.0]
  --categories K       estimate K rate categories (DNArates) first
  --rates-file FILE    use a dnarates report for the category model
  --parallel RANKS     run the threaded parallel program (>= 4 ranks)
  --net coordinator    host the TCP hub and run rank 0 (--listen, --ranks)
  --net worker         join a coordinator or daemon as a peer (--connect)
  --net spawn N        coordinator that also forks N-1 local peers
  --listen ADDR        coordinator / daemon bind address [127.0.0.1:0]
  --connect ADDR       address for --net worker / --submit / --status / --attach
  --ranks N            universe size for --net coordinator / --serve [4]
  --supervise          (--net spawn) respawn dead worker processes
  --max-restarts N     respawn ceiling per worker slot with --supervise [3]
  --regions R          interpose R regional foremen between the foreman
                       and the workers (--parallel / --net) [0 = flat]
  --wire FORMAT        hub data-plane codec, json | binary (--net) [binary]
  --worker-timeout-ms T  foreman timeout before a task is requeued
  --intra-threads N    pattern-block threads per worker engine; the
                       log-likelihood is bit-identical at any N     [1]
  --isa LANE           kernel instruction set: scalar | avx2 | avx512 |
                       neon (must be host-supported)         [auto-detect]
  --incremental        score candidate rounds as base + edit (CLV cache)
  --no-incremental     force whole-tree candidate scoring (the default)
  --obs-out FILE       write runtime events as JSON lines (parallel only)
  --obs-summary        print the end-of-run report (parallel only)
  --bootstrap N        bootstrap with N replicates instead of jumbles
  --user-trees FILE    evaluate the Newick trees in FILE, no search
  --checkpoint FILE    write a resumable checkpoint after every step
                       (--checkpoint-out is an alias; also honoured by
                       the --net coordinator/spawn modes; with
                       --jumbles > 1 it is the farm manifest)
  --resume FILE        resume a single-jumble run from a checkpoint,
                       or a farm from its manifest (--jumbles > 1)
  --wal-dir DIR        write-ahead round log; re-running the same command
                       resumes bit-identically from the last committed
                       round (serial, --parallel, --net, farm)
  --chaos-storage-crash N  test hook: abort at the Nth durable-storage
                       operation, as a crash there would
  --outgroup T1,T2     root the output tree on this outgroup clade
  --midpoint           midpoint-root the output tree
  --output FILE        write the best tree / consensus (\"-\" = stdout)
  --fasta              input is FASTA instead of PHYLIP
  --quiet              suppress progress output
  --help               show this message

Service mode (the always-on job daemon and its clients):

  --serve              run the multi-tenant job daemon (--listen, --ranks,
                       --state-dir; workers join via --net worker)
  --state-dir DIR      durable job state; a restart resumes unfinished jobs
  --addr-file FILE     (--serve) write the bound address to FILE
  --spawn-workers      (--serve) fork this binary as the worker fleet
  --max-jobs N         (--serve) admission queue limit [8]
  --max-job-ranks N    per-job worker ceiling (--serve) / request (--submit)
  --max-wall-ms T      per-job wall budget ceiling (--serve) / request (--submit)
  --submit             submit --input to the daemon at --connect
  --job-label NAME     (--submit) display label for the job
  --status JOB         print a submitted job's state and progress
  --attach JOB         stream a job's progress and write its result
  --attach-timeout-ms T  give up attaching after this long [600000]
";

/// Write `text` to `--output` (default `-` = stdout).
fn emit_to(output: &str, text: &str) {
    if output == "-" {
        println!("{text}");
    } else {
        std::fs::write(output, format!("{text}\n")).expect("write output");
    }
}

/// `--serve`: run the daemon until killed. Never returns on success — the
/// scheduler thread owns the process from here.
fn serve_mode(args: &HashMap<String, String>, flags: &[String], quiet: bool) -> ExitCode {
    let Some(state_dir) = args.get("state-dir") else {
        eprintln!("fastdnaml: --serve requires --state-dir DIR");
        return ExitCode::FAILURE;
    };
    let listen = args
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:0");
    let mut options = ServeOptions::new(listen, get(args, "ranks", 4), state_dir);
    options.max_jobs = get(args, "max-jobs", 8);
    options.max_job_ranks = get(args, "max-job-ranks", 0);
    options.max_wall_ms = get(args, "max-wall-ms", 0);
    if let Some(w) = args.get("wire") {
        match WireFormat::parse(w) {
            Some(wire) => options.wire = wire,
            None => {
                eprintln!("fastdnaml: --wire {w}: expected json or binary");
                return ExitCode::FAILURE;
            }
        }
    }
    if flags.iter().any(|f| f == "spawn-workers") {
        options.spawn = Some(std::env::current_exe().expect("current executable path"));
    }
    if let Some(path) = args.get("obs-out") {
        options.sinks.push(Box::new(
            JsonlSink::create(path).unwrap_or_else(|e| panic!("--obs-out {path}: {e}")),
        ));
    }
    let daemon = match Daemon::start(options) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("fastdnaml: serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = daemon.local_addr();
    if let Some(path) = args.get("addr-file") {
        std::fs::write(path, addr.to_string()).expect("write addr file");
    }
    if !quiet {
        eprintln!("fastdnaml: serving jobs on {addr} (state in {state_dir})");
    }
    // The daemon runs until the process is killed; durable state makes
    // that a safe way to stop it.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// `--status JOB`: one-line report from the daemon at `--connect`.
fn status_mode(connect: &str, job_arg: &str) -> ExitCode {
    let Ok(job) = job_arg.parse::<u64>() else {
        eprintln!("fastdnaml: --status takes a numeric job id, got {job_arg:?}");
        return ExitCode::FAILURE;
    };
    match client::status(connect, job) {
        Ok(status) => {
            let label = if status.label.is_empty() {
                String::new()
            } else {
                format!(" ({})", status.label)
            };
            let failure = match &status.failure {
                Some(reason) => format!(": {reason}"),
                None => String::new(),
            };
            println!(
                "job {}{label}: {} {}/{} jumbles{failure}",
                status.job, status.state, status.done, status.total
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fastdnaml: status: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--attach JOB`: stream progress, then write the consensus (or the
/// single tree) like a local farm run would.
fn attach_mode(
    connect: &str,
    job_arg: &str,
    args: &HashMap<String, String>,
    quiet: bool,
) -> ExitCode {
    let Ok(job) = job_arg.parse::<u64>() else {
        eprintln!("fastdnaml: --attach takes a numeric job id, got {job_arg:?}");
        return ExitCode::FAILURE;
    };
    let patience = Duration::from_millis(get(args, "attach-timeout-ms", 600_000u64));
    let mut on_event = |text: &str| {
        if !quiet {
            eprintln!("fastdnaml: job {job}: {text}");
        }
    };
    match client::attach(connect, job, patience, &mut on_event) {
        Ok(result) => {
            if !quiet {
                for tree in &result.trees {
                    eprintln!(
                        "fastdnaml: jumble {}: lnL {:.4}",
                        tree.seed, tree.ln_likelihood
                    );
                }
            }
            if let Some(path) = args.get("jumble-trees") {
                let mut text = String::new();
                for tree in &result.trees {
                    text.push_str(&tree.newick);
                    text.push('\n');
                }
                std::fs::write(path, text).expect("write jumble trees");
            }
            let best = result
                .consensus_newick
                .clone()
                .unwrap_or_else(|| result.best_newick.clone());
            emit_to(args.get("output").map(String::as_str).unwrap_or("-"), &best);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fastdnaml: attach: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let (args, flags) = parse_args();
    if flags.iter().any(|f| f == "help") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let quiet = flags.iter().any(|f| f == "quiet");

    // `--isa` narrows the kernel dispatch before any engine exists; it is
    // applied first so every mode — including `--net worker`, whose engine
    // config arrives over the wire — runs the requested lane.
    if let Some(name) = args.get("isa") {
        let Some(isa) = fastdnaml::likelihood::KernelIsa::parse(name) else {
            eprintln!("fastdnaml: --isa {name}: expected scalar, avx2, avx512, or neon");
            return ExitCode::FAILURE;
        };
        if let Err(e) = fastdnaml::likelihood::isa::set_isa(Some(isa)) {
            eprintln!("fastdnaml: --isa {name}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Chaos hook for the crash-recovery gate: die (sticky storage
    // failure, so the run aborts with the on-disk state a SIGKILL would
    // leave) at exactly the Nth durable-storage operation. The smoke in
    // ci.sh uses this to kill the coordinator at a WAL boundary
    // deterministically, then proves re-running the same command
    // recovers the byte-identical tree.
    if let Some(op) = args.get("chaos-storage-crash") {
        let Ok(op) = op.parse::<u64>() else {
            eprintln!("fastdnaml: --chaos-storage-crash expects an operation index");
            return ExitCode::FAILURE;
        };
        fastdnaml::chaos::storage::install(
            fastdnaml::chaos::storage::StoragePlan::quiet(0).crash_at(op),
        );
    }

    // Daemon mode: no alignment of its own — jobs bring their problem
    // data over the wire.
    if flags.iter().any(|f| f == "serve") {
        return serve_mode(&args, &flags, quiet);
    }

    // Client modes that only need a job id and the daemon address.
    if args.contains_key("status") || args.contains_key("attach") {
        let Some(connect) = args.get("connect") else {
            eprintln!("fastdnaml: --status / --attach require --connect ADDR");
            return ExitCode::FAILURE;
        };
        if let Some(job) = args.get("status") {
            return status_mode(connect, job);
        }
        let job = args.get("attach").expect("checked above");
        return attach_mode(connect, job, &args, quiet);
    }

    // Peer mode: no alignment, no search options — everything (problem
    // data, engine configuration, rank) arrives from the coordinator over
    // the wire, like an MPI rank joining a job.
    if matches!(args.get("net").map(String::as_str), Some("worker" | "peer")) {
        let Some(connect) = args.get("connect") else {
            eprintln!("fastdnaml: --net worker requires --connect ADDR");
            return ExitCode::FAILURE;
        };
        let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
        if let Some(path) = args.get("obs-out") {
            sinks.push(Box::new(
                JsonlSink::create(path).unwrap_or_else(|e| panic!("--obs-out {path}: {e}")),
            ));
        }
        let die_after = args
            .get("die-after-tasks")
            .and_then(|v| v.parse::<u64>().ok());
        match run_net_peer(connect, sinks, die_after) {
            Ok((rank, outcome)) => {
                if !quiet {
                    eprintln!("fastdnaml: rank {rank} done: {outcome:?}");
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("fastdnaml: net worker: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(input) = args.get("input") else {
        eprintln!("fastdnaml: --input FILE is required\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fastdnaml: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let alignment = match if flags.iter().any(|f| f == "fasta") {
        fasta::parse(&text)
    } else {
        phylip::parse(&text)
    } {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fastdnaml: cannot parse {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !quiet {
        eprintln!(
            "fastdnaml: {} taxa × {} sites",
            alignment.num_taxa(),
            alignment.num_sites()
        );
    }

    let radius: usize = get(&args, "radius", 1);
    let intra_threads: usize = get(&args, "intra-threads", 1usize).max(1);
    let mut config = SearchConfig {
        jumble_seed: get(&args, "jumble", 1),
        rearrange_radius: radius,
        final_radius: get(&args, "final-radius", radius),
        tt_ratio: get(&args, "tt-ratio", 2.0),
        intra_threads,
        ..SearchConfig::default()
    };
    if let Some(ms) = args
        .get("worker-timeout-ms")
        .and_then(|v| v.parse::<u64>().ok())
    {
        config.worker_timeout = std::time::Duration::from_millis(ms);
    }
    if flags.iter().any(|f| f == "incremental") {
        config.incremental = true;
    }
    // `--no-incremental` wins if both are given: it is the escape hatch.
    if flags.iter().any(|f| f == "no-incremental") {
        config.incremental = false;
    }

    // Category model from a dnarates report file.
    if let Some(path) = args.get("rates-file") {
        let report_text = std::fs::read_to_string(path).expect("read rates file");
        let report = fastdnaml::rates::parse_report(&report_text).expect("parse rates file");
        let patterns = fastdnaml::phylo::patterns::PatternAlignment::compress(&alignment);
        config.categories = Some(
            report
                .to_categories(&patterns)
                .normalized(patterns.weights()),
        );
        if !quiet {
            eprintln!(
                "fastdnaml: using {} rate categories from {path}",
                report.rates.len()
            );
        }
    }

    // Optional DNArates pre-pass.
    if let Some(k) = args.get("categories").and_then(|v| v.parse::<usize>().ok()) {
        if !quiet {
            eprintln!("fastdnaml: estimating {k} rate categories (DNArates pre-pass)…");
        }
        let engine = config.build_engine(&alignment);
        let pre = fastdnaml::core::runner::fast_serial_search(&alignment, &config)
            .expect("pre-pass search");
        let est = estimate_rates(&engine, &pre.tree, &RateGrid::default());
        config.categories = Some(categorize(&est.per_pattern, engine.patterns().weights(), k));
    }

    // Every front-end path funnels through the JobSpec builder: mutually
    // exclusive flags become one typed error naming the offenders instead
    // of whichever code path happened to win.
    let jumbles: usize = get(&args, "jumbles", 1);
    let submit = flags.iter().any(|f| f == "submit");
    let spec: JobSpec = {
        let has = |key: &str| args.contains_key(key);
        let spec_result = JobSpec::builder()
            .phylip(phylip::write(&alignment))
            .config_json(config.engine_config_json())
            .jumbles(jumbles)
            .base_seed(config.jumble_seed)
            .max_ranks(get(&args, "max-job-ranks", 0usize))
            .max_wall_ms(get(&args, "max-wall-ms", 0u64))
            .intra_threads(intra_threads)
            .label(args.get("job-label").cloned().unwrap_or_default())
            .conflict_if(
                flags.iter().any(|f| f == "midpoint") && has("outgroup"),
                "--midpoint",
                "--outgroup",
            )
            .conflict_if(has("bootstrap") && jumbles > 1, "--bootstrap", "--jumbles")
            .conflict_if(
                has("user-trees") && jumbles > 1,
                "--user-trees",
                "--jumbles",
            )
            .conflict_if(
                has("user-trees") && has("bootstrap"),
                "--user-trees",
                "--bootstrap",
            )
            .conflict_if(has("bootstrap") && has("resume"), "--bootstrap", "--resume")
            .conflict_if(has("parallel") && has("net"), "--parallel", "--net")
            .conflict_if(submit && has("parallel"), "--submit", "--parallel")
            .conflict_if(submit && has("net"), "--submit", "--net")
            .conflict_if(submit && has("bootstrap"), "--submit", "--bootstrap")
            .conflict_if(submit && has("user-trees"), "--submit", "--user-trees")
            .conflict_if(submit && has("resume"), "--submit", "--resume")
            .conflict_if(submit && has("checkpoint"), "--submit", "--checkpoint")
            .build();
        match spec_result {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("fastdnaml: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    // Submit mode: the spec goes to the daemon instead of running here.
    if submit {
        let Some(connect) = args.get("connect") else {
            eprintln!("fastdnaml: --submit requires --connect ADDR");
            return ExitCode::FAILURE;
        };
        return match client::submit(connect.as_str(), &spec) {
            Ok(job) => {
                if !quiet {
                    eprintln!("fastdnaml: submitted job {job} to {connect}");
                }
                println!("{job}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fastdnaml: submit: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let output = args.get("output").map(String::as_str).unwrap_or("-");
    let emit = |text: &str| emit_to(output, text);
    // Optional rooting of result trees (§1.1: rooting is a separate step
    // after the unrooted search).
    let outgroup: Option<Vec<u32>> = args.get("outgroup").map(|list| {
        list.split(',')
            .map(|name| {
                alignment
                    .taxon_id(name.trim())
                    .unwrap_or_else(|e| panic!("--outgroup: {e}"))
            })
            .collect()
    });
    let midpoint = flags.iter().any(|f| f == "midpoint");
    let render_tree = |tree: &fastdnaml::phylo::tree::Tree| -> String {
        if let Some(og) = &outgroup {
            let rooted = fastdnaml::phylo::rooting::root_at_outgroup(tree, og, alignment.names())
                .expect("outgroup rooting");
            newick::write(&rooted)
        } else if midpoint {
            let rooted = fastdnaml::phylo::rooting::midpoint_root(tree, alignment.names())
                .expect("midpoint rooting");
            newick::write(&rooted)
        } else {
            newick::write_tree(tree, alignment.names())
        }
    };

    // User-tree evaluation mode.
    if let Some(path) = args.get("user-trees") {
        let trees_text = std::fs::read_to_string(path).expect("read user trees");
        let newicks: Vec<String> = trees_text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(String::from)
            .collect();
        let evaluated =
            evaluate_user_trees(&alignment, &config, &newicks).expect("evaluate user trees");
        for (i, e) in evaluated.iter().enumerate() {
            println!("tree {:>3}: lnL {:.4}", i + 1, e.ln_likelihood);
        }
        let best = evaluated
            .iter()
            .max_by(|a, b| a.ln_likelihood.total_cmp(&b.ln_likelihood))
            .expect("at least one tree");
        emit(&best.newick);
        return ExitCode::SUCCESS;
    }

    // Bootstrap mode.
    if let Some(n) = args.get("bootstrap").and_then(|v| v.parse::<usize>().ok()) {
        if !quiet {
            eprintln!("fastdnaml: {n} bootstrap replicates…");
        }
        let (_, cons) =
            bootstrap_analysis(&alignment, &config, n, config.jumble_seed).expect("bootstrap");
        emit(&newick::write(&cons.tree));
        if !quiet {
            eprintln!(
                "fastdnaml: consensus has {} splits above 50%",
                cons.splits.len()
            );
        }
        return ExitCode::SUCCESS;
    }

    // Checkpoint / resume apply to the serial search, the net coordinator
    // (rank 0 carries all the search state either way), and the jumble farm
    // (where the file is a farm manifest instead of a search checkpoint).
    let checkpoint_path = args
        .get("checkpoint-out")
        .or_else(|| args.get("checkpoint"))
        .cloned();

    // The resolved job drives every remaining mode: alignment + config +
    // planned seeds, the same value the daemon builds from a submitted
    // spec.
    let job = match ResolvedJob::from_parts(alignment.clone(), config.clone(), jumbles) {
        Ok(job) => job,
        Err(e) => {
            eprintln!("fastdnaml: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Multiple jumbles → the jumble farm: serial, threaded (--parallel), or
    // multi-process (--net), with an incremental majority-rule consensus
    // and a resumable manifest.
    if jumbles > 1 {
        let seeds = job.seeds.clone();
        let farm_resume = match args.get("resume") {
            Some(path) => match load_farm_manifest(path) {
                Ok(m) if m.seeds() != seeds => {
                    eprintln!(
                        "fastdnaml: --resume {path}: manifest seeds {:?} do not match \
                         this farm's {:?} (same --jumble / --jumbles required)",
                        m.seeds(),
                        seeds
                    );
                    return ExitCode::FAILURE;
                }
                Ok(m) => Some(m),
                Err(e) => {
                    eprintln!("fastdnaml: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        let farm_options = FarmOptions {
            width: get(&args, "farm-width", 0),
            manifest_path: checkpoint_path.clone().map(std::path::PathBuf::from),
            resume: farm_resume,
            wal_dir: args.get("wal-dir").map(std::path::PathBuf::from),
        };
        let obs_summary = flags.iter().any(|f| f == "obs-summary");
        let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
        if let Some(path) = args.get("obs-out") {
            sinks.push(Box::new(
                JsonlSink::create(path).unwrap_or_else(|e| panic!("--obs-out {path}: {e}")),
            ));
        }
        if obs_summary && sinks.is_empty() {
            sinks.push(Box::new(MemorySink::new()));
        }
        let (runs, cons, report): (Vec<JumbleRun>, Consensus, Option<RunReport>) =
            if let Some(mode) = args.get("net").map(String::as_str) {
                if mode != "coordinator" && mode != "spawn" {
                    eprintln!(
                        "fastdnaml: unknown --net mode {mode:?} (coordinator | worker | spawn N)"
                    );
                    return ExitCode::FAILURE;
                }
                let ranks: usize = get(&args, "ranks", 4);
                let listen = args
                    .get("listen")
                    .map(String::as_str)
                    .unwrap_or("127.0.0.1:0");
                let mut net_options =
                    match net_topology(NetOptions::new(listen, ranks).observed(sinks), &args) {
                        Ok(o) => o,
                        Err(e) => {
                            eprintln!("fastdnaml: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                if mode == "spawn" {
                    let die_rank = args.get("die-rank").and_then(|v| v.parse::<usize>().ok());
                    let die_tasks = args
                        .get("die-after-tasks")
                        .and_then(|v| v.parse::<u64>().ok());
                    net_options = net_options.spawning(NetSpawn {
                        program: std::env::current_exe().expect("current executable path"),
                        die_after_tasks: die_rank.zip(die_tasks),
                        quiet,
                        supervise: flags.iter().any(|f| f == "supervise"),
                        max_restarts: get(&args, "max-restarts", 3),
                    });
                }
                if !quiet {
                    eprintln!(
                        "fastdnaml: net {mode} farm: {} jumbles over {ranks} ranks via {listen}",
                        seeds.len()
                    );
                }
                let outcome = match net_farm_search(&job, &farm_options, net_options) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("fastdnaml: net farm: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if !quiet {
                    for (rank, code) in &outcome.peer_exits {
                        if *code != Some(0) {
                            eprintln!("fastdnaml: peer rank {rank} exited with {code:?}");
                        }
                    }
                }
                (outcome.runs, outcome.consensus, outcome.report)
            } else if let Some(ranks) = args.get("parallel").and_then(|v| v.parse::<usize>().ok()) {
                let outcome =
                    match farm_search(&job, ranks, farm_options, RunOptions::observed(sinks)) {
                        Ok(o) => o,
                        Err(e) => {
                            eprintln!("fastdnaml: farm: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                (outcome.runs, outcome.consensus, outcome.report)
            } else {
                let observing = sinks.iter().any(|s| !s.is_null());
                let mem = if observing {
                    let mem = MemorySink::new();
                    sinks.push(Box::new(mem.clone()));
                    Some(mem)
                } else {
                    None
                };
                let obs = Obs::multi(sinks);
                let parts = match serial_farm(&alignment, &config, &seeds, &farm_options, &obs) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("fastdnaml: farm: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                obs.flush();
                let report = mem.map(|m| RunReport::from_events(&m.take()));
                (parts.runs, parts.consensus, report)
            };
        if obs_summary {
            match &report {
                Some(report) => println!("{report}"),
                None => eprintln!("fastdnaml: no observability data collected"),
            }
        }
        if !quiet {
            for r in &runs {
                eprintln!(
                    "fastdnaml: jumble {}: lnL {:.4}{}",
                    r.seed,
                    r.ln_likelihood,
                    if r.reused { " (resumed)" } else { "" }
                );
            }
        }
        // The determinism artifact: every jumble's tree, verbatim as the
        // search produced it, one per line in seed order.
        if let Some(path) = args.get("jumble-trees") {
            let mut text = String::new();
            for r in &runs {
                text.push_str(&r.newick);
                text.push('\n');
            }
            std::fs::write(path, text).expect("write jumble trees");
        }
        emit(&newick::write(&cons.tree));
        if !quiet {
            eprintln!(
                "fastdnaml: consensus of {} jumbles has {} splits above 50%",
                runs.len(),
                cons.splits.len()
            );
        }
        return ExitCode::SUCCESS;
    }

    // A WAL resumes from its own log, replaying the search from round
    // zero; splicing a checkpoint underneath it would desynchronize the
    // log's round indices from the search's. (Farms compose the two —
    // manifest for finished jumbles, WAL for in-flight ones — because
    // there each jumble's WAL still starts at its round zero.)
    if args.contains_key("wal-dir") && args.contains_key("resume") {
        eprintln!(
            "fastdnaml: --wal-dir and --resume conflict for single searches; \
             re-run with --wal-dir alone to resume from the round log"
        );
        return ExitCode::FAILURE;
    }
    let resume_checkpoint = match args.get("resume") {
        Some(path) => match load_checkpoint(path) {
            Ok(cp) => Some(cp),
            Err(e) => {
                eprintln!("fastdnaml: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // Multi-process modes: coordinator (peers join from elsewhere) or
    // spawn (the coordinator forks its own local peers).
    if let Some(mode) = args.get("net").map(String::as_str) {
        if mode != "coordinator" && mode != "spawn" {
            eprintln!("fastdnaml: unknown --net mode {mode:?} (coordinator | worker | spawn N)");
            return ExitCode::FAILURE;
        }
        let ranks: usize = get(&args, "ranks", 4);
        let listen = args
            .get("listen")
            .map(String::as_str)
            .unwrap_or("127.0.0.1:0");
        let obs_summary = flags.iter().any(|f| f == "obs-summary");
        let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
        if let Some(path) = args.get("obs-out") {
            sinks.push(Box::new(
                JsonlSink::create(path).unwrap_or_else(|e| panic!("--obs-out {path}: {e}")),
            ));
        }
        if obs_summary && sinks.is_empty() {
            sinks.push(Box::new(MemorySink::new()));
        }
        let mut net_options =
            match net_topology(NetOptions::new(listen, ranks).observed(sinks), &args) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("fastdnaml: {e}");
                    return ExitCode::FAILURE;
                }
            };
        net_options.checkpoint_out = checkpoint_path.clone().map(std::path::PathBuf::from);
        net_options.resume = resume_checkpoint;
        net_options.wal_dir = args.get("wal-dir").map(std::path::PathBuf::from);
        if mode == "spawn" {
            let die_rank = args.get("die-rank").and_then(|v| v.parse::<usize>().ok());
            let die_tasks = args
                .get("die-after-tasks")
                .and_then(|v| v.parse::<u64>().ok());
            net_options = net_options.spawning(NetSpawn {
                program: std::env::current_exe().expect("current executable path"),
                die_after_tasks: die_rank.zip(die_tasks),
                quiet,
                supervise: flags.iter().any(|f| f == "supervise"),
                max_restarts: get(&args, "max-restarts", 3),
            });
        }
        if !quiet {
            eprintln!("fastdnaml: net {mode}: {ranks} ranks via {listen}");
        }
        let outcome = match net_coordinator_search(&job, net_options) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("fastdnaml: net coordinator: {e}");
                return ExitCode::FAILURE;
            }
        };
        if obs_summary {
            match &outcome.report {
                Some(report) => println!("{report}"),
                None => eprintln!("fastdnaml: no observability data collected"),
            }
        }
        if !quiet {
            eprintln!(
                "fastdnaml: lnL {:.4} over {} process ranks",
                outcome.result.ln_likelihood, ranks
            );
            for (rank, code) in &outcome.peer_exits {
                if *code != Some(0) {
                    eprintln!("fastdnaml: peer rank {rank} exited with {code:?}");
                }
            }
        }
        emit(&render_tree(&outcome.result.tree));
        return ExitCode::SUCCESS;
    }

    // Single search: parallel, resumable-serial, or plain serial.
    if let Some(ranks) = args.get("parallel").and_then(|v| v.parse::<usize>().ok()) {
        let obs_summary = flags.iter().any(|f| f == "obs-summary");
        let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
        if let Some(path) = args.get("obs-out") {
            sinks.push(Box::new(
                JsonlSink::create(path).unwrap_or_else(|e| panic!("--obs-out {path}: {e}")),
            ));
        }
        if obs_summary && sinks.is_empty() {
            // No event log requested, but the report still needs the stream.
            sinks.push(Box::new(MemorySink::new()));
        }
        let mut run_options = RunOptions::observed(sinks);
        run_options.regions = get(&args, "regions", 0);
        run_options.wal_dir = args.get("wal-dir").map(std::path::PathBuf::from);
        let outcome = match parallel_search(&job, ranks, run_options) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("fastdnaml: parallel search: {e}");
                return ExitCode::FAILURE;
            }
        };
        if obs_summary {
            match &outcome.report {
                Some(report) => println!("{report}"),
                None => eprintln!("fastdnaml: no observability data collected"),
            }
        }
        if !quiet {
            eprintln!(
                "fastdnaml: lnL {:.4} ({} trees over {} workers, {} timeouts)",
                outcome.result.ln_likelihood,
                outcome.foreman.results_forwarded,
                ranks - 3,
                outcome.foreman.timeouts
            );
        }
        emit(&render_tree(&outcome.result.tree));
        return ExitCode::SUCCESS;
    }

    let wal_dir = args.get("wal-dir").map(std::path::PathBuf::from);
    let result = if checkpoint_path.is_some() || resume_checkpoint.is_some() || wal_dir.is_some() {
        let engine = config.build_engine(&alignment);
        let executor = ScorerExecutor::new(&engine, config.optimize);
        let mut search = StepwiseSearch::new(&config, executor, alignment.num_taxa())
            .with_names(alignment.names().to_vec());
        if let Some(cp) = resume_checkpoint {
            search = search.resume_from(cp);
        }
        if let Some(path) = checkpoint_path.clone() {
            let path = std::path::PathBuf::from(path);
            search = search.on_checkpoint(move |cp| {
                cp.save(&path).expect("write checkpoint");
            });
        }
        let obs = Obs::disabled();
        let mut wal_session = match &wal_dir {
            Some(dir) => {
                match WalSession::open(dir, 0, config.jumble_seed, alignment.num_taxa(), &obs) {
                    Ok(session) => Some(session),
                    Err(e) => {
                        eprintln!("fastdnaml: --wal-dir {}: {e}", dir.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => None,
        };
        if let Some(session) = &mut wal_session {
            let rounds = session.take_rounds();
            search = search.resume_from_wal(rounds).on_wal(session.hook());
        }
        match search.run() {
            Ok(r) => {
                if let Some(session) = wal_session {
                    if let Err(e) = session.finish_and_retire() {
                        eprintln!("fastdnaml: wal: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                r
            }
            Err(e) => {
                eprintln!("fastdnaml: search: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        serial_search(&alignment, &config).expect("search")
    };
    if !quiet {
        eprintln!(
            "fastdnaml: lnL {:.4} after {} candidate trees in {} rounds",
            result.ln_likelihood, result.candidates_evaluated, result.rounds
        );
    }
    emit(&render_tree(&result.tree));
    ExitCode::SUCCESS
}
