//! # fastdnaml
//!
//! A Rust reproduction of **fastDNAml** — *Parallel implementation and
//! performance of fastDNAml: a program for maximum likelihood phylogenetic
//! inference* (Stewart, Hart, Berry, Olsen, Wernert & Fischer, SC 2001).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`phylo`] — alignments, PHYLIP/FASTA/Newick I/O, unrooted trees,
//!   rearrangements, bipartitions, consensus.
//! * [`likelihood`] — the F84 maximum-likelihood kernel with Newton
//!   branch-length optimization and rate categories.
//! * [`rates`] — the DNArates analog (per-site rate estimation).
//! * [`comm`] — the message-passing abstraction (serial / threads).
//! * [`chaos`] — the deterministic chaos harness: seeded fault schedules
//!   applied through a transport wrapper.
//! * [`core`] — the fastDNAml search and the master / foreman / worker /
//!   monitor parallel runtime.
//! * [`net`] — the TCP transport: framed wire protocol, coordinator hub,
//!   reconnecting clients, and the v3 service plane.
//! * [`serve`] — the always-on multi-tenant daemon: durable job registry,
//!   fair-share scheduler over a shared worker fleet, and the
//!   submit / status / attach client.
//! * [`obs`] — the observability layer: structured runtime events, sinks
//!   (memory / JSONL), and the end-of-run [`obs::RunReport`].
//! * [`simsp`] — the IBM RS/6000 SP discrete-event simulator used to
//!   regenerate the paper's scaling figures.
//! * [`datagen`] — synthetic dataset generation (random trees, sequence
//!   evolution).
//! * [`treeviz`] — tree layout, tracing, and rendering (the paper's viewer
//!   core library).
//!
//! ## Quickstart
//!
//! ```
//! use fastdnaml::prelude::*;
//!
//! // Four aligned sequences (PHYLIP text would normally come from a file).
//! let alignment = Alignment::from_strings(&[
//!     ("human",   "ACGTACGTACGTACGTAAAA"),
//!     ("chimp",   "ACGTACGTACGTACGTAAAT"),
//!     ("mouse",   "ACGAACGTACTTACGTTTAA"),
//!     ("chicken", "ACGAACTTACTTACGTTTAT"),
//! ]).unwrap();
//!
//! let config = SearchConfig { jumble_seed: 137, ..SearchConfig::default() };
//! let result = serial_search(&alignment, &config).unwrap();
//! assert_eq!(result.tree.num_tips(), 4);
//! assert!(result.ln_likelihood < 0.0);
//! ```

#![warn(missing_docs)]

pub use fdml_chaos as chaos;
pub use fdml_comm as comm;
pub use fdml_core as core;
pub use fdml_datagen as datagen;
pub use fdml_likelihood as likelihood;
pub use fdml_net as net;
pub use fdml_obs as obs;
pub use fdml_phylo as phylo;
pub use fdml_rates as rates;
pub use fdml_serve as serve;
pub use fdml_simsp as simsp;
pub use fdml_treeviz as treeviz;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use fdml_comm::job::{JobResult, JobSpec, JobState, JobStatus};
    pub use fdml_comm::transport::Transport;
    pub use fdml_core::config::SearchConfig;
    pub use fdml_core::job::ResolvedJob;
    pub use fdml_core::runner::{parallel_search, serial_search, RunOptions};
    pub use fdml_core::search::SearchResult;
    pub use fdml_likelihood::engine::LikelihoodEngine;
    pub use fdml_likelihood::f84::F84Model;
    pub use fdml_obs::{Event, JsonlSink, MemorySink, Obs, RunReport, Sink};
    pub use fdml_phylo::alignment::Alignment;
    pub use fdml_phylo::bipartition::{robinson_foulds, SplitSet};
    pub use fdml_phylo::newick;
    pub use fdml_phylo::patterns::PatternAlignment;
    pub use fdml_phylo::phylip;
    pub use fdml_phylo::tree::Tree;
}
