//! Offline stand-in for the `serde_json` crate.
//!
//! Prints and parses JSON over the `serde` shim's [`Value`] model, exposing
//! the `to_string` / `to_string_pretty` / `from_str` entry points and an
//! [`Error`] type compatible with how this workspace uses the real crate.

pub use serde::value::{Number, Value};
use serde::{DeError, Deserialize, Serialize};

mod parse;
mod print;

/// A serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.serialize_value()))
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.serialize_value()))
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    Ok(T::deserialize_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string("hi\n\"there\"").unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("-2.5e3").unwrap(), -2500.0);
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn float_precision_survives() {
        let x = -1234.567891234567f64;
        let s = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), x);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Number(Number::U(1))),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let pretty = print::pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(parse::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }
}
