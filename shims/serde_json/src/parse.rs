//! A recursive-descent JSON parser producing the serde shim's `Value`.

use crate::{Error, Number, Value};

pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u16::from_str_radix(chunk, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{08}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{0C}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a following \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}
