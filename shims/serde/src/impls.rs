//! `Serialize`/`Deserialize` impls for primitives and std containers.

use crate::{DeError, Deserialize, Number, Serialize, Value};
use std::collections::{BTreeMap, HashMap};

macro_rules! uint_impl {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let u = value.as_u64().ok_or_else(|| {
                    DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {}"),
                        value.kind_name()
                    ))
                })?;
                <$t>::try_from(u).map_err(|_| {
                    DeError::new(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )+};
}

uint_impl!(u8, u16, u32, u64, usize);

macro_rules! sint_impl {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let i = value.as_i64().ok_or_else(|| {
                    DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {}"),
                        value.kind_name()
                    ))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::new(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )+};
}

sint_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::new(format!("expected f64, got {}", value.kind_name())))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::new(format!("expected bool, got {}", value.kind_name())))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(String::from)
            .ok_or_else(|| DeError::new(format!("expected string, got {}", value.kind_name())))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::new("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {}", value.kind_name())))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        let v: Vec<T> = Vec::deserialize_value(value)?;
        let len = v.len();
        v.try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::deserialize_value(value).map(Some)
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::new(format!("expected object, got {}", value.kind_name())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::new(format!("expected object, got {}", value.kind_name())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

macro_rules! tuple_impl {
    ($len:expr => $($t:ident $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_array().ok_or_else(|| {
                    DeError::new(format!("expected array, got {}", value.kind_name()))
                })?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected {}-tuple, got {} elements",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::deserialize_value(&items[$idx])?,)+))
            }
        }
    };
}

tuple_impl!(2 => A 0, B 1);
tuple_impl!(3 => A 0, B 1, C 2);
tuple_impl!(4 => A 0, B 1, C 2, D 3);

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
