//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor architecture, this shim round-trips every type
//! through a self-describing [`Value`] tree: [`Serialize`] renders a value
//! into a `Value`, [`Deserialize`] rebuilds one from it. The companion
//! `serde_json` shim prints and parses `Value`s, and `serde_derive` generates
//! impls of these two traits with the same JSON shapes real serde would use
//! (named structs → objects, newtype structs → their inner value, unit enum
//! variants → strings, data-carrying variants → single-key objects).

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

mod impls;

pub use value::{Number, Value};

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Returns the `Value` representation of `self`.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `value`, or explains why it cannot.
    fn deserialize_value(value: &Value) -> Result<Self, DeError>;
}

/// A deserialization failure: a human-readable path/expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Creates a "missing field" error for `ty.field`.
    pub fn missing(ty: &str, field: &str) -> Self {
        DeError {
            msg: format!("{ty}: missing field `{field}`"),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Looks up `key` in an object's entry list (insertion order preserved).
pub fn value_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}
