//! The self-describing data model every (de)serialization passes through.

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// JSON numbers (integer fidelity preserved, see [`Number`]).
    Number(Number),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, with insertion order preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number that remembers whether it was an unsigned integer, a signed
/// integer, or a float, so `u64::MAX` and friends round-trip exactly.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integers.
    U(u64),
    /// Negative integers.
    I(i64),
    /// Everything with a fraction or exponent.
    F(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {}
        }
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {}
        }
        self.as_f64() == other.as_f64()
    }
}

impl Number {
    /// The value as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) => {
                if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }
}

impl Value {
    /// The entry list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short label for error messages ("object", "string", …).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
