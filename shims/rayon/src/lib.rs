//! Offline stand-in for `rayon`: the subset this workspace uses.
//!
//! The likelihood kernels need exactly one parallel primitive: run the same
//! closure once on every thread of a fixed-size pool and collect the
//! per-thread results in thread-index order (`rayon`'s
//! `ThreadPool::broadcast`). The work-stealing deque machinery of real
//! rayon is deliberately absent — the kernels assign pattern blocks to
//! thread indices themselves (round-robin), because a *deterministic*
//! partition is what makes the blocked likelihood reduction bit-identical
//! at any thread count.
//!
//! Implementation: `num_threads - 1` persistent worker threads parked on a
//! condvar; the broadcasting caller participates as thread index 0, so a
//! 1-thread pool never crosses a thread boundary at all. Closures are
//! passed by raw pointer under an epoch counter — safe because `broadcast`
//! blocks until every worker has finished the current job, so the borrowed
//! closure and result slots outlive every access.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Error from [`ThreadPoolBuilder::build`]. The shim cannot actually fail
/// to build (thread spawn panics instead of erroring), but callers match
/// real rayon's fallible signature.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: String,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a fixed-size [`ThreadPool`], mirroring rayon's API shape.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default thread count (1: no worker threads).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Set the pool size. `0` means the default (1 thread).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Build the pool, spawning `num_threads - 1` persistent workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool::with_threads(self.num_threads.max(1)))
    }
}

/// A broadcast job: a type-erased closure pointer plus the runner that
/// knows the erased types. Valid only for the epoch it was published under;
/// `broadcast` keeps the pointee alive until every worker reports done.
#[derive(Clone, Copy)]
struct Job {
    run: unsafe fn(*const (), usize, usize),
    data: *const (),
}

// The pointee is a stack-borrowed packet that `broadcast` keeps alive past
// the last worker's access; workers only run it through `run`.
unsafe impl Send for Job {}

struct State {
    epoch: u64,
    job: Option<Job>,
    pending: usize,
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// A fixed-size thread pool supporting [`ThreadPool::broadcast`].
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    broadcasting: AtomicBool,
}

/// Per-thread context handed to a [`ThreadPool::broadcast`] closure.
#[derive(Debug, Clone, Copy)]
pub struct BroadcastContext<'a> {
    index: usize,
    num_threads: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BroadcastContext<'_> {
    /// This invocation's thread index in `0..num_threads()`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The pool size.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }
}

impl ThreadPool {
    fn with_threads(threads: usize) -> ThreadPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                pending: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{index}"))
                    .spawn(move || worker_loop(shared, index, threads))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
            broadcasting: AtomicBool::new(false),
        }
    }

    /// The pool size (including the broadcasting caller's slot 0).
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` once per pool thread and return the results in thread-index
    /// order. The caller executes index 0 inline; workers run the rest.
    /// Blocks until every invocation has finished. Panics if `op` panicked
    /// on any thread, and on re-entrant broadcast from inside `op`.
    pub fn broadcast<OP, R>(&self, op: OP) -> Vec<R>
    where
        OP: Fn(BroadcastContext<'_>) -> R + Sync,
        R: Send,
    {
        let n = self.threads;
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        if n == 1 {
            results[0] = Some(op(BroadcastContext {
                index: 0,
                num_threads: 1,
                _marker: std::marker::PhantomData,
            }));
            return results.into_iter().map(|r| r.unwrap()).collect();
        }
        // A second overlapping broadcast on the same pool would clobber the
        // published job; the kernels only ever broadcast from the pool's
        // owning workspace, so this is a programming-error guard, not a
        // synchronization point.
        assert!(
            !self.broadcasting.swap(true, Ordering::Acquire),
            "re-entrant ThreadPool::broadcast"
        );

        struct Packet<'a, OP, R> {
            op: &'a OP,
            results: *mut Option<R>,
        }

        unsafe fn run_one<OP, R>(data: *const (), index: usize, num_threads: usize)
        where
            OP: Fn(BroadcastContext<'_>) -> R + Sync,
            R: Send,
        {
            let packet = unsafe { &*(data as *const Packet<'_, OP, R>) };
            let out = (packet.op)(BroadcastContext {
                index,
                num_threads,
                _marker: std::marker::PhantomData,
            });
            // Each invocation owns exactly one slot; slots are disjoint.
            unsafe { *packet.results.add(index) = Some(out) };
        }

        let packet = Packet {
            op: &op,
            results: results.as_mut_ptr(),
        };
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(Job {
                run: run_one::<OP, R>,
                data: &packet as *const Packet<'_, OP, R> as *const (),
            });
            st.epoch += 1;
            st.pending = n - 1;
            st.panicked = false;
            self.shared.work_cv.notify_all();
        }
        // The caller is thread index 0.
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            run_one::<OP, R>(&packet as *const Packet<'_, OP, R> as *const (), 0, n);
        }));
        let mut st = self.shared.state.lock().unwrap();
        while st.pending > 0 {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        st.job = None;
        let worker_panicked = st.panicked;
        drop(st);
        self.broadcasting.store(false, Ordering::Release);
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        assert!(
            !worker_panicked,
            "broadcast closure panicked in pool worker"
        );
        results.into_iter().map(|r| r.unwrap()).collect()
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize, num_threads: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("job published with epoch");
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            (job.run)(job.data, index, num_threads)
        }));
        let mut st = shared.state.lock().unwrap();
        if outcome.is_err() {
            st.panicked = true;
        }
        st.pending -= 1;
        if st.pending == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_returns_results_in_index_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        let got = pool.broadcast(|ctx| {
            assert_eq!(ctx.num_threads(), 4);
            ctx.index() * 10
        });
        assert_eq!(got, vec![0, 10, 20, 30]);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let ids = pool.broadcast(|_| std::thread::current().id());
        assert_eq!(ids, vec![caller]);
    }

    #[test]
    fn broadcast_borrows_caller_state() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let data: Vec<u64> = (0..300).collect();
        let sums = pool.broadcast(|ctx| {
            data.iter()
                .skip(ctx.index())
                .step_by(ctx.num_threads())
                .sum::<u64>()
        });
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn repeated_broadcasts_reuse_workers() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        for round in 0..100u64 {
            let got = pool.broadcast(move |ctx| round + ctx.index() as u64);
            assert_eq!(got, vec![round, round + 1]);
        }
    }

    #[test]
    fn zero_threads_defaults_to_one() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(pool.current_num_threads(), 1);
    }
}
