//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` with parking_lot's panic-free, non-poisoning
//! `lock()` signature. Only the API surface this workspace uses is provided.

use std::sync::MutexGuard;

/// A mutual-exclusion primitive with parking_lot's `lock()` signature
/// (no poisoning: a panicked holder does not wedge later lockers).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
