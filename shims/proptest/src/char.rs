//! Character strategies (`proptest::char::range`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy yielding chars in an inclusive code-point range.
#[derive(Debug, Clone, Copy)]
pub struct CharRange {
    lo: u32,
    hi: u32,
}

/// Generates chars uniformly in `[lo, hi]` (inclusive), skipping the
/// surrogate gap.
pub fn range(lo: char, hi: char) -> CharRange {
    assert!(lo <= hi, "empty char range");
    CharRange {
        lo: lo as u32,
        hi: hi as u32,
    }
}

impl Strategy for CharRange {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let span = (self.hi - self.lo + 1) as u64;
        loop {
            let code = self.lo + (rng.next_u64() % span) as u32;
            if let Some(c) = char::from_u32(code) {
                return c;
            }
        }
    }
}
