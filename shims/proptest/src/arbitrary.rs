//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy for the full domain of a primitive (see [`Arbitrary`] impls).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_impl {
    ($t:ty, $gen:expr) => {
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive::default()
            }
        }
    };
}

arbitrary_impl!(bool, |rng| rng.next_u64() & 1 == 1);
arbitrary_impl!(u8, |rng| rng.next_u64() as u8);
arbitrary_impl!(u16, |rng| rng.next_u64() as u16);
arbitrary_impl!(u32, |rng| rng.next_u64() as u32);
arbitrary_impl!(u64, |rng| rng.next_u64());
arbitrary_impl!(usize, |rng| rng.next_u64() as usize);
arbitrary_impl!(i32, |rng| rng.next_u64() as i32);
arbitrary_impl!(i64, |rng| rng.next_u64() as i64);
arbitrary_impl!(f64, |rng| rng.next_f64());
