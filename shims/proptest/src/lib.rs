//! Offline stand-in for the `proptest` crate.
//!
//! Keeps the property-test surface this workspace uses — `proptest!` with an
//! optional `#![proptest_config(...)]` header, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, range and tuple strategies,
//! `collection::vec`, `char::range`, and `any::<T>()` — but samples randomly
//! (deterministically per test name) without shrinking. Failures report the
//! case number so a failing property is still reproducible by rerunning the
//! test.

pub mod arbitrary;
pub mod char;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Discards the current case (drawing a replacement) when the precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal recursive muncher for the bodies of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut __case: u32 = 0;
            let mut __rejects: u32 = 0;
            while __case < __config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&$strategy, &mut __rng),)+
                );
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {
                        __case += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejects += 1;
                        assert!(
                            __rejects < __config.cases * 16 + 4096,
                            "proptest `{}`: too many prop_assume rejections",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_stay_in_bounds(x in 3usize..10, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }

        fn tuples_and_vecs(v in crate::collection::vec((1usize..5, 0.0f64..1.0), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (n, f) in &v {
                prop_assert!(*n >= 1 && *n < 5);
                prop_assert!((0.0..1.0).contains(f));
            }
        }

        fn chars_in_requested_range(c in crate::char::range(' ', '~')) {
            prop_assert!((' '..='~').contains(&c));
        }

        fn mapping_applies(d in (1u64..100).prop_map(|x| x * 2)) {
            prop_assert!(d % 2 == 0);
            prop_assert!(d < 200, "doubled value {} out of range", d);
        }

        fn assume_retries(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn any_bool_produces_both_values() {
        let mut rng = crate::test_runner::TestRng::deterministic("any_bool");
        let strat = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(strat.generate(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
