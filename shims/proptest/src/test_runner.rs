//! Test configuration, case outcomes, and the deterministic RNG.

/// How many inputs each property draws.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The outcome of one drawn case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The input did not satisfy a `prop_assume!` precondition.
    Reject(String),
    /// A `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected precondition with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

/// A deterministic generator seeded from the test's module path and name, so
/// every run of a given test draws the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the generator for `name` (normally `module_path!()::test_name`).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// A uniform draw from [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
