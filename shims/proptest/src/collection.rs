//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy generating `Vec`s of another strategy's values.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % (span + 1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
