//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )+};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64 - lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64 + (rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )+};
}

signed_range_strategy!(i64, i32, i16, i8, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A 0, B 1);
tuple_strategy!(A 0, B 1, C 2);
tuple_strategy!(A 0, B 1, C 2, D 3);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}
