//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel::unbounded` MPMC channel subset used by
//! `fdml-comm`'s threaded transport, built on a `Mutex` + `Condvar`
//! queue with sender-count based disconnect semantics.

/// Multi-producer channels with timeout-aware receives.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// Every sender has been dropped and the queue is empty.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "receive timed out"),
                RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Creates an unbounded channel, returning its sender and receiver.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Queues `value`, failing only if the receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if !st.receiver_alive {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders += 1;
            drop(st);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receiver_alive = false;
        }
    }

    impl<T> Receiver<T> {
        /// Waits up to `timeout` for the next message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = next;
            }
        }

        /// Returns the next message if one is already queued.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = st.queue.pop_front() {
                Ok(v)
            } else if st.senders == 0 {
                Err(RecvTimeoutError::Disconnected)
            } else {
                Err(RecvTimeoutError::Timeout)
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
        }

        #[test]
        fn timeout_when_empty() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn disconnect_when_senders_dropped() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            tx.send(9).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tx.send(42u32).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            h.join().unwrap();
        }
    }
}
