//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the Value-based `serde::Serialize` /
//! `serde::Deserialize` shim traits with the same JSON shapes real serde
//! uses: named structs → objects, newtype structs → their inner value, unit
//! enum variants → strings, newtype variants → `{"Variant": inner}`, struct
//! variants → `{"Variant": {fields…}}`. Supports `#[serde(default)]` and
//! `#[serde(default = "path")]` on named fields. No generics, lifetimes, or
//! multi-field tuple variants — the workspace does not use them.
//!
//! The input is parsed directly from the `proc_macro` token stream (no
//! `syn`/`quote`), and the generated impl is rendered as a string and
//! re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the Value-based `Serialize` shim trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the Value-based `Deserialize` shim trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

enum DefaultKind {
    Trait,
    Path(String),
}

struct Field {
    name: String,
    default: Option<DefaultKind>,
}

enum Shape {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(t: Option<&TokenTree>, s: &str) -> bool {
    matches!(t, Some(TokenTree::Ident(id)) if id.to_string() == s)
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility down to the `struct`/`enum` keyword.
    loop {
        if is_punct(tokens.get(i), '#') {
            i += 2; // '#' + bracketed group
        } else if is_ident(tokens.get(i), "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        } else if is_ident(tokens.get(i), "struct") || is_ident(tokens.get(i), "enum") {
            break;
        } else {
            match tokens.get(i) {
                Some(_) => i += 1,
                None => panic!("serde_derive shim: no struct/enum keyword found"),
            }
        }
    }

    let is_struct = is_ident(tokens.get(i), "struct");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;
    if is_punct(tokens.get(i), '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    if is_struct {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream(), &name);
                Item::NamedStruct { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: tuple_arity(g.stream()),
                }
            }
            other => panic!("serde_derive shim: unsupported struct body for `{name}`: {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name: name.clone(),
                variants: parse_variants(g.stream(), &name),
            },
            other => panic!("serde_derive shim: unsupported enum body for `{name}`: {other:?}"),
        }
    }
}

/// Counts comma-separated segments at angle-bracket depth 0.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    let mut any = false;
    for t in stream {
        any = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if !any {
        return 0;
    }
    commas + if trailing_comma { 0 } else { 1 }
}

/// Extracts `default` / `default = "path"` from a `serde(...)` attribute body.
fn parse_serde_attr(stream: TokenStream) -> Option<DefaultKind> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if !is_ident(tokens.first(), "serde") {
        return None;
    }
    let Some(TokenTree::Group(g)) = tokens.get(1) else {
        return None;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        if is_ident(inner.get(j), "default") {
            if is_punct(inner.get(j + 1), '=') {
                if let Some(TokenTree::Literal(lit)) = inner.get(j + 2) {
                    let raw = lit.to_string();
                    let path = raw.trim_matches('"').to_string();
                    return Some(DefaultKind::Path(path));
                }
            }
            return Some(DefaultKind::Trait);
        }
        j += 1;
    }
    None
}

fn parse_named_fields(stream: TokenStream, ty: &str) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = None;
        while is_punct(tokens.get(i), '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if let Some(d) = parse_serde_attr(g.stream()) {
                    default = Some(d);
                }
            }
            i += 2;
        }
        if is_ident(tokens.get(i), "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: `{ty}`: expected field name, got {other:?}"),
        };
        i += 1;
        if !is_punct(tokens.get(i), ':') {
            panic!("serde_derive shim: `{ty}.{name}`: expected `:` after field name");
        }
        i += 1;
        // Skip the type, honoring angle-bracket nesting so commas inside
        // `HashMap<String, TaxonId>` do not end the field.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(stream: TokenStream, ty: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while is_punct(tokens.get(i), '#') {
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: `{ty}`: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match tuple_arity(g.stream()) {
                    1 => Shape::Newtype,
                    n => panic!(
                        "serde_derive shim: `{ty}::{name}`: {n}-field tuple variants unsupported"
                    ),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Struct(parse_named_fields(g.stream(), ty))
            }
            _ => Shape::Unit,
        };
        if is_punct(tokens.get(i), ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn push_object_entries(out: &mut String, fields: &[Field], access_prefix: &str) {
    out.push_str("::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([");
    for f in fields {
        out.push_str(&format!(
            "(::std::string::String::from(\"{n}\"), ::serde::Serialize::serialize_value(&{p}{n})),",
            n = f.name,
            p = access_prefix,
        ));
    }
    out.push_str("])))");
}

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::NamedStruct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{ fn serialize_value(&self) -> ::serde::Value {{ "
            ));
            push_object_entries(&mut out, fields, "self.");
            out.push_str(" } }");
        }
        Item::TupleStruct { name, arity } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{ fn serialize_value(&self) -> ::serde::Value {{ "
            ));
            if *arity == 1 {
                out.push_str("::serde::Serialize::serialize_value(&self.0)");
            } else {
                out.push_str("::serde::Value::Array(<[_]>::into_vec(::std::boxed::Box::new([");
                for idx in 0..*arity {
                    out.push_str(&format!(
                        "::serde::Serialize::serialize_value(&self.{idx}),"
                    ));
                }
                out.push_str("])))");
            }
            out.push_str(" } }");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{ fn serialize_value(&self) -> ::serde::Value {{ match self {{ "
            ));
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => out.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),"
                    )),
                    Shape::Newtype => out.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([(::std::string::String::from(\"{vn}\"), ::serde::Serialize::serialize_value(__f0))]))),"
                    )),
                    Shape::Struct(fields) => {
                        let bindings: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        out.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([(::std::string::String::from(\"{vn}\"), ",
                            bindings.join(", ")
                        ));
                        push_object_entries(&mut out, fields, "");
                        out.push_str(")]))),");
                    }
                }
            }
            out.push_str(" } } }");
        }
    }
    out
}

fn push_field_builders(out: &mut String, ty: &str, fields: &[Field]) {
    for f in fields {
        let n = &f.name;
        out.push_str(&format!(
            "{n}: match ::serde::value_get(__obj, \"{n}\") {{ \
             ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize_value(__x)?, \
             ::std::option::Option::None => "
        ));
        match &f.default {
            Some(DefaultKind::Trait) => out.push_str("::std::default::Default::default()"),
            Some(DefaultKind::Path(path)) => out.push_str(&format!("{path}()")),
            None => out.push_str(&format!(
                // Absent fields still deserialize when the type accepts
                // `null` (Option<T> → None); everything else is an error.
                "match ::serde::Deserialize::deserialize_value(&::serde::Value::Null) {{ \
                 ::std::result::Result::Ok(__d) => __d, \
                 ::std::result::Result::Err(_) => return ::std::result::Result::Err(::serde::DeError::missing(\"{ty}\", \"{n}\")) }}"
            )),
        }
        out.push_str(" },");
    }
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::NamedStruct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{ \
                 fn deserialize_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ \
                 let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::new(\"{name}: expected object\"))?; \
                 ::std::result::Result::Ok({name} {{ "
            ));
            push_field_builders(&mut out, name, fields);
            out.push_str(" }) } }");
        }
        Item::TupleStruct { name, arity } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{ \
                 fn deserialize_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ "
            ));
            if *arity == 1 {
                out.push_str(&format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
                ));
            } else {
                out.push_str(&format!(
                    "let __items = __v.as_array().ok_or_else(|| ::serde::DeError::new(\"{name}: expected array\"))?; \
                     if __items.len() != {arity} {{ return ::std::result::Result::Err(::serde::DeError::new(\"{name}: wrong tuple length\")); }} \
                     ::std::result::Result::Ok({name}("
                ));
                for idx in 0..*arity {
                    out.push_str(&format!(
                        "::serde::Deserialize::deserialize_value(&__items[{idx}])?,"
                    ));
                }
                out.push_str("))");
            }
            out.push_str(" } }");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{ \
                 fn deserialize_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ "
            ));
            // Unit variants arrive as bare strings.
            out.push_str(
                "if let ::std::option::Option::Some(__s) = __v.as_str() { return match __s { ",
            );
            for v in variants {
                if let Shape::Unit = v.shape {
                    out.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    ));
                }
            }
            out.push_str(&format!(
                "_ => ::std::result::Result::Err(::serde::DeError::new(\"unknown {name} variant\")) }}; }} "
            ));
            // Data variants arrive as single-key objects.
            out.push_str(&format!(
                "let __entries = __v.as_object().ok_or_else(|| ::serde::DeError::new(\"{name}: expected string or object\"))?; \
                 if __entries.len() != 1 {{ return ::std::result::Result::Err(::serde::DeError::new(\"{name}: expected single-key object\")); }} \
                 let (__k, __inner) = &__entries[0]; \
                 match __k.as_str() {{ "
            ));
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Newtype => out.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize_value(__inner)?)),"
                    )),
                    Shape::Struct(fields) => {
                        out.push_str(&format!(
                            "\"{vn}\" => {{ \
                             let __obj = __inner.as_object().ok_or_else(|| ::serde::DeError::new(\"{name}::{vn}: expected object\"))?; \
                             ::std::result::Result::Ok({name}::{vn} {{ "
                        ));
                        push_field_builders(&mut out, name, fields);
                        out.push_str(" }) },");
                    }
                }
            }
            out.push_str(&format!(
                "_ => ::std::result::Result::Err(::serde::DeError::new(\"unknown {name} variant\")) }} }} }}"
            ));
        }
    }
    out
}
