//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `Criterion` / `BenchmarkGroup` / `Bencher` API surface
//! this workspace's benches use, with a simple mean-of-samples timer instead
//! of criterion's statistical machinery. Output is one line per benchmark:
//! `name  time: <mean> (<samples> samples)`.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_benchmark(&label, self.sample_size, &mut wrapped);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` runs of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warmup run.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "{name:<50} time: [{} {} {}] ({} samples)",
        format_duration(*min),
        format_duration(mean),
        format_duration(*max),
        bencher.samples.len()
    );
}

/// Declares a group of benchmark functions, in either the plain or the
/// `name = …; config = …; targets = …` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("x", 7), &7usize, |b, n| b.iter(|| n * 2));
        group.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| 3 + 4));
        group.finish();
    }
}
