//! Offline stand-in for the `rand` crate.
//!
//! Supplies a deterministic, seedable [`rngs::StdRng`] (xoshiro256++ seeded
//! through SplitMix64) and the small extension-trait surface this workspace
//! uses: `random::<T>()`, `random_range(..)`, and slice `shuffle`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// state expansion. Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Types that can be sampled uniformly from raw random bits.
pub trait RandomValue: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl RandomValue for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl RandomValue for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RandomValue for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl RandomValue for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl RandomValue for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that can be sampled uniformly.
pub trait RangeSample {
    /// The element type produced.
    type Output;
    /// Draws one value in the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_range_sample {
    ($($t:ty),+) => {$(
        impl RangeSample for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl RangeSample for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )+};
}

int_range_sample!(usize, u64, u32);

impl RangeSample for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty random_range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: RandomValue>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<S: RangeSample>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice with a Fisher–Yates pass.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
