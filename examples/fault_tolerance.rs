//! Fault tolerance (paper §2.2): a worker that fails to return a tree
//! within the timeout is removed from the ready list and its tree is sent
//! to a different worker; if it answers later it is re-admitted.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use fastdnaml::comm::fault::FaultPlan;
use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::job::ResolvedJob;
use fastdnaml::core::runner::{parallel_search, RunOptions};
use fastdnaml::datagen::{evolve, yule_tree, EvolutionConfig};
use fastdnaml::phylo::bipartition::robinson_foulds;
use std::collections::HashMap;
use std::time::Duration;

fn main() {
    let tree = yule_tree(12, 0.08, 17);
    let alignment = evolve(&tree, 300, &EvolutionConfig::default(), 9, "taxon");
    let config = SearchConfig {
        jumble_seed: 3,
        worker_timeout: Duration::from_millis(250),
        ..SearchConfig::default()
    };

    println!("clean run (5 ranks: master, foreman, monitor, 2 workers)…");
    let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), 1).expect("resolve job");
    let clean = parallel_search(&job, 5, RunOptions::default()).expect("clean run");
    println!(
        "  lnL {:.3}; {} dispatches, {} timeouts",
        clean.result.ln_likelihood, clean.foreman.dispatched, clean.foreman.timeouts
    );

    println!("\nfaulty run: worker 3 silently drops its first 6 results…");
    let mut faults = HashMap::new();
    faults.insert(3usize, FaultPlan::drop_first(6));
    let faulty = parallel_search(&job, 5, RunOptions::with_faults(faults)).expect("faulty run");
    println!(
        "  lnL {:.3}; {} dispatches, {} timeouts, {} re-admissions, {} duplicate results ignored",
        faulty.result.ln_likelihood,
        faulty.foreman.dispatched,
        faulty.foreman.timeouts,
        faulty.foreman.recoveries,
        faulty.foreman.duplicates_ignored
    );

    let rf = robinson_foulds(&clean.result.tree, &faulty.result.tree, 12);
    println!("\nresult unchanged despite the faults:");
    println!("  same topology : {}", rf == 0);
    println!(
        "  lnL difference: {:.2e}",
        (clean.result.ln_likelihood - faulty.result.ln_likelihood).abs()
    );
    println!("\nper-worker timeout counts seen by the monitor:");
    let mut items: Vec<_> = faulty.monitor.per_worker.iter().collect();
    items.sort_by_key(|(rank, _)| **rank);
    for (rank, util) in items {
        println!(
            "  worker {rank}: {} completed, {} timeouts",
            util.completed, util.timeouts
        );
    }
}
