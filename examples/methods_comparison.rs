//! Comparing method classes on one dataset — the paper's stated value of a
//! fast parallel ML code: "it permits biologists to compare ML methods
//! with other phylogenetic inference methods on the basis of the quality
//! of the biological results obtained. Thus a biologist's choice of
//! methods is not constrained because one method cannot be completed in a
//! reasonable amount of time."
//!
//! ```sh
//! cargo run --release --example methods_comparison
//! ```

use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::runner::fast_serial_search;
use fastdnaml::datagen::{evolve, yule_tree, EvolutionConfig};
use fastdnaml::likelihood::distances::distance_matrix;
use fastdnaml::likelihood::engine::{LikelihoodEngine, OptimizeOptions};
use fastdnaml::phylo::bipartition::robinson_foulds;
use fastdnaml::phylo::nj::neighbor_joining;
use fastdnaml::phylo::parsimony::fitch_score;
use fastdnaml::phylo::patterns::PatternAlignment;

fn main() {
    // A 14-taxon dataset from a known tree.
    let truth = yule_tree(14, 0.09, 71);
    let alignment = evolve(&truth, 900, &EvolutionConfig::default(), 12, "taxon");
    let engine = LikelihoodEngine::new(&alignment);
    let patterns = PatternAlignment::compress(&alignment);
    println!(
        "dataset: {} taxa × {} sites ({} patterns)\n",
        alignment.num_taxa(),
        alignment.num_sites(),
        patterns.num_patterns()
    );

    // Distance method: ML pairwise distances → neighbor joining.
    let mut nj_tree = neighbor_joining(&distance_matrix(&engine));
    let nj_lnl = engine
        .optimize(&mut nj_tree, &OptimizeOptions::default())
        .ln_likelihood;

    // Maximum likelihood: the fastDNAml search.
    let config = SearchConfig {
        jumble_seed: 3,
        rearrange_radius: 2,
        final_radius: 2,
        ..SearchConfig::default()
    };
    let ml = fast_serial_search(&alignment, &config).expect("ML search");

    // Score both trees under both criteria.
    let (pars_nj, _) = fitch_score(&nj_tree, &patterns);
    let (pars_ml, _) = fitch_score(&ml.tree, &patterns);

    println!(
        "{:<22} {:>14} {:>12} {:>12}",
        "method", "lnL", "parsimony", "RF vs truth"
    );
    println!(
        "{:<22} {:>14.2} {:>12} {:>12}",
        "neighbor joining",
        nj_lnl,
        pars_nj,
        robinson_foulds(&nj_tree, &truth, 14)
    );
    println!(
        "{:<22} {:>14.2} {:>12} {:>12}",
        "maximum likelihood",
        ml.ln_likelihood,
        pars_ml,
        robinson_foulds(&ml.tree, &truth, 14)
    );
    println!(
        "\nML tree is never worse in likelihood (Δ = {:+.2}); the criteria can",
        ml.ln_likelihood - nj_lnl
    );
    println!("disagree on topology, which is exactly what the comparison reveals.");
}
