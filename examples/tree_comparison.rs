//! The viewer workflow of paper §4: load the final trees of several runs,
//! pivot them into canonical orientation, trace selected taxa across them,
//! and render an ASCII phylogram plus a side-by-side SVG comparison
//! (the Figure 5 analog) to `target/tree_comparison.svg`.
//!
//! ```sh
//! cargo run --release --example tree_comparison
//! ```

use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::runner::fast_serial_search;
use fastdnaml::datagen::{evolve, yule_tree, EvolutionConfig};
use fastdnaml::phylo::newick;
use fastdnaml::treeviz::svg::{render_comparison, SvgStyle};
use fastdnaml::treeviz::trace::trace_taxa;
use fastdnaml::treeviz::{ascii, canonical, same_up_to_rotation};

fn main() {
    let true_tree = yule_tree(10, 0.1, 23);
    let alignment = evolve(&true_tree, 400, &EvolutionConfig::default(), 4, "taxon");

    // Three jumbles → three (possibly different) trees.
    let mut asts = Vec::new();
    for seed in [1u64, 7, 13] {
        let config = SearchConfig {
            jumble_seed: seed,
            ..SearchConfig::default()
        };
        let r = fast_serial_search(&alignment, &config).expect("search");
        let text = newick::write_tree(&r.tree, alignment.names());
        println!("jumble {seed}: lnL {:.3}", r.ln_likelihood);
        asts.push(newick::parse(&text).expect("round-trip"));
    }

    // Pivot into canonical orientation so only real topological differences
    // remain visible.
    let canon: Vec<_> = asts.iter().map(canonical).collect();
    println!(
        "\ntrees 1 and 2 same up to subtree pivots: {}",
        same_up_to_rotation(&asts[0], &asts[1], 1e-2)
    );

    println!("\nbest tree of jumble 1 (canonical orientation):\n");
    println!("{}", ascii::render(&canon[0], 70));

    // Trace two taxa across all three trees, as the viewer does.
    let traced = ["taxon000", "taxon005"];
    let traces = trace_taxa(&canon, &traced);
    println!("\ntaxon movement across the three trees (total leaf-row shifts):");
    for t in &traces {
        println!("  {:<10} movement {:.1}", t.name, t.total_movement());
    }

    let svg = render_comparison(&canon, &traced, &SvgStyle::default());
    let path = "target/tree_comparison.svg";
    std::fs::create_dir_all("target").ok();
    std::fs::write(path, &svg).expect("write SVG");
    println!(
        "\nside-by-side comparison with traces written to {path} ({} bytes)",
        svg.len()
    );
}
