//! The DNArates companion workflow (paper §2): estimate per-site rates on a
//! reference tree, group them into categories, and rerun the likelihood
//! with the category model — heterogeneous data fit markedly better.
//!
//! ```sh
//! cargo run --release --example rate_estimation
//! ```

use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::runner::fast_serial_search;
use fastdnaml::datagen::{evolve, yule_tree, EvolutionConfig};
use fastdnaml::likelihood::engine::{LikelihoodEngine, OptimizeOptions};
use fastdnaml::rates::{categorize, estimate_rates, RateGrid};

fn main() {
    // Strongly heterogeneous data: lognormal site rates + invariant sites.
    let tree = yule_tree(16, 0.1, 31);
    let gen_config = EvolutionConfig {
        rate_sigma: 1.2,
        prop_invariant: 0.4,
        ..Default::default()
    };
    let alignment = evolve(&tree, 800, &gen_config, 6, "taxon");

    // Reference tree from a homogeneous-model search.
    let config = SearchConfig {
        jumble_seed: 1,
        ..SearchConfig::default()
    };
    let result = fast_serial_search(&alignment, &config).expect("search");
    println!(
        "reference tree lnL (single rate): {:.2}",
        result.ln_likelihood
    );

    // DNArates: per-site ML rates on the reference tree.
    let engine = LikelihoodEngine::new(&alignment);
    let grid = RateGrid::default();
    let estimate = estimate_rates(&engine, &result.tree, &grid);
    let mean: f64 = estimate.per_site.iter().sum::<f64>() / estimate.per_site.len() as f64;
    let slow = estimate
        .per_site
        .iter()
        .filter(|&&r| r <= grid.min * 1.01)
        .count();
    println!(
        "estimated rates over {} sites: mean {:.2}, {} sites pinned at the slow bound",
        estimate.per_site.len(),
        mean,
        slow
    );

    // Categorize into a handful of rate classes and refit.
    for k in [2usize, 4, 8] {
        let cats = categorize(&estimate.per_pattern, engine.patterns().weights(), k);
        let mut engine_k = engine.clone();
        engine_k.set_categories(cats);
        let mut t = result.tree.clone();
        let refit = engine_k.optimize(&mut t, &OptimizeOptions::default());
        println!(
            "{k} categories: lnL {:.2}  (Δ vs single rate: {:+.2})",
            refit.ln_likelihood,
            refit.ln_likelihood - result.ln_likelihood
        );
    }
    println!("\nmore categories capture the simulated heterogeneity → higher likelihood.");
}
