//! The biologist's workflow from §2 and §3 of the paper: analyze many
//! random taxon orderings of one dataset and build the majority-rule
//! consensus of the resulting trees (the paper's Microsporidia study used
//! the 50-taxon rRNA alignment; here its synthetic stand-in, scaled down
//! for a quick demo).
//!
//! ```sh
//! cargo run --release --example microsporidia_workflow
//! ```

use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::runner::run_jumbles;
use fastdnaml::datagen::datasets::{paper_dataset, PaperDataset};
use fastdnaml::phylo::bipartition::{robinson_foulds, SplitSet};

fn main() {
    let (alignment, generating_tree) = paper_dataset(PaperDataset::Taxa50, 0.08);
    println!(
        "dataset: {} taxa × {} sites (synthetic stand-in for the Microsporidia rRNA data)",
        alignment.num_taxa(),
        alignment.num_sites()
    );

    let config = SearchConfig {
        rearrange_radius: 2,
        final_radius: 2,
        ..SearchConfig::default()
    };
    let seeds: Vec<u64> = (0..5).map(|i| 2 * i + 1).collect();
    println!("running {} jumbles (random addition orders)…", seeds.len());
    let (results, consensus) = run_jumbles(&alignment, &config, &seeds).expect("jumbles succeed");

    println!(
        "\n{:>6} {:>16} {:>12} {:>14}",
        "seed", "lnL", "rounds", "RF vs truth"
    );
    for (seed, r) in seeds.iter().zip(&results) {
        println!(
            "{:>6} {:>16.2} {:>12} {:>14}",
            seed,
            r.ln_likelihood,
            r.rounds,
            robinson_foulds(&r.tree, &generating_tree, 50)
        );
    }

    let best = results
        .iter()
        .max_by(|a, b| a.ln_likelihood.total_cmp(&b.ln_likelihood))
        .expect("at least one jumble");
    println!("\nbest jumble lnL: {:.2}", best.ln_likelihood);

    println!(
        "\nmajority-rule consensus of {} trees:",
        consensus.num_trees
    );
    println!("  {} splits above 50% support", consensus.splits.len());
    for s in consensus.splits.iter().take(8) {
        println!(
            "  support {:>5.0}%  split of {} taxa",
            100.0 * s.support,
            s.split.side_size()
        );
    }
    let truth = SplitSet::of_tree(&generating_tree, 50);
    let recovered = consensus
        .splits
        .iter()
        .filter(|s| truth.splits().contains(&s.split))
        .count();
    println!(
        "  {recovered} of {} consensus splits are in the generating tree",
        consensus.splits.len()
    );
}
