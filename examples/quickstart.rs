//! Quickstart: infer a maximum-likelihood tree from a PHYLIP alignment.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fastdnaml::prelude::*;
use fastdnaml::treeviz;

/// A small primate-style alignment in PHYLIP format (the file format
/// fastDNAml reads).
const PHYLIP: &str = "\
6 60
human     ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
chimp     ACGTACGTACTTACGTACGTACGAACGTACGTACGTACGTACGTACGAACGTACGTACGT
gorilla   ACGTACGTACTTACGGACGTACGAACGTACGTACGTACGTACGTACGAACGTACGTACTT
orang     ACGAACGTACGTACGGACGTACGTACCTACGTAGGTACGTACGTACGTACGAACGTACGT
gibbon    ACGAACGTACGTACGGACGTACTTACCTACGTAGGTACTTACGTACGTACGAACGTACGT
macaque   TCGAACGGACGTACGGAAGTACGTACCTACGGAGGTACGATCGTACGTACGAACGGACGT
";

fn main() {
    // Parse the alignment (PHYLIP, as fastDNAml expects).
    let alignment = phylip::parse(PHYLIP).expect("valid PHYLIP");
    println!(
        "alignment: {} taxa × {} sites, {} unique patterns",
        alignment.num_taxa(),
        alignment.num_sites(),
        PatternAlignment::compress(&alignment).num_patterns()
    );

    // fastDNAml defaults: empirical base frequencies, tt-ratio 2.0,
    // local rearrangements crossing one vertex.
    let config = SearchConfig {
        jumble_seed: 137,
        ..SearchConfig::default()
    };
    let result = serial_search(&alignment, &config).expect("search succeeds");

    println!("\nbest tree lnL = {:.4}", result.ln_likelihood);
    println!(
        "({} candidate trees evaluated in {} dispatch rounds)\n",
        result.candidates_evaluated, result.rounds
    );
    let text = newick::write_tree(&result.tree, alignment.names());
    println!("Newick: {text}\n");
    let ast = newick::parse(&text).expect("round-trip");
    println!("{}", treeviz::ascii::render(&ast, 72));
}
