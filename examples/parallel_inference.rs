//! The parallel program: master, foreman, monitor, and a pool of workers,
//! as in Figure 2 of the paper — here as threads over the transport
//! abstraction instead of MPI ranks.
//!
//! ```sh
//! cargo run --release --example parallel_inference
//! ```

use fastdnaml::core::config::SearchConfig;
use fastdnaml::core::job::ResolvedJob;
use fastdnaml::core::runner::{parallel_search, serial_search, RunOptions};
use fastdnaml::datagen::{evolve, yule_tree, EvolutionConfig};
use fastdnaml::obs::{MemorySink, Sink};
use fastdnaml::phylo::bipartition::robinson_foulds;
use std::time::Instant;

fn main() {
    // A 20-taxon synthetic dataset (see fdml-datagen).
    let true_tree = yule_tree(20, 0.08, 11);
    let alignment = evolve(&true_tree, 600, &EvolutionConfig::default(), 3, "taxon");
    let config = SearchConfig {
        jumble_seed: 5,
        rearrange_radius: 1,
        final_radius: 1,
        ..SearchConfig::default()
    };

    println!("serial baseline…");
    let t0 = Instant::now();
    let serial = serial_search(&alignment, &config).expect("serial search");
    let serial_secs = t0.elapsed().as_secs_f64();
    println!("  lnL {:.3} in {serial_secs:.2}s", serial.ln_likelihood);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).clamp(1, 8))
        .unwrap_or(4);
    let ranks = workers + 3; // master + foreman + monitor + workers
    println!("\nparallel run with {ranks} ranks ({workers} workers)…");
    let t0 = Instant::now();
    let sinks: Vec<Box<dyn Sink>> = vec![Box::new(MemorySink::new())];
    let job = ResolvedJob::from_parts(alignment.clone(), config.clone(), 1).expect("resolve job");
    let outcome =
        parallel_search(&job, ranks, RunOptions::observed(sinks)).expect("parallel search");
    let par_secs = t0.elapsed().as_secs_f64();
    println!(
        "  lnL {:.3} in {par_secs:.2}s → speedup {:.2}×",
        outcome.result.ln_likelihood,
        serial_secs / par_secs
    );

    // The parallel run makes the same decisions as the serial one.
    let rf = robinson_foulds(&serial.tree, &outcome.result.tree, 20);
    println!("  topology identical to serial: {}", rf == 0);

    println!("\nmonitor report:");
    println!("  events                : {}", outcome.monitor.events);
    println!(
        "  rounds observed       : {}",
        outcome.monitor.round_history.len()
    );
    println!(
        "  load imbalance (cv)   : {:.3}",
        outcome.monitor.load_imbalance()
    );
    let mut ranks_sorted: Vec<_> = outcome.monitor.per_worker.iter().collect();
    ranks_sorted.sort_by_key(|(rank, _)| **rank);
    for (rank, util) in ranks_sorted {
        println!(
            "  worker {rank}: {} trees completed, {} work units",
            util.completed, util.work_units
        );
    }
    println!(
        "  foreman: {} dispatches, {} results",
        outcome.foreman.dispatched, outcome.foreman.results_forwarded
    );

    if let Some(report) = &outcome.report {
        println!("\nrun report (fdml-obs):");
        println!("{report}");
    }
}
